use crate::StoreError;

/// The minimal cloud object-storage interface Ginja depends on.
///
/// Deliberately restricted to the four REST operations every provider
/// offers (paper §5): object names are flat strings (prefixes emulate
/// directories), writes replace whole objects, and there is no
/// compare-and-swap — all coordination lives on the Ginja (client) side.
///
/// Implementations must be thread-safe: Ginja calls `put` concurrently
/// from several uploader threads.
pub trait ObjectStore: Send + Sync {
    /// Stores `data` under `name`, replacing any existing object.
    ///
    /// # Errors
    ///
    /// A classified [`StoreError`] if the write did not durably
    /// complete; the caller must assume nothing about partial state.
    /// Because a `put` replaces the whole object, re-issuing it is
    /// always safe — retry layers key off [`StoreError::is_retryable`]
    /// (and honour [`StoreError::retry_after`] hints) to decide whether
    /// another attempt could succeed.
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError>;

    /// Retrieves the object named `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if it does not exist.
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Deletes the object named `name`. Deleting a missing object is not
    /// an error (S3 semantics: DELETE is idempotent).
    ///
    /// # Errors
    ///
    /// A classified [`StoreError`] on backend failure.
    fn delete(&self, name: &str) -> Result<(), StoreError>;

    /// Lists all object names starting with `prefix`, in lexicographic
    /// order. An empty prefix lists everything.
    ///
    /// # Errors
    ///
    /// A classified [`StoreError`] on backend failure.
    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError>;
}

impl<T: ObjectStore + ?Sized> ObjectStore for std::sync::Arc<T> {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        (**self).put(name, data)
    }
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        (**self).get(name)
    }
    fn delete(&self, name: &str) -> Result<(), StoreError> {
        (**self).delete(name)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        (**self).list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::sync::Arc;

    #[test]
    fn arc_forwarding_works() {
        let store: Arc<MemStore> = Arc::new(MemStore::new());
        store.put("a", b"1").unwrap();
        assert_eq!(store.get("a").unwrap(), b"1");
        assert_eq!(store.list("").unwrap().len(), 1);
        store.delete("a").unwrap();
        assert!(matches!(store.get("a"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn trait_object_usable() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
        store.put("x", b"y").unwrap();
        assert_eq!(store.get("x").unwrap(), b"y");
    }
}
