//! The on-cloud object frame: header, optional transforms, trailing MAC.
//!
//! Every object Ginja uploads is wrapped in this envelope so that
//! recovery can (1) detect tampering/corruption via the MAC, (2) know
//! whether to decrypt and/or decompress, and (3) bind the payload to the
//! object *name* — a swapped object (valid MAC, wrong name) is rejected,
//! which matters because Ginja encodes ordering metadata in names.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GNJ1"
//! 4       1     flags (bit0 = compressed, bit1 = encrypted)
//! 5       16    nonce (zero when not encrypted)
//! 21      n     body
//! 21+n    20    HMAC-SHA1 over (name ‖ magic ‖ flags ‖ nonce ‖ body)
//! ```

use crate::hmac::{verify_tag, HmacSha1, TAG_LEN};
use crate::CodecError;

/// Envelope magic bytes ("GiNJa v1").
pub const MAGIC: [u8; 4] = *b"GNJ1";

/// Fixed header length (magic + flags + nonce).
pub const HEADER_LEN: usize = 4 + 1 + 16;

/// Minimum total envelope length (header + MAC, empty body).
pub const MIN_LEN: usize = HEADER_LEN + TAG_LEN;

/// Transform flags recorded in the envelope header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EnvelopeFlags(u8);

impl EnvelopeFlags {
    /// Body is GLZ-compressed (before encryption).
    pub const COMPRESSED: EnvelopeFlags = EnvelopeFlags(0b01);
    /// Body is AES-128-CTR encrypted.
    pub const ENCRYPTED: EnvelopeFlags = EnvelopeFlags(0b10);

    const KNOWN_MASK: u8 = 0b11;

    /// Empty flag set (plain body).
    pub fn empty() -> Self {
        EnvelopeFlags(0)
    }

    /// Returns whether all bits of `other` are set in `self`.
    pub fn contains(self, other: EnvelopeFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    #[must_use]
    pub fn union(self, other: EnvelopeFlags) -> Self {
        EnvelopeFlags(self.0 | other.0)
    }

    /// Raw bits as stored on the wire.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Parses wire bits, rejecting unknown flags.
    pub fn from_bits(bits: u8) -> Result<Self, CodecError> {
        if bits & !Self::KNOWN_MASK != 0 {
            return Err(CodecError::UnknownFlags(bits));
        }
        Ok(EnvelopeFlags(bits))
    }
}

/// A parsed (but not yet decoded) envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<'a> {
    /// Transform flags.
    pub flags: EnvelopeFlags,
    /// CTR nonce (all-zero when not encrypted).
    pub nonce: [u8; 16],
    /// Body bytes (possibly compressed and/or encrypted).
    pub body: &'a [u8],
    /// The stored MAC tag.
    pub tag: [u8; TAG_LEN],
}

impl<'a> Envelope<'a> {
    /// Splits `data` into header, body and tag, validating magic and flags.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if shorter than [`MIN_LEN`],
    /// [`CodecError::BadMagic`] or [`CodecError::UnknownFlags`] on a bad
    /// header. The MAC is *not* checked here; see [`Envelope::verify`].
    pub fn parse(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < MIN_LEN {
            return Err(CodecError::Truncated);
        }
        if data[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let flags = EnvelopeFlags::from_bits(data[4])?;
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(&data[5..21]);
        let body = &data[HEADER_LEN..data.len() - TAG_LEN];
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&data[data.len() - TAG_LEN..]);
        Ok(Envelope {
            flags,
            nonce,
            body,
            tag,
        })
    }

    /// Verifies the MAC under `mac_key` for the object named `name`.
    ///
    /// # Errors
    ///
    /// [`CodecError::MacMismatch`] on any difference.
    pub fn verify(&self, mac_key: &[u8], name: &str) -> Result<(), CodecError> {
        let expected = compute_tag(mac_key, name, self.flags, &self.nonce, self.body);
        if verify_tag(&expected, &self.tag) {
            Ok(())
        } else {
            Err(CodecError::MacMismatch)
        }
    }
}

/// Computes the envelope MAC for the given fields.
pub fn compute_tag(
    mac_key: &[u8],
    name: &str,
    flags: EnvelopeFlags,
    nonce: &[u8; 16],
    body: &[u8],
) -> [u8; TAG_LEN] {
    let mut mac = HmacSha1::new(mac_key);
    mac.update(name.as_bytes());
    mac.update(&MAGIC);
    mac.update(&[flags.bits()]);
    mac.update(nonce);
    mac.update(body);
    mac.finalize()
}

/// Assembles a complete envelope from its parts.
pub fn assemble(
    mac_key: &[u8],
    name: &str,
    flags: EnvelopeFlags,
    nonce: &[u8; 16],
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(MIN_LEN + body.len());
    assemble_into(mac_key, name, flags, nonce, body, &mut out);
    out
}

/// Assembles a complete envelope into `out` (cleared first), reusing its
/// allocation. The zero-copy sibling of [`assemble`].
pub fn assemble_into(
    mac_key: &[u8],
    name: &str,
    flags: EnvelopeFlags,
    nonce: &[u8; 16],
    body: &[u8],
    out: &mut Vec<u8>,
) {
    out.clear();
    out.reserve(MIN_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(flags.bits());
    out.extend_from_slice(nonce);
    out.extend_from_slice(body);
    let tag = compute_tag(mac_key, name, flags, nonce, body);
    out.extend_from_slice(&tag);
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"test-mac-key";

    #[test]
    fn assemble_parse_verify_roundtrip() {
        let nonce = [9u8; 16];
        let data = assemble(
            KEY,
            "WAL/1_x_0",
            EnvelopeFlags::ENCRYPTED,
            &nonce,
            b"payload",
        );
        let env = Envelope::parse(&data).unwrap();
        assert_eq!(env.flags, EnvelopeFlags::ENCRYPTED);
        assert_eq!(env.nonce, nonce);
        assert_eq!(env.body, b"payload");
        env.verify(KEY, "WAL/1_x_0").unwrap();
    }

    #[test]
    fn assemble_into_matches_assemble_and_reuses_buffer() {
        let nonce = [7u8; 16];
        let allocating = assemble(KEY, "WAL/3_x_0", EnvelopeFlags::COMPRESSED, &nonce, b"abc");
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"stale contents that must be cleared");
        let cap_before = out.capacity();
        assemble_into(
            KEY,
            "WAL/3_x_0",
            EnvelopeFlags::COMPRESSED,
            &nonce,
            b"abc",
            &mut out,
        );
        assert_eq!(out, allocating);
        assert_eq!(out.capacity(), cap_before, "no reallocation");
    }

    #[test]
    fn empty_body_roundtrip() {
        let data = assemble(KEY, "DB/0_dump_0", EnvelopeFlags::empty(), &[0u8; 16], b"");
        let env = Envelope::parse(&data).unwrap();
        assert_eq!(env.body, b"");
        env.verify(KEY, "DB/0_dump_0").unwrap();
    }

    #[test]
    fn wrong_name_rejected() {
        let data = assemble(KEY, "WAL/1_x_0", EnvelopeFlags::empty(), &[0u8; 16], b"p");
        let env = Envelope::parse(&data).unwrap();
        assert_eq!(env.verify(KEY, "WAL/2_x_0"), Err(CodecError::MacMismatch));
    }

    #[test]
    fn wrong_key_rejected() {
        let data = assemble(KEY, "n", EnvelopeFlags::empty(), &[0u8; 16], b"p");
        let env = Envelope::parse(&data).unwrap();
        assert_eq!(env.verify(b"other-key", "n"), Err(CodecError::MacMismatch));
    }

    #[test]
    fn every_bit_flip_detected() {
        let data = assemble(
            KEY,
            "n",
            EnvelopeFlags::COMPRESSED,
            &[3u8; 16],
            b"body bytes",
        );
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 1;
            match Envelope::parse(&bad) {
                Ok(env) => {
                    assert_eq!(
                        env.verify(KEY, "n"),
                        Err(CodecError::MacMismatch),
                        "byte {i}"
                    )
                }
                Err(e) => {
                    // Magic or flags corruption is caught at parse time.
                    assert!(
                        matches!(e, CodecError::BadMagic | CodecError::UnknownFlags(_)),
                        "byte {i}: {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_rejected() {
        let data = assemble(KEY, "n", EnvelopeFlags::empty(), &[0u8; 16], b"");
        assert_eq!(
            Envelope::parse(&data[..MIN_LEN - 1]),
            Err(CodecError::Truncated)
        );
        assert_eq!(Envelope::parse(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = assemble(KEY, "n", EnvelopeFlags::empty(), &[0u8; 16], b"x");
        data[0] = b'X';
        assert_eq!(Envelope::parse(&data), Err(CodecError::BadMagic));
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut data = assemble(KEY, "n", EnvelopeFlags::empty(), &[0u8; 16], b"x");
        data[4] = 0x80;
        assert_eq!(Envelope::parse(&data), Err(CodecError::UnknownFlags(0x80)));
    }

    #[test]
    fn flags_ops() {
        let f = EnvelopeFlags::COMPRESSED.union(EnvelopeFlags::ENCRYPTED);
        assert!(f.contains(EnvelopeFlags::COMPRESSED));
        assert!(f.contains(EnvelopeFlags::ENCRYPTED));
        assert!(!EnvelopeFlags::empty().contains(EnvelopeFlags::ENCRYPTED));
        assert_eq!(EnvelopeFlags::from_bits(f.bits()).unwrap(), f);
    }
}
