//! A bounded fan-out executor for the seal/PUT/GET hot paths.
//!
//! The uploader pool in `ginja.rs` already established the discipline this
//! module generalises: a fixed number of worker threads drain a queue of
//! independent jobs while a single consumer restores order. `FanoutExecutor`
//! packages that shape so the checkpointer, recovery, reboot resync, the
//! archiver and the sentinel repair path can all share it instead of each
//! growing a private thread pool.
//!
//! Two guarantees matter to every caller:
//!
//! * **In-order delivery.** `run_ordered` hands results to the consumer in
//!   exactly the input order, no matter how workers interleave. Completed
//!   out-of-order results park in a reorder buffer until their turn. This is
//!   what lets the checkpointer register a checkpoint in the cloud view only
//!   after *all* of its parts are durable, and lets recovery apply WAL
//!   objects in timestamp order while fetching them concurrently.
//! * **Abort on first error.** The first failure (from a worker or from the
//!   consumer) flips an abort flag; workers stop claiming new jobs, in-flight
//!   jobs finish and are discarded, and the earliest error in input order is
//!   returned. Callers therefore never observe a "later" success after a
//!   reported failure.
//!
//! Workers are spawned per wave with `std::thread::scope`, so job closures
//! may borrow non-`'static` state (`&dyn ObjectStore`, `&Codec`, local
//! buffers). A wave with one job — or an executor of width 1 — runs inline
//! on the caller's thread with zero spawns, keeping the serial path exactly
//! as cheap as it was before this module existed.
//!
//! # Fair sharing across tenants
//!
//! A plain executor bounds *one wave* at `width` concurrent jobs; when many
//! independent pipelines (fleet tenants) each run their own waves, nothing
//! bounds the total, and nothing stops one tenant's bulk dump from monopolising
//! the upload path while a neighbor's commit PUT waits. A **fair** executor
//! ([`FanoutExecutor::fair`]) adds a global admission gate: every job — wave
//! jobs and single PUT permits alike — must acquire one of `width` permits,
//! and a weighted **deficit round-robin** scheduler decides which *lane*
//! (tenant) the next free permit goes to. Each lane accrues credit in
//! proportion to its weight; a lane with queued work is never skipped more
//! than `⌈1/quantum⌉` full rotations before it is served, which bounds any
//! tenant's scheduling delay to roughly the sum of the other lanes' quanta —
//! the starvation bound the tests assert.
//!
//! [`FanoutHandle`] is the per-tenant view: a cheap clone of
//! `(executor, lane)` with the same `run_ordered`/`run_collect` surface, plus
//! [`FanoutHandle::with_permit`] for gating individual operations (the
//! uploaders' commit PUTs). [`FanoutHandle::solo`] wraps a private ungated
//! executor so single-tenant pipelines pay nothing for the feature.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Weights below this are clamped up: a zero quantum would never accrue
/// credit and the lane would starve by construction.
const MIN_WEIGHT: f64 = 1e-3;

/// One lane of the deficit round-robin scheduler.
#[derive(Debug)]
struct Lane {
    /// Quantum: credit gained per scheduler visit, i.e. the lane's weight.
    quantum: f64,
    /// Accumulated credit; one unit buys one job. Carries fractionally
    /// across rounds, resets when the lane has nothing queued.
    deficit: f64,
    /// Whether the lane has been topped up in its current turn — the
    /// quantum is charged once per visit, not once per grant, or a lane
    /// could re-earn credit without ever yielding the cursor.
    charged: bool,
    /// Acquire requests queued and not yet granted.
    pending: usize,
    /// Permits granted and consumable by this lane's waiting threads.
    grants: usize,
    /// Scheduler grants handed to this lane over its lifetime.
    granted: u64,
    /// Times the scheduler rotated away from this lane while it still had
    /// queued work (its turn's credit was spent).
    preemptions: u64,
    /// Waves run on this lane.
    waves: u64,
    /// Jobs run on this lane (wave jobs plus single permits).
    jobs: u64,
}

/// Deterministic weighted deficit round-robin core. Pure state machine —
/// no threads, no clocks — so the fairness and starvation properties are
/// unit-testable exactly.
#[derive(Debug, Default)]
struct DrrState {
    lanes: Vec<Lane>,
    cursor: usize,
    /// Jobs currently holding a permit, bounded by the executor width.
    in_flight: usize,
    /// High-water mark of `in_flight` — the observable proof that a shared
    /// executor really holds the fleet to one global width.
    max_in_flight: usize,
}

impl DrrState {
    fn register(&mut self, weight: f64) -> usize {
        self.lanes.push(Lane {
            quantum: weight.max(MIN_WEIGHT),
            deficit: 0.0,
            charged: false,
            pending: 0,
            grants: 0,
            granted: 0,
            preemptions: 0,
            waves: 0,
            jobs: 0,
        });
        self.lanes.len() - 1
    }

    fn total_pending(&self) -> usize {
        self.lanes.iter().map(|l| l.pending).sum()
    }

    /// Picks the lane the next permit goes to, consuming one pending
    /// request. Returns `None` only when nothing is queued.
    ///
    /// Classic DRR with unit job cost: visit the cursor lane; an empty lane
    /// forfeits its credit; a lane with work spends existing credit first,
    /// is topped up once per visit, and yields the cursor (a *preemption*)
    /// only when its credit is still short of one job. Termination is
    /// guaranteed because every full rotation adds `quantum > 0` to some
    /// lane with pending work.
    fn pick(&mut self) -> Option<usize> {
        if self.lanes.is_empty() || self.total_pending() == 0 {
            return None;
        }
        loop {
            let i = self.cursor;
            let n = self.lanes.len();
            let lane = &mut self.lanes[i];
            if lane.pending == 0 {
                lane.deficit = 0.0;
                lane.charged = false;
                self.cursor = (i + 1) % n;
                continue;
            }
            if !lane.charged {
                lane.deficit += lane.quantum;
                lane.charged = true;
            }
            if lane.deficit >= 1.0 {
                lane.deficit -= 1.0;
                lane.pending -= 1;
                lane.granted += 1;
                return Some(i);
            }
            // Charged but still short of one job: the turn is over and the
            // lane yields the cursor with work queued — a preemption. The
            // fractional deficit is carried, not lost.
            lane.preemptions += 1;
            lane.charged = false;
            self.cursor = (i + 1) % n;
        }
    }
}

/// Point-in-time scheduler counters for one lane, as rolled up into fleet
/// snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneSnapshot {
    /// Lane index (stable for the executor's lifetime).
    pub lane: usize,
    /// The lane's weight (DRR quantum).
    pub weight: f64,
    /// Waves run on this lane.
    pub waves: u64,
    /// Jobs run on this lane (wave jobs plus single permits).
    pub jobs: u64,
    /// Scheduler grants handed to this lane.
    pub granted: u64,
    /// Times the scheduler rotated away while this lane had queued work.
    pub preemptions: u64,
    /// Fractional credit the lane is currently carrying across rounds.
    pub deficit_carry: f64,
}

/// The admission gate of a fair executor: `width` permits, handed out by
/// the DRR scheduler, blocking acquirers per lane.
#[derive(Debug)]
struct FairGate {
    state: Mutex<DrrState>,
    granted: Condvar,
}

impl FairGate {
    fn new() -> Self {
        FairGate {
            state: Mutex::new(DrrState::default()),
            granted: Condvar::new(),
        }
    }

    /// Grants permits to scheduler-picked lanes while capacity remains.
    fn pump(&self, state: &mut DrrState, width: usize) {
        let mut any = false;
        while state.in_flight < width {
            match state.pick() {
                Some(lane) => {
                    state.lanes[lane].grants += 1;
                    state.in_flight += 1;
                    state.max_in_flight = state.max_in_flight.max(state.in_flight);
                    any = true;
                }
                None => break,
            }
        }
        if any {
            self.granted.notify_all();
        }
    }

    fn acquire(&self, lane: usize, width: usize) {
        let mut state = self.state.lock();
        if lane >= state.lanes.len() {
            // Unregistered lanes (defensive): admit without fairness
            // accounting rather than deadlock.
            return;
        }
        state.lanes[lane].pending += 1;
        self.pump(&mut state, width);
        while state.lanes[lane].grants == 0 {
            self.granted.wait(&mut state);
        }
        state.lanes[lane].grants -= 1;
    }

    fn release(&self, lane: usize, width: usize) {
        let mut state = self.state.lock();
        if lane >= state.lanes.len() {
            return;
        }
        state.in_flight -= 1;
        self.pump(&mut state, width);
    }
}

/// Releases the permit even if the gated job panics.
struct Permit<'a> {
    gate: &'a FairGate,
    lane: usize,
    width: usize,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release(self.lane, self.width);
    }
}

/// Shared, bounded fan-out executor. Cheap to keep around for the lifetime
/// of a pipeline: it holds no threads while idle, only the configured width
/// and a pair of usage counters (plus, for [fair](Self::fair) executors,
/// the scheduler state).
#[derive(Debug)]
pub struct FanoutExecutor {
    width: usize,
    waves: AtomicU64,
    jobs: AtomicU64,
    gate: Option<FairGate>,
}

impl FanoutExecutor {
    /// An executor that runs at most `width` jobs concurrently. A width of
    /// zero is clamped to one (serial).
    pub fn new(width: usize) -> Self {
        Self {
            width: width.max(1),
            waves: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            gate: None,
        }
    }

    /// A **fair-share** executor: at most `width` jobs in flight across
    /// *all* concurrent waves and permits, arbitrated between registered
    /// lanes by weighted deficit round-robin. Use [`Self::register_lane`]
    /// (or [`FanoutHandle::shared`]) to obtain lanes.
    pub fn fair(width: usize) -> Self {
        Self {
            width: width.max(1),
            waves: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            gate: Some(FairGate::new()),
        }
    }

    /// Whether this executor fair-shares a global width across lanes.
    pub fn is_fair(&self) -> bool {
        self.gate.is_some()
    }

    /// Maximum number of jobs in flight at once.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of waves (calls to `run_ordered`/`run_collect`) executed.
    pub fn waves(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Total jobs executed across all waves.
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Registers a scheduler lane with the given weight and returns its
    /// index. On a non-fair executor this is a no-op returning lane 0.
    pub fn register_lane(&self, weight: f64) -> usize {
        match &self.gate {
            Some(gate) => gate.state.lock().register(weight),
            None => 0,
        }
    }

    /// Scheduler counters for every registered lane (empty on a non-fair
    /// executor).
    pub fn lane_snapshots(&self) -> Vec<LaneSnapshot> {
        match &self.gate {
            Some(gate) => {
                let state = gate.state.lock();
                state
                    .lanes
                    .iter()
                    .enumerate()
                    .map(|(lane, l)| LaneSnapshot {
                        lane,
                        weight: l.quantum,
                        waves: l.waves,
                        jobs: l.jobs,
                        granted: l.granted,
                        preemptions: l.preemptions,
                        deficit_carry: l.deficit,
                    })
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// High-water mark of concurrently admitted jobs — on a fair executor
    /// this never exceeds [`width`](Self::width), whatever the number of
    /// concurrent waves. Zero on a non-fair executor.
    pub fn max_in_flight(&self) -> usize {
        match &self.gate {
            Some(gate) => gate.state.lock().max_in_flight,
            None => 0,
        }
    }

    fn count_lane(&self, lane: usize, waves: u64, jobs: u64) {
        if let Some(gate) = &self.gate {
            let mut state = gate.state.lock();
            if let Some(l) = state.lanes.get_mut(lane) {
                l.waves += waves;
                l.jobs += jobs;
            }
        }
    }

    /// Runs `f` while holding one admission permit on `lane`. On a
    /// non-fair executor this is exactly `f()`.
    fn with_permit_on<R>(&self, lane: usize, f: impl FnOnce() -> R) -> R {
        match &self.gate {
            Some(gate) => {
                gate.acquire(lane, self.width);
                let _permit = Permit {
                    gate,
                    lane,
                    width: self.width,
                };
                f()
            }
            None => f(),
        }
    }

    /// Run `jobs` concurrently (bounded by `width`), delivering each result
    /// to `consume` strictly in input order. Returns the first error in
    /// input order, from either `work` or `consume`; on error no further
    /// results are delivered.
    pub fn run_ordered<T, R, E>(
        &self,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
        consume: impl FnMut(usize, R) -> Result<(), E>,
    ) -> Result<(), E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        self.run_ordered_on(0, jobs, work, consume)
    }

    /// [`run_ordered`](Self::run_ordered), with every job admitted through
    /// the fair gate on `lane` (identical on a non-fair executor).
    pub fn run_ordered_on<T, R, E>(
        &self,
        lane: usize,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
        mut consume: impl FnMut(usize, R) -> Result<(), E>,
    ) -> Result<(), E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        let n = jobs.len();
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(n as u64, Ordering::Relaxed);
        self.count_lane(lane, 1, n as u64);
        let work = |idx: usize, job: T| self.with_permit_on(lane, || work(idx, job));

        // Serial fast path: nothing to overlap, so skip thread setup and run
        // on the caller's thread. Semantics are identical by construction.
        if self.width == 1 || n <= 1 {
            for (idx, job) in jobs.into_iter().enumerate() {
                consume(idx, work(idx, job)?)?;
            }
            return Ok(());
        }

        let slots: Vec<parking_lot::Mutex<Option<T>>> = jobs
            .into_iter()
            .map(|j| parking_lot::Mutex::new(Some(j)))
            .collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, Result<R, E>)>();
        let workers = self.width.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let slots = &slots;
                let next = &next;
                let abort = &abort;
                let work = &work;
                scope.spawn(move || {
                    loop {
                        if abort.load(Ordering::Acquire) {
                            return;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= slots.len() {
                            return;
                        }
                        // The claim above is the only writer of this slot,
                        // so the job is always present.
                        let job = slots[idx].lock().take().expect("job claimed twice");
                        let result = work(idx, job);
                        if result.is_err() {
                            abort.store(true, Ordering::Release);
                        }
                        if tx.send((idx, result)).is_err() {
                            // Consumer bailed; nothing left to report to.
                            return;
                        }
                    }
                });
            }
            drop(tx);

            // Reorder buffer: claimed indices always form a contiguous
            // prefix [0, k), and every claimed index sends exactly one
            // message, so waiting for `expect` either yields it or the
            // channel closes because workers aborted before claiming it.
            let mut parked: BTreeMap<usize, Result<R, E>> = BTreeMap::new();
            let mut expect = 0usize;
            let mut first_err: Option<(usize, E)> = None;
            while expect < n {
                let (idx, result) = match parked.remove(&expect) {
                    Some(r) => (expect, r),
                    None => match rx.recv() {
                        Ok(msg) => msg,
                        // Channel closed: workers aborted before claiming
                        // `expect`. The error that caused the abort is
                        // already parked or recorded.
                        Err(_) => break,
                    },
                };
                if idx != expect {
                    parked.insert(idx, result);
                    continue;
                }
                expect += 1;
                match result {
                    Ok(value) => {
                        if first_err.is_some() {
                            continue; // discard successes after a failure
                        }
                        if let Err(e) = consume(idx, value) {
                            abort.store(true, Ordering::Release);
                            first_err = Some((idx, e));
                        }
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some((idx, e));
                        }
                    }
                }
            }
            // Pick the earliest error in input order: a worker error at a
            // lower index may still be parked if the consumer failed first.
            drop(rx);
            for (idx, result) in parked {
                if let Err(e) = result {
                    match &first_err {
                        Some((at, _)) if *at <= idx => {}
                        _ => first_err = Some((idx, e)),
                    }
                }
            }
            match first_err {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        })
    }

    /// Run `jobs` concurrently and collect all results in input order.
    /// Convenience wrapper over [`run_ordered`](Self::run_ordered).
    pub fn run_collect<T, R, E>(
        &self,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        let mut out = Vec::with_capacity(jobs.len());
        self.run_ordered(jobs, work, |_, r| {
            out.push(r);
            Ok(())
        })?;
        Ok(out)
    }
}

/// A lane-scoped handle to a (possibly shared) [`FanoutExecutor`].
///
/// This is what a pipeline holds: the executor plus the lane the pipeline's
/// jobs are billed to. Cloning is cheap (an `Arc` and an index). A
/// single-tenant pipeline uses [`solo`](Self::solo) and behaves exactly as
/// if it held the executor directly; fleet tenants share one fair executor
/// through per-tenant handles obtained with [`shared`](Self::shared).
#[derive(Debug, Clone)]
pub struct FanoutHandle {
    exec: Arc<FanoutExecutor>,
    lane: usize,
}

impl FanoutHandle {
    /// A private, ungated executor of the given width — the single-tenant
    /// configuration.
    pub fn solo(width: usize) -> Self {
        FanoutHandle {
            exec: Arc::new(FanoutExecutor::new(width)),
            lane: 0,
        }
    }

    /// Registers a new lane of the given weight on a shared executor and
    /// returns the handle for it.
    pub fn shared(exec: Arc<FanoutExecutor>, weight: f64) -> Self {
        let lane = exec.register_lane(weight);
        FanoutHandle { exec, lane }
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Arc<FanoutExecutor> {
        &self.exec
    }

    /// This handle's scheduler lane.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The executor's width (global bound when fair).
    pub fn width(&self) -> usize {
        self.exec.width()
    }

    /// Waves run on this lane (executor-wide on a non-fair executor).
    pub fn waves(&self) -> u64 {
        match self.lane_snapshot() {
            Some(snap) => snap.waves,
            None => self.exec.waves(),
        }
    }

    /// Jobs run on this lane (executor-wide on a non-fair executor).
    pub fn jobs(&self) -> u64 {
        match self.lane_snapshot() {
            Some(snap) => snap.jobs,
            None => self.exec.jobs(),
        }
    }

    /// This lane's scheduler counters, if the executor is fair.
    pub fn lane_snapshot(&self) -> Option<LaneSnapshot> {
        self.exec.lane_snapshots().into_iter().nth(self.lane)
    }

    /// Runs `f` as one fair-scheduled job on this lane: acquires an
    /// admission permit, runs, releases. On a solo handle this is exactly
    /// `f()`. Use for single operations (a commit PUT) that must compete
    /// fairly with waves.
    pub fn with_permit<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.exec.is_fair() {
            self.exec.count_lane(self.lane, 0, 1);
        }
        self.exec.with_permit_on(self.lane, f)
    }

    /// [`FanoutExecutor::run_ordered`] on this handle's lane.
    pub fn run_ordered<T, R, E>(
        &self,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
        consume: impl FnMut(usize, R) -> Result<(), E>,
    ) -> Result<(), E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        self.exec.run_ordered_on(self.lane, jobs, work, consume)
    }

    /// [`FanoutExecutor::run_collect`] on this handle's lane.
    pub fn run_collect<T, R, E>(
        &self,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        let mut out = Vec::with_capacity(jobs.len());
        self.run_ordered(jobs, work, |_, r| {
            out.push(r);
            Ok(())
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn collects_in_order_despite_reversed_completion() {
        let exec = FanoutExecutor::new(8);
        // Later jobs finish sooner: delivery must still be 0..n.
        let jobs: Vec<u64> = (0..16).collect();
        let out = exec
            .run_collect(jobs, |idx, v| {
                std::thread::sleep(Duration::from_millis(20u64.saturating_sub(idx as u64)));
                Ok::<u64, ()>(v * 10)
            })
            .unwrap();
        assert_eq!(out, (0..16).map(|v| v * 10).collect::<Vec<u64>>());
        assert_eq!(exec.waves(), 1);
        assert_eq!(exec.jobs(), 16);
    }

    #[test]
    fn consume_sees_strictly_increasing_indices() {
        let exec = FanoutExecutor::new(4);
        let mut seen = Vec::new();
        exec.run_ordered(
            (0..32).collect::<Vec<u32>>(),
            |_, v| Ok::<u32, ()>(v),
            |idx, v| {
                assert_eq!(idx as u32, v);
                seen.push(idx);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, (0..32).collect::<Vec<usize>>());
    }

    #[test]
    fn first_error_in_input_order_wins() {
        let exec = FanoutExecutor::new(8);
        let err = exec
            .run_collect((0..16).collect::<Vec<u32>>(), |idx, v| {
                if idx == 3 || idx == 11 {
                    // Make the later failure land first.
                    if idx == 3 {
                        std::thread::sleep(Duration::from_millis(30));
                    }
                    Err(format!("job {v} failed"))
                } else {
                    Ok(v)
                }
            })
            .unwrap_err();
        assert_eq!(err, "job 3 failed");
    }

    #[test]
    fn error_stops_claiming_new_jobs() {
        let exec = FanoutExecutor::new(2);
        let started = AtomicUsize::new(0);
        let started_ref = &started;
        let result = exec.run_collect((0..1000).collect::<Vec<u32>>(), |idx, _| {
            started_ref.fetch_add(1, Ordering::Relaxed);
            if idx == 0 {
                Err("boom")
            } else {
                std::thread::sleep(Duration::from_millis(1));
                Ok(idx)
            }
        });
        assert_eq!(result.unwrap_err(), "boom");
        // With width 2 and an instant failure at idx 0, almost all of the
        // 1000 jobs must never start. Allow generous slack for scheduling.
        assert!(started.load(Ordering::Relaxed) < 100);
    }

    #[test]
    fn consumer_error_aborts_and_is_returned() {
        let exec = FanoutExecutor::new(4);
        let err = exec
            .run_ordered(
                (0..64).collect::<Vec<u32>>(),
                |_, v| Ok::<u32, &str>(v),
                |idx, _| if idx == 5 { Err("consumer") } else { Ok(()) },
            )
            .unwrap_err();
        assert_eq!(err, "consumer");
    }

    #[test]
    fn width_one_and_singleton_waves_run_inline() {
        let serial = FanoutExecutor::new(1);
        let out = serial
            .run_collect(vec![1, 2, 3], |_, v| Ok::<i32, ()>(v + 1))
            .unwrap();
        assert_eq!(out, vec![2, 3, 4]);

        let wide = FanoutExecutor::new(8);
        let out = wide.run_collect(vec![7], |_, v| Ok::<i32, ()>(v)).unwrap();
        assert_eq!(out, vec![7]);
        assert!(wide
            .run_collect(Vec::new(), |_, v: u8| Ok::<u8, ()>(v))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn zero_width_is_clamped_to_serial() {
        let exec = FanoutExecutor::new(0);
        assert_eq!(exec.width(), 1);
        let out = exec.run_collect(vec![5u8], |_, v| Ok::<u8, ()>(v)).unwrap();
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn borrows_non_static_state() {
        // The whole point of scoped threads: closures may borrow locals.
        let data = [10u64, 20, 30, 40];
        let exec = FanoutExecutor::new(4);
        let out = exec
            .run_collect((0..data.len()).collect::<Vec<usize>>(), |_, i| {
                Ok::<u64, ()>(data[i] * 2)
            })
            .unwrap();
        assert_eq!(out, vec![20, 40, 60, 80]);
    }

    // ---- deterministic DRR core ------------------------------------

    /// Drains `per_lane` pending jobs through the scheduler, returning the
    /// grant order.
    fn drain(state: &mut DrrState, per_lane: &[usize]) -> Vec<usize> {
        for (lane, &n) in per_lane.iter().enumerate() {
            state.lanes[lane].pending += n;
        }
        let mut order = Vec::new();
        while let Some(lane) = state.pick() {
            order.push(lane);
        }
        order
    }

    #[test]
    fn equal_weights_alternate() {
        let mut state = DrrState::default();
        state.register(1.0);
        state.register(1.0);
        let order = drain(&mut state, &[4, 4]);
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn weights_set_the_service_ratio() {
        let mut state = DrrState::default();
        state.register(3.0);
        state.register(1.0);
        let order = drain(&mut state, &[30, 10]);
        // 3:1 quantum → the steady-state pattern serves lane 0 three
        // times per lane-1 grant, exactly.
        let lane0: usize = order.iter().filter(|&&l| l == 0).count();
        let lane1 = order.len() - lane0;
        assert_eq!((lane0, lane1), (30, 10));
        // Check the ratio holds in every window, not just in total: after
        // any prefix, the counts differ from 3:1 by at most one quantum.
        let mut c0 = 0f64;
        let mut c1 = 0f64;
        for &l in &order {
            if l == 0 {
                c0 += 1.0;
            } else {
                c1 += 1.0;
            }
            if c0 >= 3.0 && c1 >= 1.0 {
                assert!(
                    (c0 / c1.max(1.0) - 3.0).abs() <= 3.0,
                    "ratio drifted: {c0}:{c1}"
                );
            }
        }
    }

    #[test]
    fn fractional_weights_carry_deficit_across_rounds() {
        let mut state = DrrState::default();
        state.register(1.0);
        state.register(0.5);
        let order = drain(&mut state, &[8, 4]);
        // Lane 1 accrues 0.5 credit per visit: it is served on every
        // second rotation, with the fraction carried (not lost) between.
        let lane1: usize = order.iter().filter(|&&l| l == 1).count();
        assert_eq!(lane1, 4);
        // The first lane-1 grant requires two visits (0.5 + 0.5), so at
        // least one preemption must have been recorded for it.
        assert!(state.lanes[1].preemptions >= 1);
    }

    #[test]
    fn starvation_bound_holds_for_light_lanes() {
        // One heavy lane (weight 8) against three light ones: any light
        // lane with queued work is served within one full rotation's
        // worth of other lanes' quanta — ⌈8⌉ + 1 + 1 + slack grants.
        let mut state = DrrState::default();
        state.register(8.0);
        for _ in 0..3 {
            state.register(1.0);
        }
        let order = drain(&mut state, &[100, 10, 10, 10]);
        let bound = 8 + 3 + 1; // sum of the other lanes' quanta, rounded up
        for lane in 1..4 {
            let mut since = 0usize;
            let mut pending = 10usize;
            for &l in &order {
                if pending == 0 {
                    break;
                }
                if l == lane {
                    since = 0;
                    pending -= 1;
                } else {
                    since += 1;
                    assert!(
                        since <= bound,
                        "lane {lane} waited {since} grants (> {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn idle_lane_forfeits_credit() {
        let mut state = DrrState::default();
        state.register(1.0);
        state.register(1.0);
        // Lane 1 idles while lane 0 drains 10 jobs...
        let solo = drain(&mut state, &[10, 0]);
        assert!(solo.iter().all(|&l| l == 0));
        // ...then wakes with work: its deficit was reset, so it cannot
        // burst ahead of lane 0 beyond its quantum.
        let order = drain(&mut state, &[5, 5]);
        let first_zero = order.iter().position(|&l| l == 0).unwrap();
        assert!(
            first_zero <= 1,
            "lane 0 locked out by stale credit: {order:?}"
        );
    }

    #[test]
    fn deficit_carry_is_observable() {
        let mut state = DrrState::default();
        state.register(0.7);
        state.lanes[0].pending = 1;
        // First visit: 0.7 credit, short of a job → preempt, carry 0.7.
        assert_eq!(state.pick(), Some(0));
        // (pick loops internally until the grant: 0.7 then 1.4 → grant,
        // leaving 0.4 carried.)
        assert!((state.lanes[0].deficit - 0.4).abs() < 1e-9);
        assert_eq!(state.lanes[0].preemptions, 1);
    }

    // ---- the fair gate under real threads ---------------------------

    #[test]
    fn fair_executor_bounds_global_in_flight() {
        let exec = Arc::new(FanoutExecutor::fair(2));
        let a = FanoutHandle::shared(exec.clone(), 1.0);
        let b = FanoutHandle::shared(exec.clone(), 1.0);
        let live = Arc::new(AtomicUsize::new(0));
        let high = Arc::new(AtomicUsize::new(0));
        let run = |handle: FanoutHandle, live: Arc<AtomicUsize>, high: Arc<AtomicUsize>| {
            std::thread::spawn(move || {
                handle
                    .run_collect((0..20).collect::<Vec<u32>>(), |_, v| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        high.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(2));
                        live.fetch_sub(1, Ordering::SeqCst);
                        Ok::<u32, ()>(v)
                    })
                    .unwrap();
            })
        };
        let t1 = run(a.clone(), live.clone(), high.clone());
        let t2 = run(b.clone(), live.clone(), high.clone());
        t1.join().unwrap();
        t2.join().unwrap();
        // Two concurrent waves of width-2 each would reach 4 in flight on
        // a plain executor; the fair gate holds the fleet to 2.
        assert!(high.load(Ordering::SeqCst) <= 2);
        assert!(exec.max_in_flight() <= 2);
        assert_eq!(a.jobs() + b.jobs(), 40);
        assert_eq!(a.waves(), 1);
        assert_eq!(b.waves(), 1);
    }

    #[test]
    fn flooding_lane_cannot_starve_a_light_one() {
        let exec = Arc::new(FanoutExecutor::fair(2));
        let bulk = FanoutHandle::shared(exec.clone(), 1.0);
        let latency = FanoutHandle::shared(exec.clone(), 1.0);
        let done = Arc::new(AtomicBool::new(false));

        // The bulk tenant floods long waves back to back.
        let flood = {
            let bulk = bulk.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    bulk.run_collect((0..16).collect::<Vec<u32>>(), |_, v| {
                        std::thread::sleep(Duration::from_millis(1));
                        Ok::<u32, ()>(v)
                    })
                    .unwrap();
                }
            })
        };

        // Give the flood a head start, then time single commit-style
        // permits on the light lane.
        std::thread::sleep(Duration::from_millis(20));
        let mut worst = Duration::ZERO;
        for _ in 0..20 {
            let t = std::time::Instant::now();
            latency.with_permit(|| std::thread::sleep(Duration::from_millis(1)));
            worst = worst.max(t.elapsed());
        }
        done.store(true, Ordering::SeqCst);
        flood.join().unwrap();

        // DRR guarantees the light lane a grant within ~one rotation of
        // the bulk lane's quantum: a handful of 1 ms jobs, not the whole
        // flood. Generous bound for slow CI machines.
        assert!(
            worst < Duration::from_millis(250),
            "light lane starved: worst wait {worst:?}"
        );
        let snaps = exec.lane_snapshots();
        assert_eq!(snaps.len(), 2);
        assert!(snaps[0].granted > 0 && snaps[1].granted > 0);
    }

    #[test]
    fn solo_handle_is_a_plain_executor() {
        let handle = FanoutHandle::solo(4);
        assert!(!handle.executor().is_fair());
        let out = handle
            .run_collect(vec![1u8, 2, 3], |_, v| Ok::<u8, ()>(v * 2))
            .unwrap();
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(handle.waves(), 1);
        assert_eq!(handle.jobs(), 3);
        assert_eq!(handle.with_permit(|| 42), 42);
        assert!(handle.lane_snapshot().is_none());
    }
}
