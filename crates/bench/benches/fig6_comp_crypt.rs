//! Figure 6: effect of compression and cryptography on the performance
//! of Ginja, for (B, S) ∈ {(10,100), (100,1000), (1000,10000)} with
//! PostgreSQL and MySQL.
//!
//! The paper's findings: for PostgreSQL the results "vary slightly, as
//! the latency of uploading compressed data is smaller", encryption adds
//! minimal overhead; for MySQL "there are basically no changes in
//! performance" because its 512-byte WAL pages see little benefit.

use std::time::Duration;

use ginja_bench::rig::{template, ProtectedRig, RigOptions};
use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, sim_minutes, time_scale, to_sim_per_minute};
use ginja_codec::CodecConfig;
use ginja_core::GinjaConfig;
use ginja_db::ProfileKind;
use ginja_workload::TpccScale;

fn config(batch: usize, safety: usize, codec: CodecConfig) -> GinjaConfig {
    let scale = time_scale();
    GinjaConfig::builder()
        .batch(batch)
        .safety(safety)
        .batch_timeout(Duration::from_secs_f64(5.0 * scale))
        .safety_timeout(Duration::from_secs_f64(30.0 * scale))
        .uploaders(5)
        .codec(codec)
        .build()
        .expect("valid config")
}

fn codec_variants() -> Vec<(&'static str, CodecConfig)> {
    vec![
        ("Normal", CodecConfig::new()),
        ("Comp", CodecConfig::new().compression(true)),
        ("Crypt", CodecConfig::new().password("fig6-password")),
        (
            "C+C",
            CodecConfig::new()
                .compression(true)
                .password("fig6-password"),
        ),
    ]
}

fn main() {
    println!(
        "time scale: {} | simulated minutes per run: {}",
        time_scale(),
        sim_minutes()
    );
    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        let (warehouses, name) = match kind {
            ProfileKind::Postgres => (1, "PostgreSQL"),
            ProfileKind::MySql => (2, "MySQL"),
        };
        println!(
            "\n== Figure 6{}: {name} — compression/encryption vs. throughput ==",
            if kind == ProfileKind::Postgres {
                "a"
            } else {
                "b"
            }
        );
        let template_fs = template(kind, warehouses, TpccScale::bench(), 0xF16);

        let mut t = Table::new(&[
            "B/S",
            "variant",
            "Tpm-C",
            "Tpm-Total",
            "seal ratio",
            "% of Normal",
        ]);
        for (batch, safety) in [(10usize, 100usize), (100, 1000), (1000, 10000)] {
            let mut normal_total = None;
            for (label, codec) in codec_variants() {
                let mut options = match kind {
                    ProfileKind::Postgres => RigOptions::postgres(config(batch, safety, codec)),
                    ProfileKind::MySql => RigOptions::mysql(config(batch, safety, codec)),
                };
                options.seed = 0xF16;
                let rig = ProtectedRig::build(&template_fs, options);
                let report = rig.run(run_wall_duration());
                let (stats, _usage) = rig.finish();
                let stats = stats.expect("ginja rig");
                let tpm_total = to_sim_per_minute(report.tpm_total());
                let tpm_c = to_sim_per_minute(report.tpm_c());
                let base = *normal_total.get_or_insert(tpm_total);
                t.row(&[
                    format!("{batch}/{safety}"),
                    label.to_string(),
                    fmt(tpm_c, 0),
                    fmt(tpm_total, 0),
                    fmt(stats.wal_seal_ratio(), 2),
                    fmt(tpm_total / base * 100.0, 1),
                ]);
            }
        }
        println!();
        t.print();
        println!(
            "shape check ({name}): all variants within a small band of Normal — \
             compression/encryption do not change the throughput picture"
        );
    }
}
