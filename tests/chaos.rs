//! Chaos testing: TPC-C traffic with randomized cloud faults injected
//! throughout, ending in a disaster — the recovered database must
//! always pass the consistency probe.

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{FaultPlan, FaultStore, MemStore, OpKind};
use ginja::core::{
    recover_into, BreakerState, Ginja, GinjaConfig, GinjaStatsSnapshot, RetryConfig,
};
use ginja::db::{Database, DbProfile, ProfileKind};
use ginja::vfs::{
    DbmsProcessor, FileSystem, InterceptFs, MemFs, MySqlProcessor, PostgresProcessor,
};
use ginja::workload::{probe_tpcc, Tpcc, TpccScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_chaos(kind: ProfileKind, seed: u64, rounds: usize) {
    let profile = match kind {
        ProfileKind::Postgres => DbProfile::postgres_small().with_checkpoint_every(30),
        ProfileKind::MySql => DbProfile::mysql_small().with_checkpoint_every(30),
    };
    let processor: Arc<dyn DbmsProcessor> = match kind {
        ProfileKind::Postgres => Arc::new(PostgresProcessor::new()),
        ProfileKind::MySql => Arc::new(MySqlProcessor::new()),
    };
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, seed, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    let config = GinjaConfig::builder()
        .batch(6)
        .safety(90)
        .batch_timeout(Duration::from_millis(10))
        .safety_timeout(Duration::from_secs(30))
        // Production-scale backoff (10 ms…2 s, 5 s breaker cooldown)
        // would dominate this test's wall clock; scale it down while
        // keeping the same shape.
        .retry(RetryConfig {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            breaker_cooldown: Duration::from_millis(100),
            ..RetryConfig::default()
        })
        .build()
        .unwrap();
    let ginja = Ginja::boot(local.clone(), cloud, processor, config.clone()).unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();

    // Interleave traffic with random fault injection.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4405);
    for _ in 0..rounds {
        match rng.gen_range(0..10u32) {
            0 => plan.fail_next(OpKind::Put, rng.gen_range(1..5)),
            1 => plan.fail_next(OpKind::Delete, rng.gen_range(1..8)),
            2 => plan.fail_matching(OpKind::Put, "DB/", 1),
            _ => {}
        }
        for _ in 0..rng.gen_range(1..12) {
            tpcc.run_transaction(&db).unwrap();
        }
    }

    // Let everything land, then disaster.
    assert!(
        ginja.sync(Duration::from_secs(30)),
        "pipeline must drain after chaos"
    );
    ginja.shutdown();
    let reference_stock = db.dump_table(ginja::workload::tables::STOCK).unwrap();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    assert_eq!(
        db.dump_table(ginja::workload::tables::STOCK).unwrap(),
        reference_stock
    );
    let probe = probe_tpcc(&db).unwrap();
    assert!(probe.is_consistent(), "{kind:?} seed {seed}: {probe:?}");
}

#[test]
fn chaos_short_postgres() {
    for seed in [1u64, 2, 3] {
        run_chaos(ProfileKind::Postgres, seed, 25);
    }
}

#[test]
fn chaos_short_mysql() {
    for seed in [4u64, 5, 6] {
        run_chaos(ProfileKind::MySql, seed, 25);
    }
}

/// Long soak — run explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "long soak; run on demand"]
fn chaos_soak() {
    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        for seed in 0..20u64 {
            run_chaos(kind, seed, 120);
        }
    }
}

/// Runs a fixed TPC-C workload against a cloud whose `put`s fail
/// transiently with probability `p`, under the given retry policy.
/// Returns the final stats and the recovered-vs-reference comparison
/// outcome (recovery must always be lossless — that part is asserted
/// here, not returned).
fn run_with_put_faults(p: f64, seed: u64, retry: RetryConfig) -> GinjaStatsSnapshot {
    let profile = DbProfile::postgres_small().with_checkpoint_every(40);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, seed, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    // Small Batch/Safety so a stalled upload visibly blocks the DBMS.
    let config = GinjaConfig::builder()
        .batch(2)
        .safety(4)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(30))
        .retry(retry)
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .unwrap();
    // Faults start only after boot so both runs boot identically.
    plan.fail_randomly(OpKind::Put, p, seed);

    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();
    for _ in 0..120 {
        tpcc.run_transaction(&db).unwrap();
    }

    assert!(
        ginja.sync(Duration::from_secs(60)),
        "pipeline must drain despite faults"
    );
    let stats = ginja.stats();
    ginja.shutdown();
    plan.clear();
    let reference_stock = db.dump_table(ginja::workload::tables::STOCK).unwrap();
    drop(db);

    // Zero lost updates: the recovered database matches the survivor.
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    assert_eq!(
        db.dump_table(ginja::workload::tables::STOCK).unwrap(),
        reference_stock
    );
    let probe = probe_tpcc(&db).unwrap();
    assert!(probe.is_consistent(), "seed {seed}: {probe:?}");

    stats
}

/// The headline resilience ablation (the ISSUE's acceptance criterion):
/// with 20 % transient put failures a TPC-C run completes with zero
/// lost updates and a nonzero in-layer retry count — and the very same
/// run with retries disabled still loses nothing, but measurably blocks
/// the DBMS for longer, because every fault then costs a trip through
/// the outer safety loop's much coarser backoff.
#[test]
fn chaos_retry_policy_reduces_blocking_under_transient_faults() {
    let seed = 0xC4405;
    // In-layer policy: fast jittered backoff; breaker off so the
    // comparison isolates retry backoff alone.
    let enabled = RetryConfig {
        max_attempts: 12,
        base_delay: Duration::from_micros(500),
        max_delay: Duration::from_millis(5),
        breaker_threshold: 0,
        ..RetryConfig::default()
    };
    let with_retries = run_with_put_faults(0.2, seed, enabled);
    let without_retries = run_with_put_faults(0.2, seed, RetryConfig::disabled());

    // The resilient run absorbed faults in-layer...
    assert!(
        with_retries.cloud_retries > 0,
        "20% fault rate must force in-layer retries: {with_retries:?}"
    );
    // ...the ablated run could not, by construction...
    assert_eq!(without_retries.cloud_retries, 0);
    assert!(
        without_retries.upload_retries > 0,
        "disabled retries must surface faults to the outer loop: {without_retries:?}"
    );
    // ...and paying the outer loop's coarse backoff for every fault
    // blocks the DBMS measurably longer.
    assert!(
        without_retries.blocked_time > with_retries.blocked_time,
        "expected retries to shrink blocked time: {:?} (with) vs {:?} (without)",
        with_retries.blocked_time,
        without_retries.blocked_time
    );
}

/// Regression pin for the `chaos_short_postgres` flake (deterministic
/// reproduction of its root cause).
///
/// Two bugs compounded. First, the checkpoint watermark *regressed*:
/// it was taken from `last_wal_ts()`, which is the max key of the WAL
/// map — and a checkpoint's own GC empties that map, so the next
/// checkpoint (if no WAL object landed in between) was stamped with a
/// stale, smaller timestamp. Colliding timestamps are resolved by
/// keeping one generation per ts (a dump beats a checkpoint; within a
/// kind, larger wins), and a checkpoint stamped at or before the
/// newest dump is invisible to recovery (`checkpoints_after` starts
/// after the dump) — so a regressed watermark can orphan freshly
/// flushed pages the moment their covering WAL is GC'd. The fix is
/// `CloudView::watermark()`: the frontier never regresses below the
/// newest DB object, so the post-GC checkpoint lands *on* its
/// predecessor's timestamp and must merge with it.
///
/// Second, that merge silently degraded: it starts by GETting the old
/// generation's parts, and the old code skipped the merge on the first
/// GET failure (e.g. breaker open during an outage), uploading a
/// non-superset object at the same timestamp. If that object was the
/// larger one, recovery discarded the old generation — the only
/// remaining image of its pages, their WAL having been GC'd when the
/// first checkpoint landed — and silently lost data. The fix retries
/// the merge GETs as stubbornly as uploads.
///
/// This test forces that exact sequence with no timing dependence:
/// rows A are checkpointed (their WAL objects are then GC'd, so the
/// next watermark would regress without the fix), the merge GETs of
/// the *next* checkpoint are made to fail transiently, and rows B —
/// chosen to make the colliding object strictly larger — are
/// checkpointed with no WAL object in between (Batch is far away and
/// the batch timeout long), forcing a same-timestamp merge. With both
/// fixes the uploaded object is a true superset and recovery must see
/// every row of A and B; with either bug present, rows A vanish.
#[test]
fn chaos_checkpoint_ts_collision_merge_survives_get_faults() {
    const TABLE: u32 = 91;
    let profile = DbProfile::postgres_small().with_checkpoint_every(100_000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    // Two slots per 8 KiB page: rows A and rows B occupy disjoint
    // pages, so neither checkpoint's object subsumes the other's
    // pages by accident.
    db.create_table(TABLE, 4000).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    // Large Batch + long batch timeout: WAL objects form only when
    // sync() force-flushes, so both manual checkpoints below capture
    // the same WAL frontier timestamp. Retries are disabled so the
    // injected GET faults reach the checkpointer's merge directly.
    let config = GinjaConfig::builder()
        .batch(100)
        .safety(1000)
        .batch_timeout(Duration::from_secs(10))
        .safety_timeout(Duration::from_secs(30))
        .retry(RetryConfig::disabled())
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();

    // Rows A, flushed to the cloud as WAL objects, then checkpointed.
    // The checkpoint's GC deletes those WAL objects: rows A now live
    // only in the checkpoint object.
    let big_row = |tag: &str, key: u64| -> Vec<u8> {
        let mut value = format!("{tag}-{key}").into_bytes();
        value.resize(3500, b'.');
        value
    };
    for key in 0..3u64 {
        db.put(TABLE, key, big_row("row-a", key)).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(30)), "rows A must flush");
    let before = ginja.stats();
    db.checkpoint().unwrap();
    assert!(
        ginja.sync(Duration::from_secs(30)),
        "checkpoint 1 must land"
    );
    let after_first = ginja.stats();
    assert!(
        after_first.db_objects_uploaded > before.db_objects_uploaded,
        "checkpoint 1 must upload a DB object: {after_first:?}"
    );
    assert!(
        after_first.gc_deletes > before.gc_deletes,
        "checkpoint 1 must GC the covered WAL objects: {after_first:?}"
    );

    // Every DB-object GET now fails a few times: the old code skipped
    // the merge on the first failure, the fix keeps retrying.
    plan.fail_matching(OpKind::Get, "DB/", 4);

    // Rows B: strictly more pages than rows A, so the colliding object
    // is the larger generation — the one recovery will keep. No WAL
    // object forms before the checkpoint captures its timestamp
    // (9 updates < Batch=100, timeout far away), so this checkpoint
    // collides with checkpoint 1's timestamp and must merge.
    for key in 10..19u64 {
        db.put(TABLE, key, big_row("row-b", key)).unwrap();
    }
    db.checkpoint().unwrap();
    assert!(
        ginja.sync(Duration::from_secs(30)),
        "checkpoint 2 must land"
    );
    ginja.shutdown();
    drop(db);
    assert!(
        plan.injected_count() > 0,
        "vacuous test: checkpoint 2 never issued the merge GETs"
    );

    // Disaster. Every acknowledged row must survive: rows A exist only
    // in the (merged) checkpoint object at the collided timestamp.
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    let big_row = |tag: &str, key: u64| -> Vec<u8> {
        let mut value = format!("{tag}-{key}").into_bytes();
        value.resize(3500, b'.');
        value
    };
    for key in 0..3u64 {
        assert_eq!(
            db.get(TABLE, key).unwrap(),
            Some(big_row("row-a", key)),
            "row A {key} lost: the ts-collision merge dropped the old generation"
        );
    }
    for key in 10..19u64 {
        assert_eq!(
            db.get(TABLE, key).unwrap(),
            Some(big_row("row-b", key)),
            "row B {key} lost"
        );
    }
}

/// The third compounding failure mode of the same collision family: a
/// *merge upload that dies mid-generation*. The merged object is a
/// superset and therefore larger, so if some of its parts land before
/// the wave aborts (retries exhausted, breaker open, crash), the
/// bucket holds a partial generation that outranks the registered one
/// on kind/size alone — yet can never be applied, because recovery
/// skips incomplete entries. A listing-rebuilt view that let it win
/// would evict the complete generation recovery actually needs, whose
/// covering WAL is long GC'd: silent loss. `CloudView::from_listing`
/// now resolves colliding generations completeness-first.
///
/// The partial generation is planted directly (one fabricated part
/// name next to the real checkpoint), making the scenario exact and
/// timing-free: neither the buggy nor the fixed path ever GETs the
/// partial object, so its bytes are irrelevant — only the name wars.
#[test]
fn chaos_aborted_merge_partial_generation_never_wins_recovery() {
    use ginja::cloud::ObjectStore;
    use ginja::core::{DbObjectKind, DbObjectName};

    const TABLE: u32 = 92;
    let profile = DbProfile::postgres_small().with_checkpoint_every(100_000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    db.create_table(TABLE, 4000).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let config = GinjaConfig::builder()
        .batch(100)
        .safety(1000)
        .batch_timeout(Duration::from_secs(10))
        .safety_timeout(Duration::from_secs(30))
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        mem.clone(),
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();

    // Rows A, flushed as WAL objects and then checkpointed; the
    // checkpoint's GC deletes the WAL, so rows A now live only in the
    // checkpoint object.
    let big_row = |key: u64| -> Vec<u8> {
        let mut value = format!("row-a-{key}").into_bytes();
        value.resize(3500, b'.');
        value
    };
    for key in 0..3u64 {
        db.put(TABLE, key, big_row(key)).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(30)), "rows A must flush");
    let before = ginja.stats();
    db.checkpoint().unwrap();
    assert!(ginja.sync(Duration::from_secs(30)), "checkpoint must land");
    let after = ginja.stats();
    assert!(after.db_objects_uploaded > before.db_objects_uploaded);
    assert!(
        after.gc_deletes > before.gc_deletes,
        "checkpoint must GC the covered WAL objects: {after:?}"
    );
    ginja.shutdown();
    drop(db);

    // Plant the aborted merge: one part (of a declared two) of a
    // larger generation at the registered checkpoint's timestamp.
    let registered = mem
        .list("DB/")
        .unwrap()
        .into_iter()
        .map(|n| DbObjectName::parse(&n).unwrap())
        .find(|n| n.kind == DbObjectKind::Checkpoint)
        .expect("a registered checkpoint object");
    let partial = DbObjectName {
        ts: registered.ts,
        kind: DbObjectKind::Checkpoint,
        size: registered.size + 4096,
        part: 0,
        parts: 2,
    };
    mem.put(&partial.to_name(), b"aborted merge wreckage")
        .unwrap();

    // Disaster. The partial generation must not evict the complete
    // one: rows A have no other surviving image.
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    for key in 0..3u64 {
        assert_eq!(
            db.get(TABLE, key).unwrap(),
            Some(big_row(key)),
            "row A {key} lost: the partial generation won the listing"
        );
    }
}

/// A sustained outage must trip the circuit breaker and *block* the
/// DBMS at the Safety limit — never drop an update. When the cloud
/// returns, everything drains and recovery is lossless.
#[test]
fn chaos_outage_trips_breaker_and_blocks_dbms() {
    let profile = DbProfile::postgres_small().with_checkpoint_every(1000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, 7, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    let config = GinjaConfig::builder()
        .batch(2)
        .safety(4)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(60))
        .retry(RetryConfig {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
            breaker_probes: 1,
            ..RetryConfig::default()
        })
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();

    // Healthy warm-up.
    for _ in 0..10 {
        tpcc.run_transaction(&db).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(30)));
    assert_eq!(ginja.exposure().breaker, BreakerState::Closed);

    // Total outage: every cloud op fails until restore().
    plan.outage();
    let writer = {
        let ginja = ginja.clone();
        std::thread::spawn(move || {
            for _ in 0..40 {
                tpcc.run_transaction(&db).unwrap();
            }
            let _ = &ginja; // keep a handle so exposure polls race safely
            (db, tpcc)
        })
    };

    // The breaker must open, and exposure must saturate at Safety
    // (writes are blocking, not failing, not being dropped).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let exposure = ginja.exposure();
        if exposure.breaker == BreakerState::Open && exposure.updates >= config.safety {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "breaker never opened / queue never saturated: {exposure:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        !writer.is_finished(),
        "writer must be blocked at the Safety limit"
    );

    // Cloud returns: the breaker probes, closes, everything drains.
    plan.restore();
    let (db, _tpcc) = writer.join().unwrap();
    assert!(
        ginja.sync(Duration::from_secs(60)),
        "pipeline must drain after the outage"
    );
    let stats = ginja.stats();
    assert!(stats.breaker_trips >= 1, "{stats:?}");
    assert!(stats.breaker_fast_fails >= 1, "{stats:?}");
    assert!(stats.breaker_open_time > Duration::ZERO, "{stats:?}");
    assert!(
        stats.updates_blocked > 0,
        "the outage must have blocked the DBMS: {stats:?}"
    );
    assert_eq!(ginja.exposure().breaker, BreakerState::Closed);
    ginja.shutdown();

    let reference_stock = db.dump_table(ginja::workload::tables::STOCK).unwrap();
    drop(db);
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    assert_eq!(
        db.dump_table(ginja::workload::tables::STOCK).unwrap(),
        reference_stock,
        "an outage must never lose an acknowledged update"
    );
    let probe = probe_tpcc(&db).unwrap();
    assert!(probe.is_consistent(), "{probe:?}");
}
