use std::time::Duration;

/// Which real DBMS's on-disk behaviour a [`crate::Database`] reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// PostgreSQL 9.x: 8 kB WAL pages, 16 MB `pg_xlog` segments created
    /// as the log grows, periodic full checkpoints (clog → table pages →
    /// `pg_control`).
    Postgres,
    /// MySQL 5.7 / InnoDB: 512 B log blocks in a fixed pair of circular
    /// `ib_logfile` files, 16 kB data pages, fuzzy checkpoints (small
    /// batches of dirty pages, checkpoint headers at offsets 512/1536 of
    /// `ib_logfile0`).
    MySql,
}

/// A model of local storage latency, so simulated runs reproduce the
/// paper's timing behaviour at a configurable time scale.
///
/// The paper's testbed used a 15k-RPM HDD; a synchronous WAL flush on
/// such a disk costs a few milliseconds, which is what bounds TPC-C
/// throughput in the baseline (ext4) columns of Figure 5. `scale`
/// multiplies every delay — the same scale must be applied to the cloud
/// latency model so that all ratios are preserved (see DESIGN.md §1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoDelay {
    /// Cost of one synchronous flush (fsync) of the WAL.
    pub commit_flush: Duration,
    /// Fixed cost of a checkpoint flush batch.
    pub page_flush_base: Duration,
    /// Additional cost per page in a checkpoint flush batch.
    pub page_flush_per_page: Duration,
    /// Global multiplier (0 disables all delays; unit tests use 0).
    pub scale: f64,
}

impl IoDelay {
    /// No delays at all — unit-test mode.
    pub fn none() -> Self {
        IoDelay {
            commit_flush: Duration::ZERO,
            page_flush_base: Duration::ZERO,
            page_flush_per_page: Duration::ZERO,
            scale: 0.0,
        }
    }

    /// A 15k-RPM HDD as in the paper's testbed (§8): ~2 ms rotational
    /// latency per fsync, sequential page flushing at ~150 MB/s.
    pub fn hdd_15k() -> Self {
        IoDelay {
            commit_flush: Duration::from_micros(2000),
            page_flush_base: Duration::from_micros(2000),
            page_flush_per_page: Duration::from_micros(55),
            scale: 1.0,
        }
    }

    /// Returns a copy with the global scale set to `scale`.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "time scale must be non-negative");
        self.scale = scale;
        self
    }

    /// Sleeps for one commit flush.
    pub fn delay_commit_flush(&self) {
        self.sleep(self.commit_flush);
    }

    /// Sleeps for a checkpoint batch of `pages` page writes.
    pub fn delay_page_flush(&self, pages: usize) {
        self.sleep(self.page_flush_base + self.page_flush_per_page * pages as u32);
    }

    fn sleep(&self, nominal: Duration) {
        if self.scale > 0.0 && !nominal.is_zero() {
            // Precise (spinning) sleep: at small time scales the delays
            // are tens of microseconds, far below OS sleep granularity.
            ginja_vfs::precise_sleep(nominal.mul_f64(self.scale));
        }
    }
}

/// Static configuration of a [`crate::Database`]: the DBMS being
/// emulated and its layout constants.
///
/// The `*_small` constructors shrink segment sizes so tests exercise
/// segment rollover and log wrap quickly; the `*_default` constructors
/// use the real systems' sizes quoted in the paper (§5.3 footnote 4:
/// "16MB vs. 8kB in PostgreSQL and 48MB vs. 16kB in MySQL").
#[derive(Debug, Clone, PartialEq)]
pub struct DbProfile {
    /// Which DBMS is being emulated.
    pub kind: ProfileKind,
    /// Table (data) page size in bytes.
    pub page_size: usize,
    /// WAL write granularity in bytes (8 kB PG, 512 B InnoDB).
    pub wal_block_size: usize,
    /// WAL segment (file) size in bytes.
    pub wal_segment_size: u64,
    /// Record slot size used by tables created without an explicit one.
    pub default_slot_size: usize,
    /// Commits between automatic checkpoints (None = only explicit).
    pub checkpoint_every_commits: Option<u64>,
    /// For the fuzzy (MySQL) checkpointer: dirty pages flushed per step.
    pub fuzzy_batch_pages: usize,
    /// Local storage latency model.
    pub io_delay: IoDelay,
}

impl DbProfile {
    /// PostgreSQL with production-like sizes (8 kB pages, 16 MB segments).
    pub fn postgres_default() -> Self {
        DbProfile {
            kind: ProfileKind::Postgres,
            page_size: 8192,
            wal_block_size: 8192,
            wal_segment_size: 16 * 1024 * 1024,
            default_slot_size: 128,
            checkpoint_every_commits: None,
            fuzzy_batch_pages: 64,
            io_delay: IoDelay::none(),
        }
    }

    /// PostgreSQL with small segments (256 kB) for fast tests.
    pub fn postgres_small() -> Self {
        DbProfile {
            wal_segment_size: 256 * 1024,
            ..Self::postgres_default()
        }
    }

    /// MySQL/InnoDB with production-like sizes (16 kB pages, 512 B log
    /// blocks, 48 MB circular log files).
    pub fn mysql_default() -> Self {
        DbProfile {
            kind: ProfileKind::MySql,
            page_size: 16384,
            wal_block_size: 512,
            wal_segment_size: 48 * 1024 * 1024,
            default_slot_size: 128,
            checkpoint_every_commits: None,
            fuzzy_batch_pages: 16,
            io_delay: IoDelay::none(),
        }
    }

    /// MySQL/InnoDB with small circular logs (128 kB each) for tests.
    pub fn mysql_small() -> Self {
        DbProfile {
            wal_segment_size: 128 * 1024,
            ..Self::mysql_default()
        }
    }

    /// Sets the automatic checkpoint interval in commits.
    #[must_use]
    pub fn with_checkpoint_every(mut self, commits: u64) -> Self {
        self.checkpoint_every_commits = Some(commits);
        self
    }

    /// Sets the local I/O latency model.
    #[must_use]
    pub fn with_io_delay(mut self, delay: IoDelay) -> Self {
        self.io_delay = delay;
        self
    }

    /// Sets the default slot size for new tables.
    #[must_use]
    pub fn with_default_slot_size(mut self, slot: usize) -> Self {
        assert!(slot > crate::table::SLOT_OVERHEAD, "slot too small");
        assert!(
            slot <= self.page_size - crate::page::PAGE_HEADER,
            "slot exceeds page"
        );
        self.default_slot_size = slot;
        self
    }

    /// Number of WAL blocks per segment.
    pub fn blocks_per_segment(&self) -> u64 {
        self.wal_segment_size / self.wal_block_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let pg = DbProfile::postgres_default();
        assert_eq!(pg.page_size, 8192);
        assert_eq!(pg.wal_block_size, 8192);
        assert_eq!(pg.wal_segment_size, 16 * 1024 * 1024);

        let ms = DbProfile::mysql_default();
        assert_eq!(ms.page_size, 16384);
        assert_eq!(ms.wal_block_size, 512);
        assert_eq!(ms.wal_segment_size, 48 * 1024 * 1024);
    }

    #[test]
    fn small_profiles_divide_evenly() {
        let pg = DbProfile::postgres_small();
        assert_eq!(pg.wal_segment_size % pg.wal_block_size as u64, 0);
        let ms = DbProfile::mysql_small();
        assert_eq!(ms.wal_segment_size % ms.wal_block_size as u64, 0);
    }

    #[test]
    fn io_delay_none_is_free() {
        let start = std::time::Instant::now();
        let d = IoDelay::none();
        for _ in 0..1000 {
            d.delay_commit_flush();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn io_delay_scaled_sleeps() {
        let d = IoDelay::hdd_15k().scaled(0.5); // 1 ms per flush
        let start = std::time::Instant::now();
        d.delay_commit_flush();
        assert!(start.elapsed() >= Duration::from_micros(900));
    }

    #[test]
    fn builders_apply() {
        let p = DbProfile::postgres_small().with_checkpoint_every(100);
        assert_eq!(p.checkpoint_every_commits, Some(100));
        let p = p.with_io_delay(IoDelay::hdd_15k());
        assert_eq!(p.io_delay.scale, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_io_scale_rejected() {
        let _ = IoDelay::none().scaled(-0.1);
    }
}
