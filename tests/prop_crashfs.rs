//! Property tests over the crash-point explorer: random (fault kind ×
//! op index × profile) configurations must sweep clean. Where
//! `prop_recovery.rs` checks the happy synced path and one disaster
//! shape, this file drives the CrashFs harness itself through the
//! configuration space — every case is itself a full crash sweep.

use ginja::crashpoint::{explore, ExplorerConfig};
use ginja::db::ProfileKind;
use ginja::vfs::FsFaultKind;
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = ProfileKind> {
    prop_oneof![Just(ProfileKind::Postgres), Just(ProfileKind::MySql)]
}

fn fault_kind_strategy() -> impl Strategy<Value = FsFaultKind> {
    prop_oneof![
        Just(FsFaultKind::Io),
        Just(FsFaultKind::NoSpace),
        Just(FsFaultKind::ShortWrite),
        Just(FsFaultKind::FsyncLoss),
    ]
}

fn sweep(cfg: &ExplorerConfig) {
    let report = explore(cfg);
    assert!(report.explored > 0);
    let violations: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.is_clean(),
        "{} violations over {} replays:\n{}",
        violations.len(),
        report.explored,
        violations.join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_crash_sweeps_are_clean(
        profile in profile_strategy(),
        seed in any::<u64>(),
        steps in 3usize..8,
        stride in 2usize..6,
    ) {
        let cfg = ExplorerConfig {
            seed,
            steps,
            stride,
            ..ExplorerConfig::new(profile)
        };
        sweep(&cfg);
    }

    #[test]
    fn faulted_crash_sweeps_are_clean(
        profile in profile_strategy(),
        kind in fault_kind_strategy(),
        fault_op in 0u64..24,
        seed in any::<u64>(),
    ) {
        // One survivable fault somewhere in the run, then every
        // stride-th crash point on top of it.
        let cfg = ExplorerConfig {
            seed,
            steps: 4,
            stride: 4,
            fault: Some((fault_op, kind)),
            ..ExplorerConfig::new(profile)
        };
        sweep(&cfg);
    }
}

/// Regression pinned from an early sweep: a `FsyncLoss` on the very
/// first mutating op of the run (the WAL append of step 0) under the
/// MySQL circular-WAL profile. Kept as a plain test so it always runs,
/// independent of the proptest sampler.
#[test]
fn fsync_loss_on_first_wal_append_mysql() {
    let cfg = ExplorerConfig {
        steps: 4,
        stride: 3,
        fault: Some((0, FsFaultKind::FsyncLoss)),
        ..ExplorerConfig::new(ProfileKind::MySql)
    };
    let report = explore(&cfg);
    let violations: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(report.is_clean(), "{}", violations.join("\n"));
}

/// Regression: a torn crash during the op immediately after a
/// checkpoint-triggering step — the window where the WAL tail rewrite
/// and the data-file write interleave.
#[test]
fn torn_crash_after_injected_short_write_postgres() {
    let cfg = ExplorerConfig {
        steps: 5,
        stride: 2,
        fault: Some((7, FsFaultKind::ShortWrite)),
        ..ExplorerConfig::new(ProfileKind::Postgres)
    };
    let report = explore(&cfg);
    assert!(report.explored > 0);
    let violations: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(report.is_clean(), "{}", violations.join("\n"));
}
