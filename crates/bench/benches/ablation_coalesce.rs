//! Ablation: what does Algorithm 2's write aggregation actually save?
//!
//! §5.3: "by aggregating them we coalesce many updates in a single
//! cloud object upload. This reduces the storage used and the total
//! number of PUT operations executed in the cloud, resulting in a
//! significant decrease in the monetary cost". This harness runs the
//! same TPC-C configuration with aggregation on and off and prices the
//! difference.

use std::time::Duration;

use ginja_bench::rig::{template, ProtectedRig, RigOptions};
use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, sim_minutes, time_scale};
use ginja_core::GinjaConfig;
use ginja_cost::S3Pricing;
use ginja_db::ProfileKind;
use ginja_workload::TpccScale;

fn config(coalesce: bool) -> GinjaConfig {
    let scale = time_scale();
    GinjaConfig::builder()
        .batch(100)
        .safety(1000)
        .batch_timeout(Duration::from_secs_f64(5.0 * scale))
        .safety_timeout(Duration::from_secs_f64(30.0 * scale))
        .uploaders(5)
        .coalesce(coalesce)
        .build()
        .expect("valid config")
}

fn main() {
    println!(
        "time scale: {} | simulated minutes per run: {}",
        time_scale(),
        sim_minutes()
    );
    let pricing = S3Pricing::may_2017();

    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        let (warehouses, name) = match kind {
            ProfileKind::Postgres => (1, "PostgreSQL"),
            ProfileKind::MySql => (2, "MySQL"),
        };
        println!("\n== Ablation ({name}): write aggregation on vs. off (B/S = 100/1000) ==");
        let template_fs = template(kind, warehouses, TpccScale::bench(), 0xAB1);

        let mut t = Table::new(&[
            "aggregation",
            "PUTs",
            "MB uploaded",
            "upd/object",
            "PUTs/1k upd",
            "PUT $/month (extrapolated)",
        ]);
        let mut results = Vec::new();
        for coalesce in [true, false] {
            let mut options = match kind {
                ProfileKind::Postgres => RigOptions::postgres(config(coalesce)),
                ProfileKind::MySql => RigOptions::mysql(config(coalesce)),
            };
            options.seed = 0xAB1;
            let rig = ProtectedRig::build(&template_fs, options);
            let _report = rig.run(run_wall_duration());
            let (stats, usage) = rig.finish();
            let stats = stats.expect("ginja rig");
            // Extrapolate the measured window to 30 days.
            let months = sim_minutes() / (30.0 * 24.0 * 60.0);
            let put_cost_month = usage.puts as f64 * pricing.put_op / months;
            let coalesce_factor = if stats.wal_objects_uploaded > 0 {
                stats.updates_intercepted as f64 / stats.wal_objects_uploaded as f64
            } else {
                0.0
            };
            let puts_per_1k = usage.puts as f64 / stats.updates_intercepted.max(1) as f64 * 1000.0;
            t.row(&[
                if coalesce { "on (paper)" } else { "off" }.to_string(),
                usage.puts.to_string(),
                fmt(usage.bytes_uploaded as f64 / 1e6, 1),
                fmt(coalesce_factor, 1),
                fmt(puts_per_1k, 0),
                format!("${}", fmt(put_cost_month, 2)),
            ]);
            results.push(puts_per_1k);
        }
        println!();
        t.print();
        // Compare per-update rates: a PUT-bound uncoalesced run completes
        // fewer transactions, so absolute counts would understate the gap.
        println!(
            "aggregation cuts PUTs per update by {:.1}x",
            results[1] / results[0].max(1e-9),
        );
        assert!(
            results[1] > results[0] * 2.0,
            "{name}: disabling aggregation must cost far more PUTs per update"
        );
    }
}
