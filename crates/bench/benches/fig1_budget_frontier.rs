//! Figure 1: database size vs. cloud synchronizations per hour in an
//! S3-based DR solution with a $1 monthly budget.
//!
//! Every point below the printed frontier costs less than $1/month. The
//! paper highlights three setups: A (35 GB, 50 syncs/h), B (20 GB,
//! 120 syncs/h) and C (4.3 GB, 240 syncs/h).

use ginja_bench::table::{fmt, Table};
use ginja_cost::{Budget, S3Pricing};

fn main() {
    let pricing = S3Pricing::may_2017();
    let budget = Budget::new(1.0);
    println!("== Figure 1: $1/month capacity frontier (Amazon S3, May 2017 prices) ==\n");

    let mut t = Table::new(&["syncs/hour", "max DB size (GB)", "storage $", "PUT $"]);
    let series = budget.frontier((0..=275).step_by(25).map(|x| x as f64));
    for (rate, size) in &series {
        let put_cost = rate * 720.0 * pricing.put_op;
        t.row(&[
            fmt(*rate, 0),
            fmt(*size, 1),
            fmt(size * pricing.storage_gb_month, 3),
            fmt(put_cost, 3),
        ]);
    }
    t.print();

    println!("\n-- The paper's example setups (all ≈ $1/month) --");
    let mut t = Table::new(&[
        "setup",
        "DB size (GB)",
        "syncs/hour",
        "cost $/month",
        "paper",
    ]);
    for (name, size, rate) in [("A", 35.0, 50.0), ("B", 20.0, 120.0), ("C", 4.3, 240.0)] {
        let cost = budget.monthly_cost_simple(size, rate);
        t.row(&[
            name.to_string(),
            fmt(size, 1),
            fmt(rate, 0),
            fmt(cost, 3),
            "≈ $1".to_string(),
        ]);
    }
    t.print();

    // Sanity: the frontier is consistent with the setups.
    for (size, rate) in [(35.0, 50.0), (20.0, 120.0), (4.3, 240.0)] {
        let max = budget.max_db_size_gb(rate);
        assert!(
            (max - size).abs() < 5.0,
            "setup ({size} GB @ {rate}/h) should sit near the frontier ({max} GB)"
        );
    }
    println!("\nfrontier check: paper setups A/B/C all lie on the $1 frontier ✓");
}
