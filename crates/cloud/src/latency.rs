use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Sleeps with microsecond precision: sleep for all but a short tail,
/// spin the remainder (bounded CPU steal; see `ginja_vfs::precise_sleep`
/// for the rationale — duplicated to avoid a dependency edge).
fn precise_sleep(duration: Duration) {
    const SPIN_TAIL: Duration = Duration::from_micros(150);
    if duration.is_zero() {
        return;
    }
    let deadline = Instant::now() + duration;
    if duration > SPIN_TAIL {
        std::thread::sleep(duration - SPIN_TAIL);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ObjectStore, StoreError};

/// A first-order model of cloud-storage operation latency:
/// `t = base + bytes / bandwidth`, with multiplicative jitter.
///
/// The defaults of [`LatencyModel::s3_wan`] are calibrated against the
/// paper's Table 3, which reports average PUT latencies from an academic
/// network in Lisbon to S3 US-East: ~0.69 s for 386 kB objects and
/// ~7.7 s for 10 MB objects — a fit of roughly 0.4 s base latency and
/// 1.4 MB/s sustained upload bandwidth. Downloads (used during recovery,
/// Figure 7) are several times faster.
///
/// `time_scale` shrinks simulated time uniformly so that experiments
/// complete in seconds: scaling *every* latency in the system (cloud and
/// local I/O alike, see `ginja-db`) by the same factor preserves all
/// latency ratios, which is what the paper's figures report.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-PUT latency (request setup, TLS, first byte).
    pub put_base: Duration,
    /// Upload bandwidth in bytes/second.
    pub upload_bandwidth: f64,
    /// Fixed per-GET latency.
    pub get_base: Duration,
    /// Download bandwidth in bytes/second.
    pub download_bandwidth: f64,
    /// Fixed LIST latency.
    pub list_base: Duration,
    /// Fixed DELETE latency.
    pub delete_base: Duration,
    /// Uniform multiplicative jitter: a sample in `[1-j, 1+j]` scales
    /// each latency. Zero disables jitter.
    pub jitter: f64,
    /// Global multiplier applied to every computed latency.
    pub time_scale: f64,
}

impl LatencyModel {
    /// WAN path to a remote region — the paper's primary-site view of S3.
    ///
    /// Fit jointly to Table 3's PUT latencies (386 kB → 692 ms,
    /// 3 MB → 2.9 s, 10 MB → 7.7 s) and the No-Loss throughput of
    /// Figure 5 (248 Tpm ⇒ ~240 ms per small-object PUT).
    pub fn s3_wan() -> Self {
        LatencyModel {
            put_base: Duration::from_millis(250),
            upload_bandwidth: 1.25e6,
            get_base: Duration::from_millis(150),
            download_bandwidth: 7.5e6,
            list_base: Duration::from_millis(200),
            delete_base: Duration::from_millis(80),
            jitter: 0.10,
            time_scale: 1.0,
        }
    }

    /// Intra-region path (an EC2 VM talking to S3 in the same region) —
    /// used for the "recover into a cloud VM" half of Figure 7.
    pub fn s3_intra_region() -> Self {
        LatencyModel {
            put_base: Duration::from_millis(30),
            upload_bandwidth: 60e6,
            get_base: Duration::from_millis(20),
            download_bandwidth: 60e6,
            list_base: Duration::from_millis(25),
            delete_base: Duration::from_millis(15),
            jitter: 0.10,
            time_scale: 1.0,
        }
    }

    /// Zero-latency model (useful to meter without waiting).
    pub fn instant() -> Self {
        LatencyModel {
            put_base: Duration::ZERO,
            upload_bandwidth: f64::INFINITY,
            get_base: Duration::ZERO,
            download_bandwidth: f64::INFINITY,
            list_base: Duration::ZERO,
            delete_base: Duration::ZERO,
            jitter: 0.0,
            time_scale: 1.0,
        }
    }

    /// Returns a copy with every latency multiplied by `scale`.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "time scale must be non-negative");
        self.time_scale = scale;
        self
    }

    /// Deterministic (jitter-free) PUT latency for `bytes`, after scaling.
    pub fn put_latency(&self, bytes: usize) -> Duration {
        self.scale(self.put_base, bytes as f64 / self.upload_bandwidth)
    }

    /// Deterministic GET latency for `bytes`, after scaling.
    pub fn get_latency(&self, bytes: usize) -> Duration {
        self.scale(self.get_base, bytes as f64 / self.download_bandwidth)
    }

    fn scale(&self, base: Duration, transfer_secs: f64) -> Duration {
        let total = base.as_secs_f64()
            + if transfer_secs.is_finite() {
                transfer_secs
            } else {
                0.0
            };
        Duration::from_secs_f64(total * self.time_scale)
    }
}

/// Wraps an [`ObjectStore`] and sleeps according to a [`LatencyModel`]
/// before forwarding each operation.
#[derive(Debug)]
pub struct LatencyStore<S> {
    inner: S,
    model: LatencyModel,
    rng: Mutex<StdRng>,
}

impl<S: ObjectStore> LatencyStore<S> {
    /// Wraps `inner` with `model`, seeding jitter deterministically.
    pub fn new(inner: S, model: LatencyModel) -> Self {
        Self::with_seed(inner, model, 0x6a1b_93e5)
    }

    /// Wraps with an explicit jitter seed (tests use this for
    /// reproducibility across runs).
    pub fn with_seed(inner: S, model: LatencyModel, seed: u64) -> Self {
        LatencyStore {
            inner,
            model,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    fn sleep(&self, nominal: Duration) {
        let jittered = if self.model.jitter > 0.0 {
            let factor = {
                let mut rng = self.rng.lock();
                1.0 + rng.gen_range(-self.model.jitter..=self.model.jitter)
            };
            nominal.mul_f64(factor.max(0.0))
        } else {
            nominal
        };
        if !jittered.is_zero() {
            precise_sleep(jittered);
        }
    }
}

impl<S: ObjectStore> ObjectStore for LatencyStore<S> {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.sleep(self.model.put_latency(data.len()));
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        // Charge the base cost before knowing the size, then the
        // transfer cost for the bytes actually returned.
        self.sleep(self.model.get_base.mul_f64(self.model.time_scale));
        let data = self.inner.get(name)?;
        let transfer = self
            .model
            .get_latency(data.len())
            .saturating_sub(self.model.get_base.mul_f64(self.model.time_scale));
        self.sleep(transfer);
        Ok(data)
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        self.sleep(self.model.delete_base.mul_f64(self.model.time_scale));
        self.inner.delete(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        self.sleep(self.model.list_base.mul_f64(self.model.time_scale));
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::time::Instant;

    #[test]
    fn wan_model_matches_table3_calibration() {
        let m = LatencyModel::s3_wan();
        // Paper Table 3, PostgreSQL plain: 386 kB → 692 ms, 10081 kB →
        // 7707 ms; the fit trades some small-object accuracy for the
        // No-Loss (tiny object ≈ 240 ms) end — stay within ~25 %.
        let small = m.put_latency(386 * 1000).as_secs_f64();
        let large = m.put_latency(10081 * 1000).as_secs_f64();
        let tiny = m.put_latency(8 * 1024).as_secs_f64();
        assert!((0.45..=0.80).contains(&small), "small {small}");
        assert!((6.2..=9.5).contains(&large), "large {large}");
        assert!((0.18..=0.32).contains(&tiny), "tiny {tiny}");
    }

    #[test]
    fn scaling_preserves_ratios() {
        let m = LatencyModel::s3_wan();
        let s = m.clone().scaled(0.01);
        let r_full = m.put_latency(1_000_000).as_secs_f64() / m.put_latency(10_000).as_secs_f64();
        let r_scaled = s.put_latency(1_000_000).as_secs_f64() / s.put_latency(10_000).as_secs_f64();
        // Durations round to whole nanoseconds, so allow a small tolerance.
        assert!(
            (r_full - r_scaled).abs() / r_full < 1e-4,
            "{r_full} vs {r_scaled}"
        );
    }

    #[test]
    fn instant_model_does_not_sleep() {
        let store = LatencyStore::new(MemStore::new(), LatencyModel::instant());
        let start = Instant::now();
        for i in 0..100 {
            store.put(&format!("o{i}"), &[0u8; 1024]).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn put_latency_grows_with_size() {
        let m = LatencyModel::s3_wan().scaled(1.0);
        assert!(m.put_latency(10_000_000) > m.put_latency(10_000));
    }

    #[test]
    fn scaled_store_sleeps_roughly_right() {
        // 100 kB at 1.25 MB/s + 250 ms base ≈ 330 ms; at 1% scale ≈ 3.3 ms.
        let mut model = LatencyModel::s3_wan().scaled(0.01);
        model.jitter = 0.0;
        let store = LatencyStore::new(MemStore::new(), model);
        let start = Instant::now();
        store.put("o", &[0u8; 100_000]).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(3), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(100), "{elapsed:?}");
    }

    #[test]
    fn jitter_is_bounded() {
        let mut model = LatencyModel::instant();
        model.put_base = Duration::from_millis(10);
        model.jitter = 0.5;
        model.time_scale = 0.1; // 1 ms nominal
        let store = LatencyStore::new(MemStore::new(), model);
        for _ in 0..20 {
            let start = Instant::now();
            store.put("o", b"x").unwrap();
            let e = start.elapsed();
            assert!(e <= Duration::from_millis(60), "{e:?}");
        }
    }

    #[test]
    fn forwards_errors() {
        let store = LatencyStore::new(MemStore::new(), LatencyModel::instant());
        assert!(matches!(store.get("missing"), Err(StoreError::NotFound(_))));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_rejected() {
        let _ = LatencyModel::s3_wan().scaled(-1.0);
    }
}
