//! Experiment harnesses reproducing the tables and figures of the Ginja
//! paper (Middleware '17).
//!
//! Each `benches/*.rs` target regenerates one table or figure,
//! printing the paper's reported values alongside the measured or
//! modelled ones. Timed experiments run in **scaled time** — every
//! latency in the system (local disk, FUSE crossing, cloud WAN) is
//! multiplied by the same factor, so latency *ratios* (what the figures
//! report) are preserved while a five-minute run finishes in seconds.
//!
//! Environment knobs:
//!
//! * `GINJA_BENCH_SCALE` — the time scale (default 0.02 = 50× faster);
//! * `GINJA_BENCH_MINUTES` — simulated minutes per TPC-C run (default
//!   1; the paper used 5).

pub mod mutex_queue;
pub mod rig;
pub mod sysres;
pub mod table;
pub mod timescale;

pub use rig::{BaselineKind, ProtectedRig, RigOptions};
pub use table::Table;
