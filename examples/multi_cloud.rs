//! Cloud-of-clouds replication (§6): tolerate the loss of an entire
//! storage provider.
//!
//! The Ginja prototype "supports the replication of objects in multiple
//! clouds, for tolerating provider-scale failures" (citing DepSky).
//! Here three providers replicate every object with a majority write
//! quorum: one provider can be down during operation, and recovery
//! succeeds from any single surviving provider.
//!
//! ```sh
//! cargo run --example multi_cloud
//! ```

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{FaultPlan, FaultStore, MemStore, ObjectStore, ReplicatedStore};
use ginja::core::{recover_into, verify_backup_in_memory, Ginja, GinjaConfig};
use ginja::db::{Database, DbProfile};
use ginja::vfs::{FileSystem, InterceptFs, MemFs, MySqlProcessor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three independent "providers", one with programmable faults.
    let aws = Arc::new(MemStore::new());
    let azure = Arc::new(MemStore::new());
    let gcp_faults = Arc::new(FaultPlan::new());
    let gcp = Arc::new(MemStore::new());
    let replicas: Vec<Arc<dyn ObjectStore>> = vec![
        aws.clone(),
        azure.clone(),
        Arc::new(FaultStore::new(gcp.clone(), gcp_faults.clone())),
    ];
    let multi = Arc::new(ReplicatedStore::majority_of(replicas));
    println!("• three providers, write quorum {}", multi.write_quorum());

    // A MySQL-profile database protected over the replicated cloud.
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::mysql_small())?;
    db.create_table(1, 128)?;
    drop(db);

    let config = GinjaConfig::builder()
        .batch(4)
        .safety(40)
        .batch_timeout(Duration::from_millis(30))
        .build()?;
    let ginja = Ginja::boot(
        local.clone(),
        multi.clone(),
        Arc::new(MySqlProcessor::new()),
        config.clone(),
    )?;
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, DbProfile::mysql_small())?;

    // Provider 3 goes down mid-run: the majority quorum hides it.
    for i in 0..25u64 {
        db.put(1, i, format!("order-{i}").into_bytes())?;
    }
    gcp_faults.outage();
    println!("• provider 3 is DOWN — writes continue on the 2-of-3 quorum");
    for i in 25..50u64 {
        db.put(1, i, format!("order-{i}").into_bytes())?;
    }
    ginja.sync(Duration::from_secs(10));
    ginja.shutdown();
    drop(db);

    // Disaster + total loss of provider 1. Recover from provider 2 alone.
    aws.clear();
    println!("• DISASTER, and provider 1's bucket was wiped too");
    let (report, _) = verify_backup_in_memory(azure.as_ref(), &config)?;
    println!(
        "• provider 2 backup verification: {} objects OK, corrupt: {}",
        report.objects_verified,
        report.corrupt_objects.len()
    );

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), azure.as_ref(), &config)?;
    let db = Database::open(rebuilt, DbProfile::mysql_small())?;
    for i in 0..50u64 {
        assert_eq!(db.get(1, i)?.unwrap(), format!("order-{i}").into_bytes());
    }
    println!("• all 50 orders recovered from the single surviving provider ✔");
    Ok(())
}
