use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::ObjectStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The named object does not exist.
    NotFound(String),
    /// The backend is (possibly temporarily) unavailable.
    Unavailable(String),
    /// A fault-injection rule rejected this operation (tests only).
    Injected(String),
    /// Fewer than the required number of replicas acknowledged a write.
    QuorumNotReached {
        /// Replicas that acknowledged.
        acked: usize,
        /// Replicas required.
        required: usize,
    },
}

impl StoreError {
    /// Whether retrying the operation could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StoreError::Unavailable(_)
                | StoreError::Injected(_)
                | StoreError::QuorumNotReached { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(name) => write!(f, "object not found: {name}"),
            StoreError::Unavailable(reason) => write!(f, "storage unavailable: {reason}"),
            StoreError::Injected(reason) => write!(f, "injected fault: {reason}"),
            StoreError::QuorumNotReached { acked, required } => {
                write!(f, "write quorum not reached: {acked} of {required} replicas acked")
            }
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(!StoreError::NotFound("x".into()).is_retryable());
        assert!(StoreError::Unavailable("net".into()).is_retryable());
        assert!(StoreError::Injected("test".into()).is_retryable());
        assert!(StoreError::QuorumNotReached { acked: 1, required: 2 }.is_retryable());
    }

    #[test]
    fn display_mentions_object_name() {
        let s = StoreError::NotFound("WAL/3_f_0".into()).to_string();
        assert!(s.contains("WAL/3_f_0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<StoreError>();
    }
}
