use std::sync::Arc;

use crate::{ObjectStore, StoreError};

/// A tenant-scoped view of a shared bucket.
///
/// Multi-tenant deployments amortize one bucket (and one set of cloud
/// connections) across many protected databases by giving each tenant a
/// name prefix — the same directory-emulation trick the paper's flat
/// namespace already plays with `WAL/` and `DB/`. `PrefixStore` rewrites
/// every operation so a tenant sees the bucket as if it owned it:
///
/// * `put`/`get`/`delete` prepend the prefix to the object name;
/// * `list` queries `prefix + p` and strips the prefix from each result,
///   so listings come back in the tenant's own namespace.
///
/// The isolation guarantee is structural: no tenant-relative name can
/// reach an object outside the prefix, so an offline scrub, a rehearsal
/// drill, or a full detach-and-purge on one tenant can never touch a
/// neighbor's objects.
///
/// ```rust
/// use std::sync::Arc;
/// use ginja_cloud::{MemStore, ObjectStore, PrefixStore};
///
/// # fn main() -> Result<(), ginja_cloud::StoreError> {
/// let bucket = Arc::new(MemStore::new());
/// let a = PrefixStore::new(bucket.clone(), "tenants/a/");
/// let b = PrefixStore::new(bucket.clone(), "tenants/b/");
/// a.put("WAL/1_seg_0", b"alpha")?;
/// b.put("WAL/1_seg_0", b"beta")?;
/// assert_eq!(a.get("WAL/1_seg_0")?, b"alpha");
/// assert_eq!(a.list("")?, vec!["WAL/1_seg_0".to_string()]);
/// assert_eq!(bucket.list("")?.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct PrefixStore {
    inner: Arc<dyn ObjectStore>,
    prefix: String,
}

impl PrefixStore {
    /// Scopes `inner` under `prefix`. A trailing `/` is conventional
    /// (`tenants/<name>/`) but not enforced — the prefix is prepended
    /// verbatim.
    pub fn new(inner: Arc<dyn ObjectStore>, prefix: impl Into<String>) -> Self {
        PrefixStore {
            inner,
            prefix: prefix.into(),
        }
    }

    /// The prefix this view prepends.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The unscoped store underneath.
    pub fn inner(&self) -> &Arc<dyn ObjectStore> {
        &self.inner
    }

    fn scoped(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }
}

impl std::fmt::Debug for PrefixStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixStore")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl ObjectStore for PrefixStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.inner.put(&self.scoped(name), data)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.inner.get(&self.scoped(name))
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        self.inner.delete(&self.scoped(name))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let scoped = self.scoped(prefix);
        Ok(self
            .inner
            .list(&scoped)?
            .into_iter()
            .filter_map(|name| {
                name.strip_prefix(&self.prefix)
                    .map(|relative| relative.to_string())
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    fn two_tenants() -> (Arc<MemStore>, PrefixStore, PrefixStore) {
        let bucket = Arc::new(MemStore::new());
        let a = PrefixStore::new(bucket.clone(), "tenants/a/");
        let b = PrefixStore::new(bucket.clone(), "tenants/b/");
        (bucket, a, b)
    }

    #[test]
    fn operations_are_scoped() {
        let (bucket, a, _) = two_tenants();
        a.put("WAL/1_seg_0", b"x").unwrap();
        assert_eq!(bucket.get("tenants/a/WAL/1_seg_0").unwrap(), b"x");
        assert_eq!(a.get("WAL/1_seg_0").unwrap(), b"x");
        a.delete("WAL/1_seg_0").unwrap();
        assert!(bucket.is_empty());
    }

    #[test]
    fn list_strips_prefix_and_preserves_order() {
        let (_, a, _) = two_tenants();
        a.put("WAL/2_b_0", b"").unwrap();
        a.put("WAL/1_a_0", b"").unwrap();
        a.put("DB/0_dump_3", b"").unwrap();
        assert_eq!(a.list("WAL/").unwrap(), vec!["WAL/1_a_0", "WAL/2_b_0"]);
        assert_eq!(
            a.list("").unwrap(),
            vec!["DB/0_dump_3", "WAL/1_a_0", "WAL/2_b_0"]
        );
    }

    #[test]
    fn tenants_are_mutually_invisible() {
        let (_, a, b) = two_tenants();
        a.put("WAL/1_seg_0", b"alpha").unwrap();
        b.put("WAL/1_seg_0", b"beta").unwrap();
        assert_eq!(a.get("WAL/1_seg_0").unwrap(), b"alpha");
        assert_eq!(b.get("WAL/1_seg_0").unwrap(), b"beta");
        assert_eq!(a.list("").unwrap().len(), 1);
        // A's empty-prefix list (the widest query a scrub issues) never
        // surfaces B's objects.
        for name in a.list("").unwrap() {
            assert_eq!(a.get(&name).unwrap(), b"alpha");
        }
    }

    #[test]
    fn delete_cannot_escape_the_prefix() {
        let (bucket, a, b) = two_tenants();
        b.put("WAL/1_seg_0", b"beta").unwrap();
        // Deleting every name A can see leaves B untouched.
        a.put("WAL/1_seg_0", b"alpha").unwrap();
        for name in a.list("").unwrap() {
            a.delete(&name).unwrap();
        }
        assert_eq!(bucket.len(), 1);
        assert_eq!(b.get("WAL/1_seg_0").unwrap(), b"beta");
    }

    #[test]
    fn missing_object_reports_scoped_name() {
        let (_, a, _) = two_tenants();
        match a.get("nope") {
            Err(StoreError::NotFound(name)) => assert_eq!(name, "tenants/a/nope"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn sibling_prefix_is_not_a_match() {
        // "tenants/a" (no slash) must not capture "tenants/ab/...".
        let bucket: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
        let a = PrefixStore::new(bucket.clone(), "tenants/a/");
        let ab = PrefixStore::new(bucket.clone(), "tenants/ab/");
        ab.put("obj", b"x").unwrap();
        assert!(a.list("").unwrap().is_empty());
    }
}
