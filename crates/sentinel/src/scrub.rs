//! Cloud scrubbing: list the bucket, re-derive the inventory, validate
//! object envelopes, and classify what is wrong.
//!
//! Two entry points share the classification logic:
//!
//! * [`scrub_bucket`] audits a bucket *offline* from nothing but its
//!   listing — what `ginja-cli drill` runs against a bucket with no
//!   live middleware. Missing WAL objects are inferred from timestamp
//!   gaps in the post-dump chain; incomplete multi-part DB objects and
//!   unparseable (foreign) names are flagged directly.
//! * a live [`crate::Sentinel`] scrubs with more power: it diffs the
//!   listing against the pipeline's own `CloudView`, which knows
//!   exactly which objects *should* exist — so deletions are detected
//!   by identity, not inference, and repair is possible.

use ginja_cloud::ObjectStore;
use ginja_codec::Codec;
use ginja_core::{CloudView, DbObjectName, GinjaConfig, GinjaError, WalObjectName};

/// What kind of damage an anomaly is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// A WAL object that should exist is absent from the bucket (a gap
    /// in the contiguous post-dump chain, or — live — a tracked object
    /// missing from the listing).
    MissingWal,
    /// A DB object is unusable: a part of a multi-part dump/checkpoint
    /// is absent, or — live — a tracked DB object is missing from the
    /// listing.
    MissingDb,
    /// The object exists but its payload fails envelope verification
    /// (HMAC/CRC mismatch: bit rot, truncation, or tampering).
    Corrupt,
    /// An object in the bucket that the inventory does not account for
    /// — typically garbage a failed GC DELETE left behind, or a
    /// foreign object in the wrong bucket.
    Orphan,
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AnomalyKind::MissingWal => "missing-wal",
            AnomalyKind::MissingDb => "missing-db",
            AnomalyKind::Corrupt => "corrupt",
            AnomalyKind::Orphan => "orphan",
        })
    }
}

/// One classified problem found by a scrub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// The damage class.
    pub kind: AnomalyKind,
    /// The affected object name (for a missing object inferred from a
    /// timestamp gap, a `WAL/<ts>_(gap)` placeholder — the real name
    /// died with the object).
    pub name: String,
}

/// What one scrub pass looked at and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects present in the bucket listing.
    pub objects_listed: usize,
    /// Object payloads downloaded and envelope-verified this pass.
    pub payloads_verified: usize,
    /// Everything wrong, in classification order.
    pub anomalies: Vec<Anomaly>,
}

impl ScrubReport {
    /// Number of anomalies of `kind`.
    pub fn count(&self, kind: AnomalyKind) -> usize {
        self.anomalies.iter().filter(|a| a.kind == kind).count()
    }

    /// Whether the bucket is clean.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }
}

/// Audits a bucket from its listing alone — no live middleware, no
/// local state. Every payload is downloaded and envelope-verified
/// (there is no pipeline to compete with for bandwidth). Used by
/// `ginja-cli drill` and offline tooling.
///
/// # Errors
///
/// Cloud listing/GET failures propagate; per-object damage is *not* an
/// error — discovering it is the point.
pub fn scrub_bucket(
    cloud: &dyn ObjectStore,
    config: &GinjaConfig,
) -> Result<ScrubReport, GinjaError> {
    let codec = Codec::new(config.codec.clone());
    let mut report = ScrubReport::default();
    let mut view = CloudView::new();

    let names = cloud.list("")?;
    report.objects_listed = names.len();
    for name in &names {
        // A name that parses joins the inventory; anything else is a
        // foreign object — an orphan by definition.
        let parsed = if name.starts_with("WAL/") {
            WalObjectName::parse(name).map(|w| view.add_wal(w)).is_ok()
        } else if name.starts_with("DB/") {
            DbObjectName::parse(name)
                .map(|d| view.add_db_part(d))
                .is_ok()
        } else {
            false
        };
        if !parsed {
            report.anomalies.push(Anomaly {
                kind: AnomalyKind::Orphan,
                name: name.clone(),
            });
            continue;
        }
        match cloud.get(name) {
            Ok(sealed) => {
                report.payloads_verified += 1;
                if codec.verify(name, &sealed).is_err() {
                    report.anomalies.push(Anomaly {
                        kind: AnomalyKind::Corrupt,
                        name: name.clone(),
                    });
                }
            }
            Err(err) if !err.is_retryable() => {
                // Listed a moment ago, unreadable now: treat as corrupt
                // (the recovery path would fail on it the same way).
                report.anomalies.push(Anomaly {
                    kind: AnomalyKind::Corrupt,
                    name: name.clone(),
                });
            }
            Err(err) => return Err(err.into()),
        }
    }

    // Missing WAL: gaps in the timestamp chain after the GC horizon.
    // Offline there is no view to compare against, but timestamps are
    // allocated contiguously, so a hole above the horizon is an object
    // that existed and is gone. The horizon is the newest *complete* DB
    // object of either kind — not just the newest dump: checkpoints
    // garbage-collect the WAL they cover (up to their watermark
    // timestamp), so holes at or below a checkpoint's ts are
    // indistinguishable from legitimate GC without the live view. Only
    // a live sentinel, diffing against the pipeline's own inventory,
    // can audit below the horizon.
    let horizon = view
        .db_entries()
        .filter(|(_, e)| e.is_complete())
        .map(|(ts, _)| ts)
        .max();
    if let Some(horizon) = horizon {
        let mut expected = horizon + 1;
        for wal in view.wal_entries().filter(|w| w.ts > horizon) {
            for missing in expected..wal.ts {
                report.anomalies.push(Anomaly {
                    kind: AnomalyKind::MissingWal,
                    name: format!("WAL/{missing}_(gap)"),
                });
            }
            expected = wal.ts + 1;
        }
    }

    // Incomplete multi-part DB objects: a part upload or a partial GC
    // delete died halfway.
    for (_, entry) in view.db_entries().filter(|(_, e)| !e.is_complete()) {
        let name = entry.parts.first().map(|p| p.to_name()).unwrap_or_default();
        report.anomalies.push(Anomaly {
            kind: AnomalyKind::MissingDb,
            name,
        });
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_cloud::MemStore;
    use ginja_core::DbObjectKind;

    fn config() -> GinjaConfig {
        GinjaConfig::builder().build().unwrap()
    }

    fn put_sealed(cloud: &MemStore, config: &GinjaConfig, name: &str, data: &[u8]) {
        let codec = Codec::new(config.codec.clone());
        let sealed = codec.seal(name, data).unwrap();
        cloud.put(name, &sealed).unwrap();
    }

    fn wal_name(ts: u64) -> String {
        WalObjectName {
            ts,
            file: "pg_xlog/0001".into(),
            offset: ts * 8,
            len: 8,
        }
        .to_name()
    }

    #[test]
    fn clean_bucket_scrubs_clean() {
        let cloud = MemStore::new();
        let config = config();
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        put_sealed(&cloud, &config, &wal_name(1), b"record-a");
        put_sealed(&cloud, &config, &wal_name(2), b"record-b");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.objects_listed, 3);
        assert_eq!(report.payloads_verified, 3);
    }

    #[test]
    fn empty_bucket_scrubs_clean() {
        let report = scrub_bucket(&MemStore::new(), &config()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.objects_listed, 0);
    }

    #[test]
    fn wal_gap_after_dump_is_missing() {
        let cloud = MemStore::new();
        let config = config();
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        put_sealed(&cloud, &config, &wal_name(1), b"record-a");
        put_sealed(&cloud, &config, &wal_name(3), b"record-c");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert_eq!(report.count(AnomalyKind::MissingWal), 1);
        assert_eq!(report.anomalies[0].name, "WAL/2_(gap)");
    }

    #[test]
    fn gap_before_dump_is_gc_not_anomaly() {
        let cloud = MemStore::new();
        let config = config();
        // GC deleted WAL 1–4 after the dump at ts 5 became durable.
        put_sealed(&cloud, &config, "DB/5_dump_10", b"0123456789");
        put_sealed(&cloud, &config, &wal_name(5), b"record-e");
        put_sealed(&cloud, &config, &wal_name(6), b"record-f");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert!(report.is_clean(), "{:?}", report.anomalies);
    }

    #[test]
    fn checkpoint_gc_holes_below_watermark_are_not_anomalies() {
        let cloud = MemStore::new();
        let config = config();
        // A checkpoint at watermark 4 garbage-collected WAL 1–4; the
        // dump stays at ts 0. The hole above the dump but at/below the
        // checkpoint is legitimate GC, not loss.
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        let ckpt = DbObjectName {
            ts: 4,
            kind: DbObjectKind::Checkpoint,
            size: 8,
            part: 0,
            parts: 1,
        };
        put_sealed(&cloud, &config, &ckpt.to_name(), b"pagedata");
        put_sealed(&cloud, &config, &wal_name(5), b"record-e");
        put_sealed(&cloud, &config, &wal_name(6), b"record-f");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert!(report.is_clean(), "{:?}", report.anomalies);
    }

    #[test]
    fn wal_gap_above_checkpoint_watermark_is_still_missing() {
        let cloud = MemStore::new();
        let config = config();
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        let ckpt = DbObjectName {
            ts: 4,
            kind: DbObjectKind::Checkpoint,
            size: 8,
            part: 0,
            parts: 1,
        };
        put_sealed(&cloud, &config, &ckpt.to_name(), b"pagedata");
        put_sealed(&cloud, &config, &wal_name(5), b"record-e");
        put_sealed(&cloud, &config, &wal_name(7), b"record-g");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert_eq!(report.count(AnomalyKind::MissingWal), 1);
        assert_eq!(report.anomalies[0].name, "WAL/6_(gap)");
    }

    #[test]
    fn incomplete_checkpoint_does_not_mask_wal_gaps() {
        let cloud = MemStore::new();
        let config = config();
        // A half-uploaded checkpoint (part 0 of 2) cannot have GC'd
        // anything — GC runs only after the upload completes — so it
        // must not raise the gap horizon.
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        let half = DbObjectName {
            ts: 4,
            kind: DbObjectKind::Checkpoint,
            size: 16,
            part: 0,
            parts: 2,
        };
        put_sealed(&cloud, &config, &half.to_name(), b"half-the");
        put_sealed(&cloud, &config, &wal_name(1), b"record-a");
        put_sealed(&cloud, &config, &wal_name(3), b"record-c");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert_eq!(report.count(AnomalyKind::MissingWal), 1);
        assert_eq!(report.count(AnomalyKind::MissingDb), 1);
    }

    #[test]
    fn tampered_payload_is_corrupt() {
        let cloud = MemStore::new();
        let config = config();
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        let name = wal_name(1);
        put_sealed(&cloud, &config, &name, b"record-a");
        let mut sealed = cloud.get(&name).unwrap();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x40;
        cloud.put(&name, &sealed).unwrap();
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert_eq!(report.count(AnomalyKind::Corrupt), 1);
        assert_eq!(report.anomalies[0].name, name);
    }

    #[test]
    fn foreign_object_is_orphan() {
        let cloud = MemStore::new();
        let config = config();
        cloud.put("somebody-elses-file", b"data").unwrap();
        cloud.put("WAL/not_a_number_x_y", b"data").unwrap();
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert_eq!(report.count(AnomalyKind::Orphan), 2);
    }

    #[test]
    fn incomplete_multipart_dump_is_missing_db() {
        let cloud = MemStore::new();
        let config = config();
        put_sealed(&cloud, &config, "DB/0_dump_10", b"0123456789");
        let part = DbObjectName {
            ts: 4,
            kind: DbObjectKind::Dump,
            size: 16,
            part: 0,
            parts: 2,
        };
        put_sealed(&cloud, &config, &part.to_name(), b"half-the");
        let report = scrub_bucket(&cloud, &config).unwrap();
        assert_eq!(report.count(AnomalyKind::MissingDb), 1);
        assert_eq!(report.anomalies[0].name, part.to_name());
    }
}
