//! Edge-case integration tests for the middleware: degraded cloud
//! states, ablation modes, and recovery fallbacks.

use std::sync::Arc;
use std::time::Duration;

use ginja_cloud::{MemStore, ObjectStore};
use ginja_core::{recover_into, Ginja, GinjaConfig, GinjaError};
use ginja_db::{Database, DbProfile};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

fn config() -> GinjaConfig {
    GinjaConfig::builder()
        .batch(4)
        .safety(64)
        .batch_timeout(Duration::from_millis(20))
        .build()
        .unwrap()
}

fn protect(config: GinjaConfig) -> (Database, Ginja, Arc<MemStore>) {
    let local = Arc::new(MemFs::new());
    let profile = DbProfile::postgres_small();
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);
    let cloud = Arc::new(MemStore::new());
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config,
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, DbProfile::postgres_small()).unwrap();
    (db, ginja, cloud)
}

#[test]
fn recovery_without_coalescing_matches() {
    // Ablation mode must stay crash-correct: one object per write.
    let config = GinjaConfig::builder()
        .batch(4)
        .safety(64)
        .batch_timeout(Duration::from_millis(20))
        .coalesce(false)
        .build()
        .unwrap();
    let (db, ginja, cloud) = protect(config.clone());
    for i in 0..50u64 {
        db.put(1, i % 20, format!("v{i}").into_bytes()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(20)));
    // Without coalescing, objects ≈ intercepted updates.
    let stats = ginja.stats();
    assert!(
        stats.wal_objects_uploaded >= stats.updates_intercepted,
        "{} objects for {} updates",
        stats.wal_objects_uploaded,
        stats.updates_intercepted
    );
    ginja.shutdown();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, DbProfile::postgres_small()).unwrap();
    for k in 0..20u64 {
        let last = (0..50).filter(|i| i % 20 == k).max().unwrap();
        assert_eq!(
            db.get(1, k).unwrap().unwrap(),
            format!("v{last}").into_bytes()
        );
    }
}

#[test]
fn recovery_falls_back_when_newest_dump_is_incomplete() {
    let (db, ginja, cloud) = protect(config());
    for i in 0..20u64 {
        db.put(1, i, format!("v{i}").into_bytes()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    drop(db);

    // Forge an incomplete multi-part dump newer than everything: the
    // recovery must ignore it and use the boot dump.
    cloud
        .put("DB/999_dump_1000_0_3", b"half-uploaded garbage")
        .unwrap();
    let rebuilt = Arc::new(MemFs::new());
    let report = recover_into(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
    assert_eq!(
        report.dump_ts, 0,
        "must fall back to the complete boot dump"
    );
    let db = Database::open(rebuilt, DbProfile::postgres_small()).unwrap();
    assert_eq!(db.get(1, 5).unwrap().unwrap(), b"v5");
}

#[test]
fn boot_rejects_non_empty_bucket() {
    let cloud = Arc::new(MemStore::new());
    cloud
        .put("WAL/1_old_0_5", b"history of another database")
        .unwrap();
    let err = Ginja::boot(
        Arc::new(MemFs::new()),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config(),
    )
    .map(|g| g.shutdown())
    .unwrap_err();
    assert!(matches!(err, GinjaError::Config(_)), "{err}");
}

#[test]
fn reboot_rejects_foreign_objects_in_bucket() {
    let (db, ginja, cloud) = protect(config());
    db.put(1, 1, b"x".to_vec()).unwrap();
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    drop(db);

    cloud.put("somebody-elses-file.txt", b"???").unwrap();
    let err = Ginja::reboot(
        Arc::new(MemFs::new()),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config(),
    )
    .map(|g| g.shutdown())
    .unwrap_err();
    assert!(matches!(err, GinjaError::BadObjectName(_)));
}

#[test]
fn sync_times_out_when_cloud_is_down() {
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::postgres_small()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);
    let plan = Arc::new(ginja_cloud::FaultPlan::new());
    let cloud = Arc::new(ginja_cloud::FaultStore::new(MemStore::new(), plan.clone()));
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config(),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, DbProfile::postgres_small()).unwrap();
    plan.outage();
    db.put(1, 1, b"stuck".to_vec()).unwrap();
    assert!(
        !ginja.sync(Duration::from_millis(300)),
        "sync must report failure"
    );
    plan.restore();
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_disables_protection() {
    let (db, ginja, _cloud) = protect(config());
    db.put(1, 1, b"before".to_vec()).unwrap();
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    ginja.shutdown(); // second call must be a no-op

    // Writes after shutdown proceed locally, unprotected and unblocked.
    let before = ginja.stats().updates_intercepted;
    db.put(1, 2, b"after-shutdown".to_vec()).unwrap();
    assert_eq!(db.get(1, 2).unwrap().unwrap(), b"after-shutdown");
    assert_eq!(ginja.stats().updates_intercepted, before);
}

#[test]
fn erasure_coded_protection_survives_provider_loss() {
    // DepSky-CA style: three providers, any two rebuild — 1.5× storage
    // instead of replication's 3×.
    let providers: Vec<Arc<MemStore>> = (0..3).map(|_| Arc::new(MemStore::new())).collect();
    let cloud = Arc::new(ginja_cloud::ErasureStore::new(
        providers
            .iter()
            .map(|p| p.clone() as Arc<dyn ginja_cloud::ObjectStore>)
            .collect(),
        2,
    ));

    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::postgres_small()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config(),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, DbProfile::postgres_small()).unwrap();
    for i in 0..40u64 {
        db.put(1, i, format!("shard-row-{i}").into_bytes()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    drop(db);

    // One provider is wiped entirely; recovery still works through the
    // erasure layer.
    providers[0].clear();
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
    let db = Database::open(rebuilt, DbProfile::postgres_small()).unwrap();
    for i in 0..40u64 {
        assert_eq!(
            db.get(1, i).unwrap().unwrap(),
            format!("shard-row-{i}").into_bytes()
        );
    }

    // Storage check: the three providers together hold ~1.5× the
    // logical bytes, not 3×.
    let logical: u64 = {
        let names = cloud.list("").unwrap();
        names
            .iter()
            .map(|n| cloud.get(n).unwrap().len() as u64)
            .sum()
    };
    let physical: u64 = providers.iter().map(|p| p.total_bytes()).sum();
    assert!(
        physical < logical * 2,
        "physical {physical} vs logical {logical}"
    );
}

#[test]
fn exposure_reports_pending_risk() {
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::postgres_small()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);
    let plan = Arc::new(ginja_cloud::FaultPlan::new());
    let cloud = Arc::new(ginja_cloud::FaultStore::new(MemStore::new(), plan.clone()));
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        GinjaConfig::builder()
            .batch(1)
            .safety(16)
            .batch_timeout(Duration::from_millis(10))
            .build()
            .unwrap(),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, DbProfile::postgres_small()).unwrap();

    // Idle: nothing exposed.
    assert_eq!(ginja.exposure().updates, 0);
    assert!(ginja.exposure().oldest_age.is_none());

    // Cloud down: exposure accumulates up to S.
    plan.outage();
    for i in 0..10 {
        db.put(1, i, b"x".to_vec()).unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    let exposure = ginja.exposure();
    assert!(exposure.updates >= 10, "{exposure:?}");
    assert!(exposure.oldest_age.unwrap() >= Duration::from_millis(40));

    // Cloud back: exposure drains to zero.
    plan.restore();
    assert!(ginja.sync(Duration::from_secs(20)));
    assert_eq!(ginja.exposure().updates, 0);
    ginja.shutdown();
}

#[test]
fn empty_database_boot_and_recover() {
    // Protect a database with no tables at all.
    let (db, ginja, cloud) = protect(config());
    drop(db);
    assert!(ginja.sync(Duration::from_secs(5)));
    ginja.shutdown();

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
    let db = Database::open(rebuilt, DbProfile::postgres_small()).unwrap();
    assert!(matches!(
        db.get(99, 0),
        Err(ginja_db::DbError::TableMissing(99))
    ));
}
