use std::sync::Arc;

use crate::{ObjectStore, StoreError};

/// Cloud-of-clouds replication over several [`ObjectStore`] backends.
///
/// The Ginja prototype "supports the replication of objects in multiple
/// clouds, for tolerating provider-scale failures" (§6, citing DepSky).
/// This implementation writes every object to all replicas and succeeds
/// once a configurable quorum acknowledges; reads fall through replicas
/// in order until one returns the object; listings are the union of all
/// reachable replicas (Ginja object names are immutable-once-written, so
/// a union is safe); deletes are best-effort everywhere.
#[derive(Clone)]
pub struct ReplicatedStore {
    replicas: Vec<Arc<dyn ObjectStore>>,
    write_quorum: usize,
}

impl std::fmt::Debug for ReplicatedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedStore")
            .field("replicas", &self.replicas.len())
            .field("write_quorum", &self.write_quorum)
            .finish()
    }
}

impl ReplicatedStore {
    /// Replicates over `replicas` requiring all writes to reach every
    /// replica (maximum durability).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn all_of(replicas: Vec<Arc<dyn ObjectStore>>) -> Self {
        let quorum = replicas.len();
        Self::with_quorum(replicas, quorum)
    }

    /// Replicates over `replicas` requiring a majority of acknowledgments
    /// per write (tolerates minority provider outages without blocking).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn majority_of(replicas: Vec<Arc<dyn ObjectStore>>) -> Self {
        let quorum = replicas.len() / 2 + 1;
        Self::with_quorum(replicas, quorum)
    }

    /// Replicates with an explicit write quorum.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or the quorum is zero or larger
    /// than the replica count.
    pub fn with_quorum(replicas: Vec<Arc<dyn ObjectStore>>, write_quorum: usize) -> Self {
        assert!(!replicas.is_empty(), "at least one replica is required");
        assert!(
            write_quorum >= 1 && write_quorum <= replicas.len(),
            "write quorum must be in 1..=replicas"
        );
        ReplicatedStore {
            replicas,
            write_quorum,
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The configured write quorum.
    pub fn write_quorum(&self) -> usize {
        self.write_quorum
    }

    /// Anti-entropy repair: copies every object that some replica holds
    /// to the replicas that miss it. Run after a provider outage so the
    /// lagging replica catches up (objects written under a quorum are
    /// absent from replicas that were down). Ginja object names are
    /// written once and never mutated, so copying by name is safe.
    ///
    /// Returns the number of `(replica, object)` copies performed.
    ///
    /// # Errors
    ///
    /// Fails if no replica can be listed; per-object copy failures are
    /// skipped (the next repair pass retries them).
    pub fn repair(&self) -> Result<usize, StoreError> {
        // Union of all object names across reachable replicas.
        let mut names = std::collections::BTreeSet::new();
        let mut listed_any = false;
        for replica in &self.replicas {
            if let Ok(list) = replica.list("") {
                listed_any = true;
                names.extend(list);
            }
        }
        if !listed_any {
            return Err(StoreError::unavailable("no replica can be listed"));
        }

        let mut copies = 0;
        for name in names {
            // Find a source holding the object.
            let Some(data) = self.replicas.iter().find_map(|r| r.get(&name).ok()) else {
                continue;
            };
            for replica in &self.replicas {
                if replica.get(&name).is_err() && replica.put(&name, &data).is_ok() {
                    copies += 1;
                }
            }
        }
        Ok(copies)
    }
}

impl ObjectStore for ReplicatedStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut acked = 0usize;
        for replica in &self.replicas {
            if replica.put(name, data).is_ok() {
                acked += 1;
            }
        }
        if acked >= self.write_quorum {
            Ok(())
        } else {
            Err(StoreError::QuorumNotReached {
                acked,
                required: self.write_quorum,
            })
        }
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let mut last_err = StoreError::NotFound(name.to_string());
        for replica in &self.replicas {
            match replica.get(name) {
                Ok(data) => return Ok(data),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        // Best-effort on every replica; success if any replica processed
        // it (a replica that is down keeps the object as garbage, which
        // is a cost problem, not a correctness problem).
        let mut any_ok = false;
        let mut last_err = None;
        for replica in &self.replicas {
            match replica.delete(name) {
                Ok(()) => any_ok = true,
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| StoreError::fatal("no replicas configured")))
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let mut names = std::collections::BTreeSet::new();
        let mut any_ok = false;
        let mut last_err = None;
        for replica in &self.replicas {
            match replica.list(prefix) {
                Ok(list) => {
                    any_ok = true;
                    names.extend(list);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(names.into_iter().collect())
        } else {
            Err(last_err.unwrap_or_else(|| StoreError::fatal("no replicas configured")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultStore, MemStore, OpKind};

    fn three_clouds() -> (Vec<Arc<dyn ObjectStore>>, Vec<Arc<FaultPlan>>) {
        let mut replicas: Vec<Arc<dyn ObjectStore>> = Vec::new();
        let mut plans = Vec::new();
        for _ in 0..3 {
            let plan = Arc::new(FaultPlan::new());
            replicas.push(Arc::new(FaultStore::new(MemStore::new(), plan.clone())));
            plans.push(plan);
        }
        (replicas, plans)
    }

    #[test]
    fn writes_reach_all_replicas() {
        let stores: Vec<Arc<dyn ObjectStore>> =
            vec![Arc::new(MemStore::new()), Arc::new(MemStore::new())];
        let mems: Vec<Arc<dyn ObjectStore>> = stores.clone();
        let repl = ReplicatedStore::all_of(stores);
        repl.put("o", b"data").unwrap();
        for m in &mems {
            assert_eq!(m.get("o").unwrap(), b"data");
        }
    }

    #[test]
    fn majority_survives_one_outage() {
        let (replicas, plans) = three_clouds();
        let repl = ReplicatedStore::majority_of(replicas);
        plans[0].outage();
        repl.put("o", b"d").unwrap(); // 2 of 3 ack
        assert_eq!(repl.get("o").unwrap(), b"d");
    }

    #[test]
    fn quorum_failure_reported() {
        let (replicas, plans) = three_clouds();
        let repl = ReplicatedStore::majority_of(replicas);
        plans[0].outage();
        plans[1].outage();
        let err = repl.put("o", b"d").unwrap_err();
        assert_eq!(
            err,
            StoreError::QuorumNotReached {
                acked: 1,
                required: 2
            }
        );
    }

    #[test]
    fn get_falls_through_to_healthy_replica() {
        let (replicas, plans) = three_clouds();
        let repl = ReplicatedStore::all_of(replicas);
        repl.put("o", b"d").unwrap();
        plans[0].fail_next(OpKind::Get, 1);
        assert_eq!(repl.get("o").unwrap(), b"d");
    }

    #[test]
    fn list_is_union() {
        let a = Arc::new(MemStore::new());
        let b = Arc::new(MemStore::new());
        a.put("WAL/1", b"").unwrap();
        b.put("WAL/2", b"").unwrap();
        b.put("WAL/1", b"").unwrap();
        let repl = ReplicatedStore::with_quorum(vec![a, b], 1);
        assert_eq!(repl.list("WAL/").unwrap(), vec!["WAL/1", "WAL/2"]);
    }

    #[test]
    fn delete_best_effort() {
        let (replicas, plans) = three_clouds();
        let repl = ReplicatedStore::all_of(replicas.clone());
        repl.put("o", b"d").unwrap();
        plans[2].fail_next(OpKind::Delete, 1);
        repl.delete("o").unwrap();
        // Replica 2 still has it (garbage), others do not.
        assert!(replicas[0].get("o").is_err());
        assert!(replicas[1].get("o").is_err());
        assert!(replicas[2].get("o").is_ok());
    }

    #[test]
    fn repair_heals_lagging_replica() {
        let (replicas, plans) = three_clouds();
        let repl = ReplicatedStore::majority_of(replicas.clone());
        plans[2].outage();
        for i in 0..10 {
            repl.put(&format!("WAL/{i}_f_0_4"), b"data").unwrap();
        }
        plans[2].restore();
        assert!(replicas[2].get("WAL/3_f_0_4").is_err());

        let copies = repl.repair().unwrap();
        assert_eq!(copies, 10);
        for i in 0..10 {
            assert_eq!(replicas[2].get(&format!("WAL/{i}_f_0_4")).unwrap(), b"data");
        }
        // Second pass: nothing to do.
        assert_eq!(repl.repair().unwrap(), 0);
    }

    #[test]
    fn repair_with_all_replicas_down_errors() {
        let (replicas, plans) = three_clouds();
        let repl = ReplicatedStore::all_of(replicas);
        for plan in &plans {
            plan.outage();
        }
        assert!(repl.repair().is_err());
    }

    #[test]
    fn get_missing_everywhere_is_not_found() {
        let (replicas, _) = three_clouds();
        let repl = ReplicatedStore::all_of(replicas);
        assert!(matches!(repl.get("missing"), Err(StoreError::NotFound(_))));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replicas_rejected() {
        let _ = ReplicatedStore::all_of(Vec::new());
    }

    #[test]
    #[should_panic(expected = "write quorum")]
    fn oversized_quorum_rejected() {
        let _ = ReplicatedStore::with_quorum(vec![Arc::new(MemStore::new())], 2);
    }
}
