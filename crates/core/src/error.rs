use std::error::Error;
use std::fmt;

use ginja_cloud::StoreError;
use ginja_codec::CodecError;
use ginja_vfs::FsError;

/// Errors surfaced by the Ginja middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GinjaError {
    /// Invalid configuration (e.g. `batch > safety`).
    Config(String),
    /// A cloud-storage operation failed beyond retry.
    Cloud(StoreError),
    /// Sealing/opening a cloud object failed (corruption, bad key).
    Codec(CodecError),
    /// A local file-system operation failed.
    Fs(FsError),
    /// A cloud object name did not parse.
    BadObjectName(String),
    /// Recovery could not assemble a consistent state.
    Recovery(String),
    /// The middleware has been shut down.
    ShutDown,
}

impl fmt::Display for GinjaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GinjaError::Config(reason) => write!(f, "invalid configuration: {reason}"),
            GinjaError::Cloud(e) => write!(f, "cloud storage error: {e}"),
            GinjaError::Codec(e) => write!(f, "object codec error: {e}"),
            GinjaError::Fs(e) => write!(f, "local file system error: {e}"),
            GinjaError::BadObjectName(name) => write!(f, "unparseable object name: {name}"),
            GinjaError::Recovery(reason) => write!(f, "recovery failed: {reason}"),
            GinjaError::ShutDown => write!(f, "ginja middleware is shut down"),
        }
    }
}

impl Error for GinjaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GinjaError::Cloud(e) => Some(e),
            GinjaError::Codec(e) => Some(e),
            GinjaError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for GinjaError {
    fn from(err: StoreError) -> Self {
        GinjaError::Cloud(err)
    }
}

impl From<CodecError> for GinjaError {
    fn from(err: CodecError) -> Self {
        GinjaError::Codec(err)
    }
}

impl From<FsError> for GinjaError {
    fn from(err: FsError) -> Self {
        GinjaError::Fs(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_preserved() {
        assert!(GinjaError::from(StoreError::NotFound("x".into()))
            .source()
            .is_some());
        assert!(GinjaError::from(CodecError::BadMagic).source().is_some());
        assert!(GinjaError::from(FsError::NotFound("y".into()))
            .source()
            .is_some());
        assert!(GinjaError::ShutDown.source().is_none());
    }

    #[test]
    fn display_is_informative() {
        let e = GinjaError::BadObjectName("WAL/x".into());
        assert!(e.to_string().contains("WAL/x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<GinjaError>();
    }
}
