//! The fleet manager: N tenants, one executor, one ledger, one budget.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use ginja_cloud::{
    ObjectStore, PrefixStore, ResilientStore, RetryConfig, StoreError, UsageLedger, UsageMeter,
};
use ginja_core::{
    rollup, FanoutExecutor, FanoutHandle, Ginja, GinjaConfig, GinjaError, SentinelStats,
};
use ginja_cost::governor::{project_spend, to_microusd, GovernorAction, GovernorPolicy};
use ginja_cost::BudgetConfig;
use ginja_db::{Database, DbError, DbProfile, ProfileKind};
use ginja_sentinel::{scrub_bucket, AnomalyKind, ScrubReport};
use ginja_standby::{Standby, StandbyConfig};
use ginja_vfs::{DbmsProcessor, FileSystem, InterceptFs, MemFs, MySqlProcessor, PostgresProcessor};

use crate::snapshot::{FleetSnapshot, TenantSnapshot};

/// Errors from the fleet manager.
#[derive(Debug)]
pub enum FleetError {
    /// The tenant's middleware failed.
    Ginja(GinjaError),
    /// The tenant's database failed.
    Db(DbError),
    /// A cloud operation outside any tenant's pipeline failed (purge,
    /// offline scrub).
    Store(StoreError),
    /// The tenant name is already attached.
    Duplicate(String),
    /// No tenant with that name is attached.
    Unknown(String),
    /// The tenant name is empty or contains `/` (which would let one
    /// tenant's prefix nest inside another's, breaking isolation).
    BadName(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Ginja(e) => write!(f, "tenant middleware: {e}"),
            FleetError::Db(e) => write!(f, "tenant database: {e}"),
            FleetError::Store(e) => write!(f, "fleet cloud operation: {e}"),
            FleetError::Duplicate(name) => write!(f, "tenant {name:?} is already attached"),
            FleetError::Unknown(name) => write!(f, "no tenant named {name:?}"),
            FleetError::BadName(name) => {
                write!(f, "tenant name {name:?} must be nonempty and slash-free")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Ginja(e) => Some(e),
            FleetError::Db(e) => Some(e),
            FleetError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GinjaError> for FleetError {
    fn from(e: GinjaError) -> Self {
        FleetError::Ginja(e)
    }
}

impl From<DbError> for FleetError {
    fn from(e: DbError) -> Self {
        FleetError::Db(e)
    }
}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> Self {
        FleetError::Store(e)
    }
}

/// Fleet-level configuration: the shared resources every tenant
/// multiplexes over.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Width of the shared fair executor — the fleet's total budget of
    /// concurrent cloud transfers, across all tenants. Replaces N
    /// per-tenant pools of `recovery_fanout` threads each.
    pub width: usize,
    /// Resilience policy on the shared store (retry/backoff, one
    /// fleet-wide circuit breaker). Tenants boot with their own retry
    /// disabled so cloud faults are handled exactly once, here.
    pub retry: RetryConfig,
    /// Optional fleet-wide monthly budget. When set, the arbiter
    /// derives per-tenant sub-budgets from fair-share weights and
    /// steers each tenant's B/TB/dump/sentinel knobs — never its S.
    pub budget: Option<BudgetConfig>,
    /// Window for the rate observations feeding spend projections.
    pub rate_window: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            width: 8,
            retry: RetryConfig::default(),
            budget: None,
            rate_window: Duration::from_secs(60),
        }
    }
}

/// Everything needed to attach one tenant.
pub struct TenantSpec {
    /// Unique tenant name; becomes the bucket prefix `tenants/<name>/`.
    pub name: String,
    /// Fair-share weight: this tenant's DRR quantum on the shared
    /// executor and its share of the fleet budget. Defaults to 1.0.
    pub weight: f64,
    /// Database profile (engine kind, sizing).
    pub profile: DbProfile,
    /// The tenant's middleware configuration. Its `retry` and `budget`
    /// are overridden at attach (shared resilience, fleet arbitration);
    /// everything else — including the tenant's own S/TS — is honored
    /// verbatim.
    pub config: GinjaConfig,
    /// The tenant's local file system; a fresh in-memory one if `None`.
    pub local: Option<Arc<dyn FileSystem>>,
    /// Whether to attach a warm standby tailing this tenant's prefix
    /// into a shadow directory (driven by [`Fleet::standby_pass`]).
    pub standby: bool,
}

impl TenantSpec {
    /// A spec with weight 1.0 and a fresh local file system.
    pub fn new(name: impl Into<String>, profile: DbProfile, config: GinjaConfig) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1.0,
            profile,
            config,
            local: None,
            standby: false,
        }
    }

    /// Sets the fair-share weight.
    #[must_use]
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Attaches a warm standby to the tenant.
    #[must_use]
    pub fn standby(mut self, enabled: bool) -> Self {
        self.standby = enabled;
        self
    }
}

impl std::fmt::Debug for TenantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSpec")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .finish_non_exhaustive()
    }
}

/// One attached tenant: a full Ginja deployment (own database, own
/// prefix, own S) on shared fleet infrastructure.
pub struct Tenant {
    name: String,
    weight: f64,
    prefix: String,
    store: PrefixStore,
    db: Database,
    ginja: Ginja,
    sentinel: Arc<SentinelStats>,
    standby: Option<Arc<Standby>>,
    decisions: AtomicU64,
    escalations: AtomicU64,
    relaxations: AtomicU64,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("lane", &self.lane())
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's fair-share weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The tenant's lane on the shared executor.
    pub fn lane(&self) -> usize {
        self.ginja.fanout().lane()
    }

    /// The tenant's bucket prefix (`tenants/<name>/`).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The tenant's scoped view of the shared bucket. Recovery tooling
    /// reads through this — it structurally cannot see other tenants.
    pub fn store(&self) -> PrefixStore {
        self.store.clone()
    }

    /// The protected database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The tenant's middleware.
    pub fn ginja(&self) -> &Ginja {
        &self.ginja
    }

    /// The tenant's warm standby, when the spec asked for one.
    pub fn standby(&self) -> Option<&Arc<Standby>> {
        self.standby.as_ref()
    }
}

fn processor_for(kind: ProfileKind) -> Arc<dyn DbmsProcessor> {
    match kind {
        ProfileKind::Postgres => Arc::new(PostgresProcessor::new()),
        ProfileKind::MySql => Arc::new(MySqlProcessor::new()),
    }
}

/// A multi-tenant fleet of Ginja deployments over one bucket, one
/// fair-share executor and one budget.
///
/// Shared infrastructure (what the paper provisions per database, the
/// fleet provisions once):
///
/// * **One executor** — a weighted deficit-round-robin scheduler caps
///   the fleet's concurrent cloud transfers at [`FleetConfig::width`]
///   and serves tenant lanes in proportion to their weights, so a
///   bulk-dumping tenant cannot starve a neighbor's commit path.
/// * **One ledger + breaker** — every tenant's traffic lands in one
///   [`ResilientStore`] around the base bucket: exact fleet-wide
///   accounting and a single circuit breaker for the shared provider.
/// * **One budget** — the arbiter splits the fleet's monthly budget
///   into per-tenant sub-budgets by weight and steers each tenant's
///   cost knobs through [`Ginja::apply_knobs`]. A tenant's Safety is
///   never touched: B is hard-clamped to `[1, S]` by the commit queue
///   and S itself has no setter.
/// * **One sentinel rotation** — [`Fleet::scrub_next`] audits tenant
///   prefixes round-robin on the shared store.
pub struct Fleet {
    exec: Arc<FanoutExecutor>,
    ledger: Arc<UsageLedger>,
    shared: Arc<ResilientStore>,
    config: FleetConfig,
    epoch: Instant,
    tenants: RwLock<Vec<Arc<Tenant>>>,
    scrub_cursor: AtomicUsize,
    scrub_cycles: AtomicU64,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("width", &self.config.width)
            .field("tenants", &self.tenants.read().len())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// A fleet over `base` (the shared bucket) with no tenants yet.
    pub fn new(base: Arc<dyn ObjectStore>, config: FleetConfig) -> Self {
        let ledger = Arc::new(UsageLedger::new());
        let shared = Arc::new(ResilientStore::with_ledger(
            base,
            config.retry.clone(),
            ledger.clone(),
        ));
        Fleet {
            exec: Arc::new(FanoutExecutor::fair(config.width)),
            ledger,
            shared,
            config,
            epoch: Instant::now(),
            tenants: RwLock::new(Vec::new()),
            scrub_cursor: AtomicUsize::new(0),
            scrub_cycles: AtomicU64::new(0),
        }
    }

    /// The shared fair executor.
    pub fn executor(&self) -> &Arc<FanoutExecutor> {
        &self.exec
    }

    /// The fleet-wide usage ledger (every tenant's cloud operations,
    /// fully-prefixed names, exact storage accounting).
    pub fn ledger(&self) -> &Arc<UsageLedger> {
        &self.ledger
    }

    /// The shared resilient store around the base bucket.
    pub fn shared_store(&self) -> &Arc<ResilientStore> {
        &self.shared
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Boots a tenant onto the fleet: registers a scheduler lane with
    /// the spec's weight, scopes the shared bucket under
    /// `tenants/<name>/`, creates (or crash-opens) the database and
    /// Boots Ginja over it. The tenant's own retry policy is disabled
    /// (the shared store already retries, with one fleet breaker) and
    /// its in-process budget governor is off (the fleet arbiter owns
    /// the budget); its internal ledger keeps metering its own traffic
    /// for per-tenant spend attribution.
    ///
    /// # Errors
    ///
    /// Bad or duplicate names; a non-empty tenant prefix (Boot demands
    /// a fresh namespace); middleware and database errors.
    pub fn attach(&self, spec: TenantSpec) -> Result<Arc<Tenant>, FleetError> {
        if spec.name.is_empty() || spec.name.contains('/') {
            return Err(FleetError::BadName(spec.name));
        }
        if self.tenant(&spec.name).is_some() {
            return Err(FleetError::Duplicate(spec.name));
        }
        let prefix = format!("tenants/{}/", spec.name);
        let store = PrefixStore::new(self.shared.clone() as Arc<dyn ObjectStore>, prefix.clone());

        let mut config = spec.config;
        config.retry = RetryConfig::disabled();
        config.budget = None;
        let standby_config = spec.standby.then(|| config.clone());

        let local: Arc<dyn FileSystem> = spec.local.unwrap_or_else(|| Arc::new(MemFs::new()));
        // Initialize (or crash-recover) the database files first so the
        // Boot dump captures a complete system.
        let pre = if local.exists(ginja_db::control::PG_CONTROL_PATH)
            || local.exists(ginja_db::control::INNODB_LOG0)
        {
            Database::open(local.clone(), spec.profile.clone())?
        } else {
            Database::create(local.clone(), spec.profile.clone())?
        };
        drop(pre);

        let fanout = FanoutHandle::shared(self.exec.clone(), spec.weight);
        let ginja = Ginja::boot_with(
            local.clone(),
            Arc::new(store.clone()) as Arc<dyn ObjectStore>,
            processor_for(spec.profile.kind),
            config,
            fanout,
        )?;
        let sentinel = Arc::new(SentinelStats::default());
        ginja.attach_sentinel(sentinel.clone());
        // The standby tails the tenant's prefix through its own
        // resilient wrapper (fresh ledger → per-standby read
        // attribution; retries stay disabled like the tenant's own
        // lane) but shares the fleet executor, so tail GETs compete
        // under the same fair-share weight as the tenant's uploads.
        let standby = match standby_config {
            Some(standby_cfg) => {
                let tail_store = Arc::new(ResilientStore::new(
                    Arc::new(store.clone()) as Arc<dyn ObjectStore>,
                    RetryConfig::disabled(),
                ));
                let tail_fanout = FanoutHandle::shared(self.exec.clone(), spec.weight);
                let standby = Standby::attach_with(
                    tail_store,
                    tail_fanout,
                    Arc::new(MemFs::new()),
                    standby_cfg,
                    StandbyConfig {
                        lane_weight: spec.weight,
                        ..StandbyConfig::default()
                    },
                )?;
                ginja.attach_standby(standby.counters());
                Some(standby)
            }
            None => None,
        };
        let intercepted: Arc<dyn FileSystem> =
            Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
        let db = Database::open(intercepted, spec.profile)?;

        let tenant = Arc::new(Tenant {
            name: spec.name,
            weight: spec.weight,
            prefix,
            store,
            db,
            ginja,
            sentinel,
            standby,
            decisions: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
            relaxations: AtomicU64::new(0),
        });
        self.tenants.write().push(tenant.clone());
        Ok(tenant)
    }

    /// The attached tenant with the given name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().iter().find(|t| t.name == name).cloned()
    }

    /// All attached tenants, in attach order.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.read().clone()
    }

    /// Detaches a tenant: drains its pipeline (up to `timeout` — every
    /// in-flight wave completes; the scheduler simply stops granting to
    /// an empty lane afterwards), shuts its middleware down, and — with
    /// `purge` — deletes the tenant's objects from the shared bucket.
    /// The purge walks the tenant's prefix only, so it structurally
    /// cannot touch another tenant's objects.
    ///
    /// Returns whether the pipeline fully drained before shutdown.
    ///
    /// # Errors
    ///
    /// [`FleetError::Unknown`] for unattached names; cloud errors from
    /// the purge.
    pub fn detach(&self, name: &str, purge: bool, timeout: Duration) -> Result<bool, FleetError> {
        let tenant = {
            let mut tenants = self.tenants.write();
            let idx = tenants
                .iter()
                .position(|t| t.name == name)
                .ok_or_else(|| FleetError::Unknown(name.to_string()))?;
            tenants.remove(idx)
        };
        let drained = tenant.ginja.sync(timeout);
        if let Some(standby) = tenant.standby() {
            standby.shutdown();
        }
        tenant.ginja.shutdown();
        if purge {
            for object in self.shared.list(&tenant.prefix)? {
                self.shared.delete(&object)?;
            }
        }
        Ok(drained)
    }

    /// Drains every tenant's pipeline (each gets up to `timeout`).
    /// Returns whether all drained.
    pub fn sync_all(&self, timeout: Duration) -> bool {
        let mut all = true;
        for tenant in self.tenants() {
            all &= tenant.ginja.sync(timeout);
        }
        all
    }

    /// Shuts every tenant down (without draining — call
    /// [`Fleet::sync_all`] first if tail durability matters).
    pub fn shutdown(&self) {
        for tenant in self.tenants() {
            if let Some(standby) = tenant.standby() {
                standby.shutdown();
            }
            tenant.ginja.shutdown();
        }
    }

    /// One warm-standby tail pass: runs a delta poll + apply cycle on
    /// every standby-equipped tenant. Cycle failures (e.g. the shared
    /// breaker is open during an outage) are tolerated — the standby
    /// records the error and its lag gauges keep aging. Returns the
    /// number of cycles that completed cleanly.
    pub fn standby_pass(&self) -> usize {
        let mut clean = 0;
        for tenant in self.tenants() {
            if let Some(standby) = tenant.standby() {
                if standby.run_cycle().is_ok() {
                    clean += 1;
                }
            }
        }
        clean
    }

    /// This tenant's monthly sub-budget: the fleet budget split by
    /// fair-share weight. `None` without a fleet budget or when the
    /// tenant is unknown.
    pub fn sub_budget(&self, name: &str) -> Option<BudgetConfig> {
        let budget = self.config.budget.as_ref()?;
        let tenants = self.tenants.read();
        let total: f64 = tenants.iter().map(|t| t.weight).sum();
        let tenant = tenants.iter().find(|t| t.name == name)?;
        if total <= 0.0 {
            return None;
        }
        Some(BudgetConfig {
            monthly_usd: budget.monthly_usd * (tenant.weight / total),
            ..budget.clone()
        })
    }

    /// One budget-arbitration pass: for each tenant, derive its
    /// sub-budget from the weights, project its month-end spend from
    /// its own metered ledger, and apply the MIMD governor decision to
    /// its knobs. B/TB/dump-threshold/sentinel-pace can move; the
    /// tenant's S cannot — [`Ginja::apply_knobs`] clamps B to `[1, S]`
    /// and S has no setter at all.
    ///
    /// Returns the number of tenants whose knobs changed. A no-op
    /// without a fleet budget.
    pub fn governor_pass(&self) -> usize {
        let Some(budget) = self.config.budget.clone() else {
            return 0;
        };
        let tenants = self.tenants();
        let total: f64 = tenants.iter().map(|t| t.weight).sum();
        if total <= 0.0 {
            return 0;
        }
        let elapsed = self.epoch.elapsed();
        let mut applied = 0;
        for tenant in &tenants {
            let sub = BudgetConfig {
                monthly_usd: budget.monthly_usd * (tenant.weight / total),
                ..budget.clone()
            };
            let ledger = tenant.ginja.usage_ledger();
            let usage = ledger.usage();
            let rates = ledger.observe_rates(self.config.rate_window);
            let projection = project_spend(&usage, Some(&rates), elapsed, &sub);
            let policy = GovernorPolicy::new(sub, tenant.ginja.knob_bounds());
            if let Some((knobs, action)) = policy.decide(&tenant.ginja.current_knobs(), &projection)
            {
                tenant.ginja.apply_knobs(&knobs);
                tenant.decisions.fetch_add(1, Ordering::Relaxed);
                match action {
                    GovernorAction::Escalate => tenant.escalations.fetch_add(1, Ordering::Relaxed),
                    GovernorAction::Relax => tenant.relaxations.fetch_add(1, Ordering::Relaxed),
                };
                applied += 1;
            }
        }
        applied
    }

    /// One round-robin sentinel step: audits the next tenant's prefix
    /// on the shared store (offline scrub — list, parse, verify every
    /// payload envelope) and records the result into that tenant's
    /// sentinel counters. Returns the tenant's name and the report, or
    /// `None` with no tenants attached.
    ///
    /// # Errors
    ///
    /// Cloud listing/GET failures propagate; per-object damage is a
    /// finding, not an error.
    pub fn scrub_next(&self) -> Result<Option<(String, ScrubReport)>, FleetError> {
        let tenants = self.tenants();
        if tenants.is_empty() {
            return Ok(None);
        }
        let idx = self.scrub_cursor.fetch_add(1, Ordering::Relaxed) % tenants.len();
        let tenant = &tenants[idx];
        let report = scrub_bucket(&tenant.store, tenant.ginja.config())?;
        tenant.sentinel.record_scrub(
            report.objects_listed as u64,
            (report.count(AnomalyKind::MissingWal) + report.count(AnomalyKind::MissingDb)) as u64,
            report.count(AnomalyKind::Corrupt) as u64,
            report.count(AnomalyKind::Orphan) as u64,
        );
        self.scrub_cycles.fetch_add(1, Ordering::Relaxed);
        Ok(Some((tenant.name.clone(), report)))
    }

    /// A point-in-time view of the whole fleet: per-tenant stats and
    /// scheduler lanes, the exact counter roll-up, and the budget
    /// position (fleet-wide spend priced from the shared ledger,
    /// per-tenant spend from each tenant's own ledger).
    pub fn snapshot(&self) -> FleetSnapshot {
        let tenants = self.tenants();
        let total_weight: f64 = tenants.iter().map(|t| t.weight).sum();
        let elapsed = self.epoch.elapsed();
        let lanes = self.exec.lane_snapshots();
        let budget = self.config.budget.clone();

        let mut tenant_snaps = Vec::with_capacity(tenants.len());
        for tenant in &tenants {
            let stats = tenant.ginja.stats();
            let lane = tenant.lane();
            let (sub_usd, spent, projected) = match &budget {
                Some(b) if total_weight > 0.0 => {
                    let sub = BudgetConfig {
                        monthly_usd: b.monthly_usd * (tenant.weight / total_weight),
                        ..b.clone()
                    };
                    let projection =
                        project_spend(&tenant.ginja.usage_ledger().usage(), None, elapsed, &sub);
                    (
                        sub.monthly_usd,
                        projection.spent_usd,
                        projection.projected_usd,
                    )
                }
                _ => (0.0, 0.0, 0.0),
            };
            tenant_snaps.push(TenantSnapshot {
                name: tenant.name.clone(),
                weight: tenant.weight,
                lane,
                stats,
                scheduler: lanes.iter().find(|l| l.lane == lane).copied(),
                exposure: tenant.ginja.exposure(),
                sub_budget_microusd: to_microusd(sub_usd),
                spent_microusd: to_microusd(spent),
                projected_microusd: to_microusd(projected),
                decisions: tenant.decisions.load(Ordering::Relaxed),
                escalations: tenant.escalations.load(Ordering::Relaxed),
                relaxations: tenant.relaxations.load(Ordering::Relaxed),
            });
        }

        let (budget_microusd, spent_microusd, projected_microusd, over_budget) = match &budget {
            Some(b) => {
                let projection = project_spend(&self.ledger.usage(), None, elapsed, b);
                (
                    to_microusd(b.monthly_usd),
                    to_microusd(projection.spent_usd),
                    to_microusd(projection.projected_usd),
                    projection.projected_usd > b.monthly_usd,
                )
            }
            None => (0, 0, 0, false),
        };

        FleetSnapshot {
            totals: rollup(tenant_snaps.iter().map(|t| &t.stats)),
            tenants: tenant_snaps,
            width: self.exec.width(),
            max_in_flight: self.exec.max_in_flight(),
            budget_microusd,
            spent_microusd,
            projected_microusd,
            over_budget,
            scrub_cycles: self.scrub_cycles.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_cloud::MemStore;

    const SYNC: Duration = Duration::from_secs(30);

    fn tenant_config() -> GinjaConfig {
        GinjaConfig::builder()
            .batch(2)
            .safety(16)
            .batch_timeout(Duration::from_millis(10))
            .build()
            .unwrap()
    }

    fn fleet_on(base: Arc<MemStore>, budget: Option<BudgetConfig>) -> Fleet {
        Fleet::new(
            base,
            FleetConfig {
                width: 4,
                budget,
                ..FleetConfig::default()
            },
        )
    }

    fn spec(name: &str) -> TenantSpec {
        TenantSpec::new(name, DbProfile::postgres_small(), tenant_config())
    }

    fn write_rows(tenant: &Tenant, n: u64) {
        tenant.db().create_table(1, 64).unwrap();
        for i in 0..n {
            tenant
                .db()
                .put(1, i, format!("{}-{i}", tenant.name()).into_bytes())
                .unwrap();
        }
    }

    #[test]
    fn tenants_share_one_bucket_under_disjoint_prefixes() {
        let base = Arc::new(MemStore::new());
        let fleet = fleet_on(base.clone(), None);
        let a = fleet.attach(spec("a")).unwrap();
        let b = fleet.attach(spec("b")).unwrap();
        assert_ne!(a.lane(), b.lane(), "each tenant gets its own lane");
        write_rows(&a, 6);
        write_rows(&b, 6);
        assert!(fleet.sync_all(SYNC));

        let names = base.list("").unwrap();
        assert!(!names.is_empty());
        assert!(names
            .iter()
            .all(|n| n.starts_with("tenants/a/") || n.starts_with("tenants/b/")));
        assert!(names.iter().any(|n| n.starts_with("tenants/a/")));
        assert!(names.iter().any(|n| n.starts_with("tenants/b/")));
        // Each tenant's scoped view only surfaces its own objects.
        for name in a.store().list("").unwrap() {
            assert!(!name.starts_with("tenants/"), "relative names only: {name}");
        }
        fleet.shutdown();
    }

    #[test]
    fn bad_and_duplicate_names_rejected() {
        let fleet = fleet_on(Arc::new(MemStore::new()), None);
        assert!(matches!(
            fleet.attach(spec("")),
            Err(FleetError::BadName(_))
        ));
        assert!(matches!(
            fleet.attach(spec("a/b")),
            Err(FleetError::BadName(_))
        ));
        fleet.attach(spec("a")).unwrap();
        assert!(matches!(
            fleet.attach(spec("a")),
            Err(FleetError::Duplicate(_))
        ));
        fleet.shutdown();
    }

    #[test]
    fn detach_purge_leaves_neighbors_scrub_clean() {
        let base = Arc::new(MemStore::new());
        let fleet = fleet_on(base.clone(), None);
        let a = fleet.attach(spec("a")).unwrap();
        let b = fleet.attach(spec("b")).unwrap();
        write_rows(&a, 8);
        write_rows(&b, 8);
        assert!(fleet.sync_all(SYNC));
        let b_objects = base.list("tenants/b/").unwrap();

        let drained = fleet.detach("a", true, SYNC).unwrap();
        assert!(drained);
        assert!(fleet.tenant("a").is_none());
        assert!(base.list("tenants/a/").unwrap().is_empty(), "a purged");
        assert_eq!(base.list("tenants/b/").unwrap(), b_objects, "b untouched");

        // The survivor's prefix still audits clean on the shared store.
        let (name, report) = fleet.scrub_next().unwrap().unwrap();
        assert_eq!(name, "b");
        assert!(report.is_clean(), "anomalies: {:?}", report.anomalies);
        assert!(report.objects_listed > 0);
        drop(b);
        fleet.shutdown();
    }

    #[test]
    fn detach_unknown_tenant_errors() {
        let fleet = fleet_on(Arc::new(MemStore::new()), None);
        assert!(matches!(
            fleet.detach("ghost", false, SYNC),
            Err(FleetError::Unknown(_))
        ));
    }

    #[test]
    fn scrub_rotates_round_robin_and_feeds_sentinel_counters() {
        let fleet = fleet_on(Arc::new(MemStore::new()), None);
        let a = fleet.attach(spec("a")).unwrap();
        let _b = fleet.attach(spec("b")).unwrap();
        write_rows(&a, 4);
        assert!(fleet.sync_all(SYNC));

        let mut seen = Vec::new();
        for _ in 0..4 {
            let (name, report) = fleet.scrub_next().unwrap().unwrap();
            assert!(report.is_clean());
            seen.push(name);
        }
        assert_eq!(seen, vec!["a", "b", "a", "b"], "strict rotation");
        let snap = fleet.snapshot();
        assert_eq!(snap.scrub_cycles, 4);
        assert_eq!(snap.tenant("a").unwrap().stats.sentinel.scrub_cycles, 2);
        assert_eq!(snap.tenant("b").unwrap().stats.sentinel.scrub_cycles, 2);
        assert!(snap.totals.objects_scrubbed > 0);
        fleet.shutdown();
    }

    #[test]
    fn snapshot_rolls_up_exact_totals_and_bounds_concurrency() {
        let fleet = fleet_on(Arc::new(MemStore::new()), None);
        let a = fleet.attach(spec("a")).unwrap();
        let b = fleet.attach(spec("b")).unwrap();
        write_rows(&a, 10);
        write_rows(&b, 10);
        assert!(fleet.sync_all(SYNC));

        let snap = fleet.snapshot();
        assert!(snap.healthy());
        assert_eq!(snap.width, 4);
        assert!(
            snap.max_in_flight <= snap.width,
            "global width bound violated: {} > {}",
            snap.max_in_flight,
            snap.width
        );
        let sum: u128 = snap
            .tenants
            .iter()
            .map(|t| u128::from(t.stats.updates_intercepted))
            .sum();
        assert_eq!(snap.totals.updates_intercepted, sum);
        assert!(sum >= 20);
        // Without a fleet budget the money fields stay zero.
        assert_eq!(snap.budget_microusd, 0);
        assert!(!snap.over_budget);
        fleet.shutdown();
    }

    #[test]
    fn sub_budgets_split_by_weight() {
        let fleet = fleet_on(Arc::new(MemStore::new()), Some(BudgetConfig::new(1.0)));
        fleet.attach(spec("heavy").weight(3.0)).unwrap();
        fleet.attach(spec("light").weight(1.0)).unwrap();
        let heavy = fleet.sub_budget("heavy").unwrap();
        let light = fleet.sub_budget("light").unwrap();
        assert!((heavy.monthly_usd - 0.75).abs() < 1e-9);
        assert!((light.monthly_usd - 0.25).abs() < 1e-9);
        assert!(fleet.sub_budget("ghost").is_none());
        let snap = fleet.snapshot();
        assert_eq!(snap.tenant("heavy").unwrap().sub_budget_microusd, 750_000);
        assert_eq!(snap.tenant("light").unwrap().sub_budget_microusd, 250_000);
        fleet.shutdown();
    }

    #[test]
    fn arbitration_escalates_b_but_never_touches_s() {
        // A budget far below what the traffic costs: the arbiter must
        // escalate B (and TB), yet S is immutable by construction.
        let mut budget = BudgetConfig::new(0.000_001);
        budget.month = Duration::from_secs(3600);
        let fleet = fleet_on(Arc::new(MemStore::new()), Some(budget));
        let a = fleet.attach(spec("a")).unwrap();
        let baseline_batch = a.ginja().current_knobs().batch;
        write_rows(&a, 32);
        assert!(fleet.sync_all(SYNC));

        let mut escalations = 0;
        for _ in 0..8 {
            escalations += fleet.governor_pass();
        }
        assert!(escalations > 0, "tiny budget must force escalations");
        let knobs = a.ginja().current_knobs();
        assert!(knobs.batch > baseline_batch, "B escalated");
        assert!(
            knobs.batch <= a.ginja().config().safety,
            "B clamped to S: {} > {}",
            knobs.batch,
            a.ginja().config().safety
        );
        assert_eq!(a.ginja().config().safety, 16, "S untouched");
        let snap = fleet.snapshot();
        let ts = snap.tenant("a").unwrap();
        assert_eq!(ts.escalations, escalations as u64);
        assert_eq!(ts.decisions, ts.escalations + ts.relaxations);
        fleet.shutdown();
    }

    #[test]
    fn governor_pass_is_a_noop_without_a_budget() {
        let fleet = fleet_on(Arc::new(MemStore::new()), None);
        let a = fleet.attach(spec("a")).unwrap();
        write_rows(&a, 8);
        assert!(fleet.sync_all(SYNC));
        assert_eq!(fleet.governor_pass(), 0);
        assert_eq!(fleet.snapshot().tenant("a").unwrap().decisions, 0);
        fleet.shutdown();
    }

    #[test]
    fn standby_tenants_tail_and_promote_within_the_fleet() {
        let fleet = fleet_on(Arc::new(MemStore::new()), None);
        let a = fleet.attach(spec("a").standby(true)).unwrap();
        let plain = fleet.attach(spec("b")).unwrap();
        assert!(a.standby().is_some(), "spec asked for a standby");
        assert!(plain.standby().is_none(), "and b did not");

        write_rows(&a, 12);
        write_rows(&plain, 4);
        assert!(fleet.sync_all(SYNC));

        assert_eq!(fleet.standby_pass(), 1, "only a's standby cycles");
        assert_eq!(fleet.standby_pass(), 1);

        let snap = fleet.snapshot();
        let stats = &snap.tenant("a").unwrap().stats;
        let tail = stats.standby;
        assert!(tail.tail_cycles >= 2, "cycles recorded: {tail:?}");
        assert!(tail.gets > 0, "the tail fetched objects");
        assert_eq!(tail.lag_objects, 0, "drained after the passes");
        assert_eq!(
            snap.tenant("b").unwrap().stats.standby.tail_cycles,
            0,
            "no standby gauges on a plain tenant"
        );
        assert_eq!(
            snap.totals.standby_tail_cycles,
            u128::from(tail.tail_cycles)
        );
        assert_eq!(snap.totals.standby_gets, u128::from(tail.gets));

        // Promote a's shadow: the result must be a bootable directory
        // holding everything the tenant had synced.
        let standby = a.standby().unwrap().clone();
        let report = standby.promote().unwrap();
        assert!(report.caught_up, "nothing was in flight: {report:?}");
        let db = Database::open(standby.shadow(), DbProfile::postgres_small()).unwrap();
        for i in 0..12u64 {
            assert_eq!(
                db.get(1, i).unwrap().unwrap(),
                format!("a-{i}").into_bytes()
            );
        }
        assert_eq!(fleet.standby_pass(), 0, "a fenced standby stops cycling");
        assert!(fleet.snapshot().totals.standby_promotions >= 1);
        fleet.shutdown();
    }
}
