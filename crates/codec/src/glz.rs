//! GLZ — a byte-oriented LZ77 compressor.
//!
//! The Ginja prototype compresses cloud objects with "ZLIB configured for
//! fastest operation" (§6) and the paper's cost model assumes a
//! compression rate of ~1.43 on WAL data (§7.2). GLZ is a from-scratch
//! replacement with a similar profile: a greedy hash-chain matcher with
//! raw (entropy-coding-free) token output, so it is fast and reaches
//! ratios in the same range on page-structured database data.
//!
//! ## Stream format
//!
//! ```text
//! varint original_len
//! token*  where token is
//!   varint v, v & 1 == 0 → literal run: (v >> 1) bytes follow verbatim
//!   varint v, v & 1 == 1 → match: length = (v >> 1) + MIN_MATCH,
//!                          followed by varint distance (1-based)
//! ```
//!
//! ```rust
//! use ginja_codec::glz;
//!
//! let data = b"abcabcabcabcabcabc".to_vec();
//! let packed = glz::compress(&data, glz::Level::Fast);
//! assert!(packed.len() < data.len());
//! assert_eq!(glz::decompress(&packed).unwrap(), data);
//! ```

use crate::varint;
use crate::CodecError;

/// Minimum match length worth encoding (shorter matches cost more than
/// literals under the token format).
pub const MIN_MATCH: usize = 4;

/// Maximum match length per token; longer repeats are split into
/// multiple tokens.
pub const MAX_MATCH: usize = 1 << 16;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Effort level of the matcher (number of hash-chain probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Few probes — the "ZLIB fastest" analogue the paper uses.
    #[default]
    Fast,
    /// Moderate probes.
    Default,
    /// Many probes — best ratio, slowest.
    Best,
}

impl Level {
    fn probes(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 32,
            Level::Best => 128,
        }
    }
}

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Chain index for the hash-chain matcher. `u32` halves the footprint of
/// the chain arrays and lets them live in a thread-local pool; `usize`
/// is the fallback for inputs too large to index with 32 bits.
trait ChainIdx: Copy {
    const NONE: Self;
    fn from_usize(v: usize) -> Self;
    fn to_usize(self) -> usize;
    fn is_none(self) -> bool;
}

impl ChainIdx for u32 {
    const NONE: u32 = u32::MAX;
    #[inline]
    fn from_usize(v: usize) -> u32 {
        v as u32
    }
    #[inline]
    fn to_usize(self) -> usize {
        self as usize
    }
    #[inline]
    fn is_none(self) -> bool {
        self == u32::MAX
    }
}

impl ChainIdx for usize {
    const NONE: usize = usize::MAX;
    #[inline]
    fn from_usize(v: usize) -> usize {
        v
    }
    #[inline]
    fn to_usize(self) -> usize {
        self
    }
    #[inline]
    fn is_none(self) -> bool {
        self == usize::MAX
    }
}

/// Reusable matcher state, kept per thread so steady-state sealing does
/// not allocate two chain arrays per object.
struct MatchState {
    head: Vec<u32>,
    prev: Vec<u32>,
}

thread_local! {
    static MATCH_STATE: std::cell::RefCell<MatchState> = const {
        std::cell::RefCell::new(MatchState {
            head: Vec::new(),
            prev: Vec::new(),
        })
    };
}

/// Compresses `data` and returns the GLZ stream.
///
/// Compression never fails; incompressible input grows by at most a few
/// bytes per 2³² of input (the literal-run headers).
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    compress_into(data, level, &mut out);
    out
}

/// Compresses `data` into `out` (cleared first), reusing both the output
/// allocation and a thread-local pool of matcher chain arrays. The
/// zero-copy sibling of [`compress`].
pub fn compress_into(data: &[u8], level: Level, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(data.len() / 2 + 16);
    varint::write_u64(out, data.len() as u64);
    if data.is_empty() {
        return;
    }

    if u32::try_from(data.len()).is_ok() {
        MATCH_STATE.with(|state| {
            let mut state = state.borrow_mut();
            let MatchState { head, prev } = &mut *state;
            // `head` must start clean — chains may only reach positions
            // inserted during *this* call. `prev` needs no clearing:
            // every entry is written before it becomes reachable through
            // `head`, so stale contents from earlier calls are dead.
            head.clear();
            head.resize(HASH_SIZE, u32::NONE);
            if prev.len() < data.len() {
                prev.resize(data.len(), u32::NONE);
            }
            compress_core::<u32>(data, level, head, prev, out);
        });
    } else {
        // Inputs ≥ 4 GiB (never produced by Ginja, whose objects are
        // chunked at 20 MiB) fall back to allocating full-width chains.
        let mut head = vec![usize::NONE; HASH_SIZE];
        let mut prev = vec![usize::NONE; data.len()];
        compress_core::<usize>(data, level, &mut head, &mut prev, out);
    }
}

fn compress_core<I: ChainIdx>(
    data: &[u8],
    level: Level,
    head: &mut [I],
    prev: &mut [I],
    out: &mut Vec<u8>,
) {
    let probes = level.probes();
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= data.len() {
        let h = hash4(data, pos);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let max_len = (data.len() - pos).min(MAX_MATCH);

        let mut remaining_probes = probes;
        while !candidate.is_none() && remaining_probes > 0 {
            let cand = candidate.to_usize();
            debug_assert!(cand < pos);
            let dist = pos - cand;
            // Quick reject: the byte just past the current best must match
            // for the candidate to beat it.
            if best_len == 0 || data[cand + best_len] == data[pos + best_len] {
                let len = match_length(data, cand, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == max_len {
                        break;
                    }
                }
            }
            candidate = prev[cand];
            remaining_probes -= 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals(out, &data[literal_start..pos]);
            let v = (((best_len - MIN_MATCH) as u64) << 1) | 1;
            varint::write_u64(out, v);
            varint::write_u64(out, best_dist as u64);

            // Index the skipped positions so later matches can refer into
            // this region (cap the work for very long matches).
            let end = pos + best_len;
            let index_until = end
                .min(pos + 64)
                .min(data.len().saturating_sub(MIN_MATCH - 1));
            while pos < index_until {
                let h = hash4(data, pos);
                prev[pos] = head[h];
                head[h] = I::from_usize(pos);
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            prev[pos] = head[h];
            head[h] = I::from_usize(pos);
            pos += 1;
        }
    }

    flush_literals(out, &data[literal_start..]);
}

/// Longest common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len` — compared a word at a time. Callers guarantee `a < b` and
/// `b + max_len <= data.len()`, so every 8-byte load below is in bounds.
#[inline]
fn match_length(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    debug_assert!(a < b && b + max_len <= data.len());
    let mut len = 0;
    while len + 8 <= max_len {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().unwrap());
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            // The first differing byte is the lowest set byte of the XOR
            // (little-endian loads keep byte order = memory order).
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

fn flush_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let mut rest = literals;
    while !rest.is_empty() {
        // Literal-run length is open-ended via varint; no need to split,
        // but keep runs under 2^32 for sanity.
        let take = rest.len().min(u32::MAX as usize);
        varint::write_u64(out, (take as u64) << 1);
        out.extend_from_slice(&rest[..take]);
        rest = &rest[take..];
    }
}

/// Default output-size limit for [`decompress`]: 1 GiB, far above any
/// Ginja object (they are chunked at 20 MiB before compression).
pub const DEFAULT_MAX_OUTPUT: usize = 1 << 30;

/// Decompresses a GLZ stream produced by [`compress`], with the default
/// output-size limit of [`DEFAULT_MAX_OUTPUT`].
///
/// # Errors
///
/// Returns [`CodecError::CorruptCompression`] if the stream is truncated,
/// contains an out-of-range match distance, declares an output larger
/// than the limit, or does not decode to the declared length.
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    decompress_with_limit(stream, DEFAULT_MAX_OUTPUT)
}

/// Decompresses with an explicit output-size limit, protecting callers
/// from decompression bombs and hostile length headers.
///
/// # Errors
///
/// Same as [`decompress`].
pub fn decompress_with_limit(stream: &[u8], max_output: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    decompress_into(stream, max_output, &mut out)?;
    Ok(out)
}

/// Decompresses into `out` (cleared first), reusing its allocation. The
/// zero-copy sibling of [`decompress_with_limit`], with the same checks.
///
/// # Errors
///
/// Same as [`decompress`]; on error `out` holds a partial prefix.
pub fn decompress_into(
    stream: &[u8],
    max_output: usize,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    let corrupt = |reason: &str| CodecError::CorruptCompression(reason.to_string());
    let (original_len, mut off) =
        varint::read_u64(stream).ok_or_else(|| corrupt("missing length header"))?;
    let original_len = usize::try_from(original_len).map_err(|_| corrupt("length overflow"))?;
    if original_len > max_output {
        return Err(corrupt("declared length exceeds output limit"));
    }
    // Never trust the header for a large up-front allocation: a corrupt
    // or hostile stream could claim terabytes. Grow organically past 1 MiB.
    out.clear();
    out.reserve(original_len.min(1 << 20));

    while off < stream.len() {
        let (v, n) = varint::read_u64(&stream[off..]).ok_or_else(|| corrupt("bad token"))?;
        off += n;
        if v & 1 == 0 {
            let len = usize::try_from(v >> 1).map_err(|_| corrupt("literal length overflow"))?;
            let end = off
                .checked_add(len)
                .ok_or_else(|| corrupt("literal overflow"))?;
            if end > stream.len() {
                return Err(corrupt("literal run past end of stream"));
            }
            out.extend_from_slice(&stream[off..end]);
            off = end;
        } else {
            let len = usize::try_from(v >> 1)
                .ok()
                .and_then(|l| l.checked_add(MIN_MATCH))
                .ok_or_else(|| corrupt("match length overflow"))?;
            let (dist, n) =
                varint::read_u64(&stream[off..]).ok_or_else(|| corrupt("missing distance"))?;
            off += n;
            let dist = usize::try_from(dist).map_err(|_| corrupt("distance overflow"))?;
            if dist == 0 || dist > out.len() {
                return Err(corrupt("match distance out of range"));
            }
            // Check the declared bound *before* copying: a hostile token
            // may claim a near-u64 length.
            if out.len() + len > original_len {
                return Err(corrupt("match exceeds declared length"));
            }
            let start = out.len() - dist;
            // Overlapping copies are the RLE case; copy byte-wise.
            for i in 0..len {
                let byte = out[start + i];
                out.push(byte);
            }
        }
        if out.len() > original_len {
            return Err(corrupt("output exceeds declared length"));
        }
    }

    if out.len() != original_len {
        return Err(CodecError::LengthMismatch {
            expected: original_len,
            actual: out.len(),
        });
    }
    Ok(())
}

/// Convenience: the ratio `original / compressed` for `data` at `level`.
pub fn ratio(data: &[u8], level: Level) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.len() as f64 / compress(data, level).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: Level) -> Vec<u8> {
        let packed = compress(data, level);
        decompress(&packed).unwrap()
    }

    #[test]
    fn empty_input() {
        for level in [Level::Fast, Level::Default, Level::Best] {
            assert_eq!(roundtrip(b"", level), b"");
        }
    }

    #[test]
    fn short_inputs_below_min_match() {
        for len in 0..MIN_MATCH {
            let data = vec![b'x'; len];
            assert_eq!(roundtrip(&data, Level::Fast), data);
        }
    }

    #[test]
    fn all_same_byte_compresses_hard() {
        let data = vec![0u8; 100_000];
        let packed = compress(&data, Level::Fast);
        assert!(packed.len() < 200, "got {}", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn repeated_pattern() {
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(b"hello world, ");
        }
        let packed = compress(&data, Level::Fast);
        assert!(packed.len() < data.len() / 10);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_random_grows_little() {
        // A simple xorshift stream is effectively incompressible.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let packed = compress(&data, Level::Fast);
        assert!(packed.len() <= data.len() + data.len() / 100 + 16);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn page_like_data_reaches_paper_ratio() {
        // Database-page-like content: structured records with some
        // entropy. The paper assumes CR ≈ 1.43; we only require > 1.3.
        let mut data = Vec::new();
        for i in 0u32..800 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(b"customer_name_field____");
            data.extend_from_slice(&(i * 7919).to_le_bytes());
            data.extend_from_slice(&[0u8; 12]);
        }
        let r = ratio(&data, Level::Fast);
        assert!(r > 1.3, "ratio {r}");
        assert_eq!(roundtrip(&data, Level::Fast), data);
    }

    #[test]
    fn levels_do_not_change_correctness() {
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.extend_from_slice(format!("row-{}-{}", i % 97, i % 13).as_bytes());
        }
        let fast = roundtrip(&data, Level::Fast);
        let def = roundtrip(&data, Level::Default);
        let best = roundtrip(&data, Level::Best);
        assert_eq!(fast, data);
        assert_eq!(def, data);
        assert_eq!(best, data);
        // Higher levels should not compress worse (tolerate tiny noise).
        let s_fast = compress(&data, Level::Fast).len();
        let s_best = compress(&data, Level::Best).len();
        assert!(s_best <= s_fast + 64, "best {s_best} vs fast {s_fast}");
    }

    #[test]
    fn overlapping_match_rle_case() {
        // "aaaa..." forces dist=1 overlapping copies.
        let data = vec![b'a'; 4096];
        assert_eq!(roundtrip(&data, Level::Fast), data);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let good = compress(b"hello hello hello hello", Level::Fast);
        // Truncations.
        for cut in 0..good.len() {
            let _ = decompress(&good[..cut]); // must not panic
        }
        // Bit flips.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            let _ = decompress(&bad); // must not panic
        }
    }

    #[test]
    fn hostile_match_length_does_not_allocate() {
        // Declared length within limits, but one match token claims an
        // enormous copy: must fail fast instead of materializing it.
        let mut stream = Vec::new();
        varint::write_u64(&mut stream, 100);
        varint::write_u64(&mut stream, (1u64) << 1);
        stream.push(b'a');
        varint::write_u64(&mut stream, ((u64::MAX >> 2) << 1) | 1);
        varint::write_u64(&mut stream, 1);
        assert!(matches!(
            decompress(&stream),
            Err(CodecError::CorruptCompression(_))
        ));
    }

    #[test]
    fn hostile_length_header_does_not_allocate() {
        // A stream claiming 2 TiB of output must fail fast, not abort.
        let mut stream = Vec::new();
        varint::write_u64(&mut stream, 1u64 << 41);
        assert!(matches!(
            decompress(&stream),
            Err(CodecError::CorruptCompression(_))
        ));
    }

    #[test]
    fn explicit_limit_enforced() {
        let data = vec![7u8; 4096];
        let packed = compress(&data, Level::Fast);
        assert!(matches!(
            decompress_with_limit(&packed, 1024),
            Err(CodecError::CorruptCompression(_))
        ));
        assert_eq!(decompress_with_limit(&packed, 4096).unwrap(), data);
    }

    #[test]
    fn distance_zero_rejected() {
        let mut stream = Vec::new();
        varint::write_u64(&mut stream, 10); // original_len
        varint::write_u64(&mut stream, 1); // match token len=MIN_MATCH
        varint::write_u64(&mut stream, 0); // distance 0: invalid
        assert!(matches!(
            decompress(&stream),
            Err(CodecError::CorruptCompression(_))
        ));
    }

    #[test]
    fn distance_beyond_output_rejected() {
        let mut stream = Vec::new();
        varint::write_u64(&mut stream, 10);
        varint::write_u64(&mut stream, (2u64) << 1); // literal run of 2
        stream.extend_from_slice(b"ab");
        varint::write_u64(&mut stream, 1); // match
        varint::write_u64(&mut stream, 5); // distance 5 > 2 bytes of output
        assert!(matches!(
            decompress(&stream),
            Err(CodecError::CorruptCompression(_))
        ));
    }

    #[test]
    fn declared_length_mismatch_rejected() {
        let mut stream = Vec::new();
        varint::write_u64(&mut stream, 100); // claims 100 bytes
        varint::write_u64(&mut stream, (3u64) << 1);
        stream.extend_from_slice(b"abc");
        assert!(matches!(
            decompress(&stream),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"abc".to_vec(),
            vec![b'a'; 4096],
            (0..50_000u32).flat_map(|i| i.to_le_bytes()).collect(),
            b"hello world, hello world, hello world".to_vec(),
        ];
        let mut packed = Vec::new();
        let mut unpacked = Vec::new();
        for level in [Level::Fast, Level::Default, Level::Best] {
            for data in &inputs {
                compress_into(data, level, &mut packed);
                assert_eq!(packed, compress(data, level));
                decompress_into(&packed, DEFAULT_MAX_OUTPUT, &mut unpacked).unwrap();
                assert_eq!(&unpacked, data);
            }
        }
    }

    #[test]
    fn pooled_state_survives_shrinking_inputs() {
        // The thread-local `prev` array is not cleared between calls; a
        // big input followed by smaller ones must still round-trip (the
        // stale entries are unreachable because `head` is reset).
        let big: Vec<u8> = (0..100_000u32)
            .flat_map(|i| (i % 251).to_le_bytes())
            .collect();
        assert_eq!(roundtrip(&big, Level::Fast), big);
        for len in [1usize, 5, 100, 4096, 65_537] {
            let data: Vec<u8> = (0..len).map(|i| (i % 7) as u8).collect();
            assert_eq!(roundtrip(&data, Level::Fast), data, "len {len}");
        }
    }

    #[test]
    fn match_length_word_wise_agrees_with_bytewise() {
        let mut data: Vec<u8> = (0..600usize).map(|i| (i % 13) as u8).collect();
        // Plant two regions equal for a prefix of every length 0..40.
        for prefix in 0..40usize {
            data.truncate(600);
            let a = 100;
            let b = 300;
            for i in 0..prefix {
                data[b + i] = data[a + i];
            }
            if b + prefix < data.len() {
                data[b + prefix] = data[a + prefix].wrapping_add(1);
            }
            let max_len = (data.len() - b).min(MAX_MATCH);
            let naive = (0..max_len)
                .take_while(|&i| data[a + i] == data[b + i])
                .count();
            assert_eq!(match_length(&data, a, b, max_len), naive, "prefix {prefix}");
            // And with a cap below the true match length.
            let cap = prefix / 2 + 1;
            let naive_capped = (0..cap).take_while(|&i| data[a + i] == data[b + i]).count();
            assert_eq!(match_length(&data, a, b, cap), naive_capped);
        }
    }

    #[test]
    fn long_match_exceeding_index_cap() {
        // A single repeat longer than the 64-byte indexing cap inside a match.
        let mut data = vec![0u8; 10_000];
        data.extend_from_slice(b"tail-marker");
        data.extend_from_slice(&vec![0u8; 10_000]);
        assert_eq!(roundtrip(&data, Level::Default), data);
    }
}
