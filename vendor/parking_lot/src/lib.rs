//! Offline stand-in for the `parking_lot` crate, implementing the subset
//! of its API this workspace uses on top of `std::sync`.
//!
//! Semantics match `parking_lot` where the workspace relies on them:
//! guards are not poisoned (a panicked holder releases the lock and
//! later acquisitions see the data as-is), `Condvar` works with this
//! module's `MutexGuard`, and all types are `Send`/`Sync` under the same
//! bounds as the real crate.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard out while
    // waiting and put the re-acquired one back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Whether a condition-variable wait returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timing out rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (reacquired, result) =
            self.inner.wait_timeout(std_guard, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
