//! Fleet integration: eight concurrent TPC-C tenants over one shared
//! bucket, one fair-share executor and one fleet budget — through a
//! mid-run detach and a full cloud disaster.
//!
//! What this proves, end to end:
//!
//! * a width-6 executor carries eight tenants' upload traffic without
//!   ever exceeding its concurrency bound;
//! * budget arbitration never raises any tenant's Safety bound;
//! * detaching (and purging) one tenant mid-run leaves every other
//!   tenant's prefix scrub-clean;
//! * after a disaster that freezes the bucket mid-flight, every tenant
//!   recovers a contiguous prefix of its acknowledged updates, losing
//!   at most its own S.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{FaultPlan, FaultStore, MemStore, ObjectStore, PrefixStore, RetryConfig};
use ginja::core::{recover_into, GinjaConfig};
use ginja::cost::BudgetConfig;
use ginja::db::{Database, DbProfile};
use ginja::fleet::{Fleet, FleetConfig, TenantSpec};
use ginja::vfs::MemFs;
use ginja::workload::{probe_tpcc, Tpcc, TpccScale};

const TENANTS: usize = 8;
const WIDTH: usize = 6;
const SAFETY: usize = 32;
/// Marker updates per tenant in the pre-disaster tail. More than S, so
/// the loss measurement covers the whole possible loss window.
const MARKERS: u64 = 48;
/// Table the markers land in (clear of the TPC-C tables 1..=9).
const MARKER_TABLE: u32 = 77;

fn tenant_config() -> GinjaConfig {
    GinjaConfig::builder()
        .batch(4)
        .safety(SAFETY)
        .batch_timeout(Duration::from_millis(200))
        // One uploader keeps each tenant's cloud WAL prefix-sealed, so
        // the post-disaster loss check is exact (see crashpoint.rs).
        .uploaders(1)
        .build()
        .unwrap()
}

#[test]
fn fleet_of_eight_tpcc_tenants_survives_detach_and_disaster() {
    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let fleet = Fleet::new(
        Arc::new(FaultStore::new(mem.clone(), plan.clone())),
        FleetConfig {
            width: WIDTH,
            // The disaster must surface instantly, not sit in backoff.
            retry: RetryConfig::disabled(),
            budget: Some(BudgetConfig {
                month: Duration::from_secs(60),
                ..BudgetConfig::new(TENANTS as f64)
            }),
            ..FleetConfig::default()
        },
    );
    let config = tenant_config();
    for i in 0..TENANTS {
        fleet
            .attach(
                TenantSpec::new(format!("t{i}"), DbProfile::postgres_small(), config.clone())
                    .weight(1.0 + (i % 2) as f64),
            )
            .unwrap();
    }

    // -- Phase A: concurrent TPC-C, one tenant detached mid-run. -----
    let workers: Vec<_> = fleet
        .tenants()
        .into_iter()
        .enumerate()
        .map(|(i, tenant)| {
            std::thread::spawn(move || {
                let mut tpcc = Tpcc::new(1, 0xF1EE7 ^ i as u64, TpccScale::tiny());
                tpcc.create_schema(tenant.db()).unwrap();
                tpcc.load(tenant.db()).unwrap();
                // The marker table's DDL checkpoints its catalog to the
                // cloud; creating it here (ahead of the Phase A sync
                // barrier) keeps the Phase B loss tail pure WAL puts —
                // recovery does not replay DDL that never landed.
                tenant.db().create_table(MARKER_TABLE, 64).unwrap();
                // The doomed tenant quits early so it can be detached
                // while its neighbors are still under load.
                let txns = if i == TENANTS - 1 { 4 } else { 12 };
                for _ in 0..txns {
                    tpcc.run_transaction(tenant.db()).unwrap();
                }
            })
        })
        .collect();
    let (doomed, live) = workers.split_last().unwrap();
    while !doomed.is_finished() {
        fleet.governor_pass();
        std::thread::sleep(Duration::from_millis(2));
    }
    let victim = format!("t{}", TENANTS - 1);
    assert!(
        fleet
            .detach(&victim, true, Duration::from_secs(30))
            .unwrap(),
        "detached tenant must drain its in-flight waves"
    );
    assert!(
        mem.list(&format!("tenants/{victim}/")).unwrap().is_empty(),
        "purge must empty the detached tenant's prefix"
    );
    while live.iter().any(|w| !w.is_finished()) {
        fleet.governor_pass();
        std::thread::sleep(Duration::from_millis(2));
    }
    for worker in workers {
        worker.join().unwrap();
    }
    assert!(
        fleet.sync_all(Duration::from_secs(30)),
        "every surviving pipeline must drain"
    );

    // The purge ran while neighbors were uploading: every surviving
    // tenant's prefix must still scrub perfectly clean.
    for _ in 0..TENANTS - 1 {
        let (name, report) = fleet.scrub_next().unwrap().expect("tenants attached");
        assert!(
            report.is_clean(),
            "tenant {name} dirty after neighbor purge: {:?}",
            report.anomalies
        );
        assert!(report.objects_listed > 0, "tenant {name} prefix empty");
    }

    // Shared-infrastructure invariants, pre-disaster.
    let snap = fleet.snapshot();
    assert_eq!(snap.tenants.len(), TENANTS - 1);
    assert!(
        snap.max_in_flight <= WIDTH,
        "executor exceeded its width: {} > {WIDTH}",
        snap.max_in_flight
    );
    assert!(snap.totals.healthy(), "fleet unhealthy: {:?}", snap.totals);
    assert!(
        !snap.over_budget,
        "aggregate projected spend {} µ$ exceeds the fleet budget {} µ$",
        snap.projected_microusd, snap.budget_microusd
    );
    for tenant in fleet.tenants() {
        assert_eq!(
            tenant.ginja().config().safety,
            SAFETY,
            "arbitration must never touch tenant {}'s S",
            tenant.name()
        );
        assert!(
            tenant.ginja().current_knobs().batch <= SAFETY,
            "tenant {}'s B escaped [1, S]",
            tenant.name()
        );
    }

    // -- Phase B: a marker tail, then the disaster. ------------------
    // Each tenant acknowledges MARKERS sequential updates; the bucket
    // freezes immediately after, with the un-uploaded tail (≤ S by the
    // commit-queue guarantee) still in flight.
    let markers: Vec<_> = fleet
        .tenants()
        .into_iter()
        .map(|tenant| {
            std::thread::spawn(move || {
                for seq in 0..MARKERS {
                    tenant
                        .db()
                        .put(
                            MARKER_TABLE,
                            seq,
                            format!("{}-m{seq}", tenant.name()).into_bytes(),
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for worker in markers {
        worker.join().unwrap();
    }
    plan.outage(); // the disaster: every later cloud op fails

    // Every tenant recovers from its own prefix of the frozen bucket:
    // a contiguous marker prefix, missing at most S updates.
    for tenant in fleet.tenants() {
        let view = PrefixStore::new(
            mem.clone() as Arc<dyn ObjectStore>,
            tenant.prefix().to_string(),
        );
        let target = Arc::new(MemFs::new());
        recover_into(target.as_ref(), &view, &config).unwrap();
        let db = Database::open(target, DbProfile::postgres_small()).unwrap();

        let rows: BTreeMap<u64, Vec<u8>> =
            db.dump_table(MARKER_TABLE).unwrap().into_iter().collect();
        let recovered = rows.len() as u64;
        let lost = MARKERS - recovered;
        assert!(
            lost <= SAFETY as u64,
            "tenant {} lost {lost} acked updates with S = {SAFETY}",
            tenant.name()
        );
        for seq in 0..recovered {
            assert_eq!(
                rows.get(&seq).map(Vec::as_slice),
                Some(format!("{}-m{seq}", tenant.name()).as_bytes()),
                "tenant {}'s recovery is not a contiguous prefix",
                tenant.name()
            );
        }
        let probe = probe_tpcc(&db).unwrap();
        assert!(
            probe.is_consistent(),
            "tenant {} recovered inconsistent TPC-C state: {probe:?}",
            tenant.name()
        );
    }
    fleet.shutdown();
}
