//! Baseline comparison (paper §9): Ginja vs. PostgreSQL Continuous
//! Archiving.
//!
//! "The archiver process only operates over completed WAL segments, and
//! thus it does not provide any fine-grained control over the RPO." Both
//! mechanisms protect the same database through the same interception
//! point; after the same disaster, this harness reports how many
//! committed updates each one loses.

use std::sync::Arc;
use std::time::Duration;

use ginja_bench::table::Table;
use ginja_bench::timescale::{run_wall_duration, sim_minutes, time_scale};
use ginja_cloud::{LatencyModel, LatencyStore, MemStore, ObjectStore};
use ginja_core::archiver::{restore_archive, SegmentArchiver};
use ginja_core::{recover_into, Ginja, GinjaConfig, GinjaStatsSnapshot};
use ginja_db::{Database, DbProfile};
use ginja_vfs::{FileSystem, InterceptFs, IoProcessor, MemFs, PostgresProcessor};

fn profile() -> DbProfile {
    // 1 MB segments: realistic ratio between segment size and the
    // experiment's update volume.
    let mut p = DbProfile::postgres_default();
    p.wal_segment_size = 1024 * 1024;
    p
}

fn config(batch: usize, safety: usize) -> GinjaConfig {
    let scale = time_scale();
    GinjaConfig::builder()
        .batch(batch)
        .safety(safety)
        .batch_timeout(Duration::from_secs_f64(5.0 * scale))
        .safety_timeout(Duration::from_secs_f64(30.0 * scale))
        .build()
        .expect("valid config")
}

/// Runs `updates` commits of ~120-byte rows against a protected
/// database, disasters it without warning, recovers, and returns the
/// number of lost updates.
fn run_scenario(mechanism: &str, updates: u64) -> (u64, u64) {
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile()).unwrap();
    db.create_table(1, 160).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let cloud = Arc::new(LatencyStore::new(
        MemStore::new(),
        LatencyModel::s3_wan().scaled(time_scale()),
    ));
    let _ = mem; // (kept for symmetry; the latency store owns its own MemStore)
    let cfg = config(10, 200);

    let mut archiver_handle: Option<Arc<SegmentArchiver>> = None;
    let (processor, ginja): (Arc<dyn IoProcessor>, Option<Ginja>) = match mechanism {
        "ginja" => {
            let g = Ginja::boot(
                local.clone(),
                cloud.clone(),
                Arc::new(PostgresProcessor::new()),
                cfg.clone(),
            )
            .unwrap();
            (Arc::new(g.clone()), Some(g))
        }
        _ => {
            let archiver = Arc::new(
                SegmentArchiver::start(
                    local.clone(),
                    cloud.clone(),
                    Arc::new(PostgresProcessor::new()),
                    &cfg,
                )
                .unwrap(),
            );
            archiver_handle = Some(archiver.clone());
            (archiver, None)
        }
    };

    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local.clone(), processor));
    let db = Database::open(fs, profile()).unwrap();
    for i in 0..updates {
        db.put(1, i, format!("update-{i:0100}").into_bytes())
            .unwrap();
    }
    if let Some(archiver) = &archiver_handle {
        // The baseline's counters surface through the same snapshot the
        // middleware reports from.
        let mut snap = GinjaStatsSnapshot::default();
        snap.merge_archiver(&archiver.stats());
        println!(
            "  [archiver] {} segment(s) archived, {} update(s) exposed in the unfinished segment",
            snap.segments_archived, snap.archiver_exposed_updates
        );
    }
    // Disaster strikes mid-flight: no sync, no shutdown courtesy. (The
    // middleware threads are stopped afterwards only so the process can
    // reuse the port^Wcore; the cloud keeps exactly what had landed.)
    let snapshot = {
        let names = cloud.inner().list("").unwrap();
        let copy = MemStore::new();
        for name in names {
            copy.put(&name, &cloud.inner().get(&name).unwrap()).unwrap();
        }
        copy
    };
    if let Some(g) = &ginja {
        g.shutdown();
    }
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    let recovered: u64 = if ginja.is_some() {
        recover_into(rebuilt.as_ref(), &snapshot, &cfg).unwrap();
        let db = Database::open(rebuilt, profile()).unwrap();
        (0..updates)
            .take_while(|i| db.get(1, *i).unwrap().is_some())
            .count() as u64
    } else {
        restore_archive(rebuilt.as_ref(), &snapshot, &cfg).unwrap();
        let db = Database::open(rebuilt, profile()).unwrap();
        (0..updates)
            .take_while(|i| db.get(1, *i).unwrap().is_some())
            .count() as u64
    };
    (recovered, updates - recovered)
}

fn main() {
    println!(
        "time scale: {} | simulated minutes per run: {}",
        time_scale(),
        sim_minutes()
    );
    println!("== Baseline: Ginja (B=10, S=200) vs. Continuous Archiving (1 MB segments) ==");
    println!("(same workload, same surprise disaster, same cloud)\n");
    let _ = run_wall_duration(); // documented knob; this bench is volume-driven

    // Enough volume that the archiver completes some segments: the
    // point is that it still loses the entire unfinished one.
    let updates = 12_000u64;
    let mut t = Table::new(&["mechanism", "committed", "recovered", "LOST"]);
    let mut results = Vec::new();
    for mechanism in ["ginja", "archiver"] {
        let (recovered, lost) = run_scenario(mechanism, updates);
        t.row(&[
            mechanism.to_string(),
            updates.to_string(),
            recovered.to_string(),
            lost.to_string(),
        ]);
        results.push(lost);
    }
    println!();
    t.print();
    println!(
        "\nshape check: Ginja bounds loss by S=200 (lost {}), the archiver loses the whole \
         unfinished segment (lost {}) — \"no fine-grained control over the RPO\" (§9)",
        results[0], results[1]
    );
    assert!(results[0] <= 200, "ginja lost {} > S", results[0]);
    assert!(
        results[1] > results[0],
        "the archiver must lose more than Ginja ({} vs {})",
        results[1],
        results[0]
    );
}
