#!/usr/bin/env bash
# CI gate: formatting, lints, tests. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
# The DR-sentinel acceptance scenario, run on its own so a chaos
# regression is unmissable in the log.
cargo test -q --test sentinel_chaos -- --nocapture
# A bounded CrashFs crash-point sweep over both DBMS profiles: every
# third mutating local I/O becomes a kill point (clean + torn), and
# each survivor must recover locally, from the cloud, and via reboot.
cargo run -q --release --bin ginja-cli -- crashtest --profile postgres --ops 6 --stride 3
cargo run -q --release --bin ginja-cli -- crashtest --profile mysql --ops 6 --stride 3 --seed 7
# Bench smoke (small time scale): the codec hot-path micro-bench plus
# the fan-out ablation, which asserts the >=2x recovery cut at width 8
# and a warm, allocation-free bufpool, and archives its headline
# numbers (objects/s sealed, recovery wall-clock at fan-out 1/4/8).
GINJA_BENCH_SCALE=0.02 cargo bench -q -p ginja-bench --bench codec_micro
# Output paths are absolute: cargo runs bench binaries with the
# package directory (crates/bench) as cwd, not the repo root.
GINJA_BENCH_SCALE=0.02 BENCH_PR4_OUT="$PWD/BENCH_PR4.json" \
    cargo bench -q -p ginja-bench --bench ablation_fanout
test -s BENCH_PR4.json
# Budget-governor smoke: fixed B vs. governed under bursty TPC-C — the
# governed run must land under its budget without touching the safety
# bound, and its bucket must still recover (DESIGN.md §13).
GINJA_BENCH_SCALE=0.02 BENCH_PR6_OUT="$PWD/BENCH_PR6.json" \
    cargo bench -q -p ginja-bench --bench ablation_budget
test -s BENCH_PR6.json
# The offline planning view of the same policy must run clean.
cargo run -q --release --bin ginja-cli -- budget 1.0 10 1000 --batch 10 --safety 2000 > /dev/null
# Fleet smoke: three TPC-C tenants over one bucket / executor / budget —
# must attach, arbitrate, scrub clean, and recover every tenant with
# zero acked loss and spend under budget (DESIGN.md §14).
cargo run -q --release --bin ginja-cli -- fleet --tenants 3 --txns 30 | grep -q "fleet OK"
# Fair-share ablation: eight tenants on one shared width-8 executor vs.
# eight width-1 pools — worst-tenant p99 must stay within 2x best.
GINJA_BENCH_SCALE=0.02 BENCH_PR7_OUT="$PWD/BENCH_PR7.json" \
    cargo bench -q -p ginja-bench --bench ablation_fleet
test -s BENCH_PR7.json
# Outage-endurance smoke (DESIGN.md §15): the chaos suite (bounded RAM
# + spill, loud shedding, crash-mid-outage reboot, fleet neighbor
# isolation), the operator drill, and the spill-vs-RAM ablation.
cargo test -q --test outage
cargo run -q --release --bin ginja-cli -- outage --rows 120 --ring 4 | grep -q "outage drill PASSED"
GINJA_BENCH_SCALE=0.02 BENCH_PR8_OUT="$PWD/BENCH_PR8.json" \
    cargo bench -q -p ginja-bench --bench ablation_outage
test -s BENCH_PR8.json
# Ingest fast-path smoke (DESIGN.md §16): the N-producer commit-queue
# property test (FIFO acks, never >S unacked, no lost/duplicated
# writes), then the old-vs-new queue ablation, which asserts the
# width-16 win (>=1.5x throughput or >=2x lower p99 put latency) with
# single-producer blocked p99 no worse.
cargo test -q -p ginja-core --test queue_prop
GINJA_BENCH_SCALE=0.02 BENCH_PR9_OUT="$PWD/BENCH_PR9.json" \
    cargo bench -q -p ginja-bench --bench ablation_ingest
test -s BENCH_PR9.json
# Warm-standby smoke (DESIGN.md §17): the chaos acceptance suite
# (outage-riding tail, mid-outage promotion bounded by S, promoted
# shadow byte-equal to cold recovery), the operator drill, and the
# cold-vs-promotion ablation, which asserts the >=3x RTO cut at the
# largest database size.
cargo test -q --test standby
cargo run -q --release --bin ginja-cli -- standby --rows 80 --waves 4 --promote | grep -q "standby drill PASSED"
GINJA_BENCH_SCALE=0.02 BENCH_PR10_OUT="$PWD/BENCH_PR10.json" \
    cargo bench -q -p ginja-bench --bench ablation_standby
test -s BENCH_PR10.json
