//! HMAC-SHA1 (RFC 2104), the MAC Ginja stores with every cloud object.
//!
//! §5.4 of the paper: "Our system also implements some basic integrity
//! protection by storing a MAC of each object together with it. If
//! encryption is enabled, the provided password is also used to generate
//! the MAC key, otherwise, a default string (a configuration parameter)
//! is used to generate this key."

use crate::sha1::{Sha1, BLOCK_LEN, DIGEST_LEN};

/// Length of an HMAC-SHA1 tag in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA1 computation.
///
/// ```rust
/// use ginja_codec::hmac::HmacSha1;
///
/// let mut mac = HmacSha1::new(b"key");
/// mac.update(b"The quick brown fox ");
/// mac.update(b"jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha1 {
    inner: Sha1,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha1 {
    /// Creates an HMAC context keyed with `key` (any length; keys longer
    /// than the SHA-1 block size are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha1::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha1::new();
        inner.update(&ipad);
        HmacSha1 {
            inner,
            outer_key: opad,
        }
    }

    /// Feeds message bytes into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the context and returns the 20-byte tag.
    pub fn finalize(self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA1 of `data` under `key`.
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = HmacSha1::new(key);
    mac.update(data);
    mac.finalize()
}

/// Constant-time tag comparison (avoids leaking the mismatch position).
pub fn verify_tag(expected: &[u8; TAG_LEN], actual: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 HMAC-SHA1 test cases.
    #[test]
    fn rfc2202_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case_2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_case_4() {
        let key: Vec<u8> = (1..=25u8).collect();
        let data = [0xcdu8; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da"
        );
    }

    #[test]
    fn rfc2202_case_6_long_key() {
        let key = [0xaau8; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn rfc2202_case_7_long_key_long_data() {
        let key = [0xaau8; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data"
            )),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key = b"some key material";
        let data = b"0123456789abcdef0123456789abcdef";
        let one_shot = hmac_sha1(key, data);
        let mut mac = HmacSha1::new(key);
        for chunk in data.chunks(5) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), one_shot);
    }

    #[test]
    fn verify_tag_detects_difference() {
        let a = hmac_sha1(b"k", b"m");
        let mut b = a;
        assert!(verify_tag(&a, &b));
        b[19] ^= 1;
        assert!(!verify_tag(&a, &b));
        b[19] ^= 1;
        b[0] ^= 0x80;
        assert!(!verify_tag(&a, &b));
    }

    #[test]
    fn different_keys_produce_different_tags() {
        assert_ne!(hmac_sha1(b"key1", b"msg"), hmac_sha1(b"key2", b"msg"));
    }
}
