//! Deterministic stress search for recovery divergences (dev tool).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use ginja_cloud::{LatencyModel, LatencyStore, MemStore};
use ginja_core::{recover_into, Ginja, GinjaConfig};
use ginja_db::{Database, DbProfile, ProfileKind};
use ginja_vfs::{DbmsProcessor, FileSystem, InterceptFs, MemFs, MySqlProcessor, PostgresProcessor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Step {
    Put(u64, u8),
    Delete(u64),
    Checkpoint,
}

fn run_case(kind: ProfileKind, steps: &[Step], batch: usize) -> Result<(), String> {
    let profile = match kind {
        ProfileKind::Postgres => DbProfile::postgres_small(),
        ProfileKind::MySql => DbProfile::mysql_small(),
    };
    let processor: Arc<dyn DbmsProcessor> = match kind {
        ProfileKind::Postgres => Arc::new(PostgresProcessor::new()),
        ProfileKind::MySql => Arc::new(MySqlProcessor::new()),
    };
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);

    let config = GinjaConfig::builder()
        .batch(batch)
        .safety(batch * 10)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(30))
        .build()
        .unwrap();
    let mem = Arc::new(MemStore::new());
    // Jittered upload latency makes out-of-order completions (and the
    // GC-vs-straggler race) common.
    let mut latency = LatencyModel::instant();
    latency.put_base = Duration::from_millis(2);
    latency.jitter = 0.9;
    let cloud = Arc::new(LatencyStore::with_seed(
        mem.clone(),
        latency,
        steps.len() as u64,
    ));
    let ginja = Ginja::boot(local.clone(), cloud, processor, config.clone()).unwrap();
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, profile.clone()).unwrap();

    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for (version, step) in steps.iter().enumerate() {
        match step {
            Step::Put(key, tag) => {
                let value = format!("k{key}-t{tag}-v{version}").into_bytes();
                db.put(1, *key, value.clone()).unwrap();
                model.insert(*key, value);
            }
            Step::Delete(key) => {
                db.delete(1, *key).unwrap();
                model.remove(key);
            }
            Step::Checkpoint => db.checkpoint().unwrap(),
        }
    }
    if !ginja.sync(Duration::from_secs(30)) {
        return Err("sync timeout".into());
    }
    ginja.shutdown();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).map_err(|e| format!("recover: {e}"))?;
    let db = Database::open(rebuilt, profile).map_err(|e| format!("open: {e}"))?;
    let rows: BTreeMap<u64, Vec<u8>> = db.dump_table(1).unwrap().into_iter().collect();
    if rows != model {
        let missing: Vec<&u64> = model.keys().filter(|k| !rows.contains_key(k)).collect();
        let stale: Vec<&u64> = model
            .iter()
            .filter(|(k, v)| rows.get(k).is_some_and(|r| r != *v))
            .map(|(k, _)| k)
            .collect();
        return Err(format!("divergence: missing {missing:?} stale {stale:?}"));
    }
    Ok(())
}

fn main() {
    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        for iter in 0..150u64 {
            let mut rng = StdRng::seed_from_u64(iter);
            let n = rng.gen_range(1..80);
            let steps: Vec<Step> = (0..n)
                .map(|_| match rng.gen_range(0..11u32) {
                    0..=7 => Step::Put(rng.gen_range(0..60), rng.gen()),
                    8..=9 => Step::Delete(rng.gen_range(0..60)),
                    _ => Step::Checkpoint,
                })
                .collect();
            let batch = rng.gen_range(1..8);
            if let Err(e) = run_case(kind, &steps, batch) {
                println!("FAIL kind={kind:?} iter={iter} batch={batch} n={n}: {e}");
                println!("steps: {steps:?}");
                return;
            }
        }
        println!("{kind:?}: 150 iterations clean");
    }
}
