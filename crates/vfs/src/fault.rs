//! Local-storage fault injection — the disk-side mirror of the cloud
//! crate's `FaultPlan`/`FaultStore` pair.
//!
//! A [`VfsFaultPlan`] schedules failures; a [`FaultFs`] wrapper
//! consults it before forwarding each call to the inner
//! [`FileSystem`]. Two fault families:
//!
//! * **Errors the caller sees**: injected `EIO` ([`FsFaultKind::Io`]),
//!   `ENOSPC` ([`FsFaultKind::NoSpace`]), short writes that persist
//!   only a sector prefix ([`FsFaultKind::ShortWrite`]), and failed
//!   fsyncs whose dirty data is silently dropped
//!   ([`FsFaultKind::FsyncLoss`] — the ext4 behavior the fsync-failure
//!   studies documented).
//! * **Process death**: [`VfsFaultPlan::halt_after_op`] and
//!   [`VfsFaultPlan::halt_during_op`] kill the "process" at a chosen
//!   mutating-op index — every later call fails without side effects,
//!   and the mid-write variant leaves the interrupted write volatile so
//!   a [`crate::JournaledFs::power_cut_torn`] decides which of its
//!   sectors hit the platter. The crash-point explorer enumerates these
//!   indices exhaustively.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::journal::DEFAULT_SECTOR_SIZE;
use crate::{FileSystem, FsError, JournaledFs};

/// The operation kinds a local fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsOpKind {
    /// File creation.
    Create,
    /// Data writes (sync and non-sync alike).
    Write,
    /// Reads (`read`, `read_all`, `len`).
    Read,
    /// Truncations.
    Truncate,
    /// Deletions.
    Delete,
    /// Renames.
    Rename,
    /// Listings.
    List,
}

impl FsOpKind {
    fn is_mutating(self) -> bool {
        !matches!(self, FsOpKind::Read | FsOpKind::List)
    }
}

/// What an injected local fault does to the intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFaultKind {
    /// The operation fails with [`FsError::Io`]; nothing is applied.
    Io,
    /// The operation fails with [`FsError::NoSpace`]; nothing is
    /// applied.
    NoSpace,
    /// A write persists only its first sector before failing with
    /// [`FsError::Io`] (torn at the plan's sector size). Non-write
    /// operations degrade to a plain [`FsFaultKind::Io`].
    ShortWrite,
    /// The write's data reaches the page cache but its fsync fails —
    /// and, as on ext4, the now-clean dirty pages are dropped rather
    /// than retried: the data is *gone* even though the file system
    /// keeps running. Requires [`FaultFs::with_journal`]; without a
    /// journal the data merely stays volatile in the inner fs.
    FsyncLoss,
}

#[derive(Debug)]
struct Rule {
    op: FsOpKind,
    name_contains: Option<String>,
    /// Failure budget; `usize::MAX` means forever.
    remaining: AtomicUsize,
    /// Chance in [0, 1] a matching op trips the rule; counted rules
    /// use 1.0.
    probability: f64,
    /// splitmix64 state for deterministic probabilistic draws.
    draw_state: AtomicU64,
    kind: FsFaultKind,
}

impl Rule {
    fn counted(op: FsOpKind, name_contains: Option<String>, n: usize, kind: FsFaultKind) -> Self {
        Rule {
            op,
            name_contains,
            remaining: AtomicUsize::new(n),
            probability: 1.0,
            draw_state: AtomicU64::new(0),
            kind,
        }
    }

    /// Deterministic uniform draw in [0, 1).
    fn draw(&self) -> f64 {
        let state = self
            .draw_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::SeqCst)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What the plan decided for one intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Proceed,
    /// The process is dead: fail with no side effects.
    Halted,
    /// The process dies *during* this write: leave its bytes volatile,
    /// then fail.
    TearAndHalt,
    Inject(FsFaultKind),
}

/// A programmable schedule of local-storage failures shared with a
/// [`FaultFs`] — the same API shape as the cloud `FaultPlan`, plus the
/// crash-point halt controls.
///
/// ```rust
/// use std::sync::Arc;
/// use ginja_vfs::{FaultFs, FileSystem, FsFaultKind, FsOpKind, MemFs, VfsFaultPlan};
///
/// let plan = Arc::new(VfsFaultPlan::new());
/// let fs = FaultFs::new(Arc::new(MemFs::new()), plan.clone());
/// plan.fail_next(FsOpKind::Write, 1, FsFaultKind::NoSpace);
/// assert!(fs.write("f", 0, b"x", true).is_err());
/// assert!(fs.write("f", 0, b"x", true).is_ok());
/// ```
#[derive(Debug)]
pub struct VfsFaultPlan {
    rules: Mutex<Vec<Rule>>,
    /// Mutating-op indices strictly greater than this fail (process
    /// died right after the op at this index). `u64::MAX` disarms.
    halt_after: AtomicU64,
    /// The mutating op at exactly this index is torn-and-halted.
    halt_during: AtomicU64,
    /// The mutating op at exactly this index trips `fault_at_kind`
    /// (one-shot). `u64::MAX` disarms.
    fault_at: AtomicU64,
    fault_at_kind: Mutex<Option<FsFaultKind>>,
    ops_seen: AtomicU64,
    injected: AtomicUsize,
    sector_size: usize,
}

impl Default for VfsFaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl VfsFaultPlan {
    /// A plan with no scheduled faults.
    pub fn new() -> Self {
        Self::with_sector_size(DEFAULT_SECTOR_SIZE)
    }

    /// A plan whose short writes keep `sector_size` bytes.
    ///
    /// # Panics
    ///
    /// If `sector_size` is zero.
    pub fn with_sector_size(sector_size: usize) -> Self {
        assert!(sector_size > 0, "sector size must be positive");
        VfsFaultPlan {
            rules: Mutex::new(Vec::new()),
            halt_after: AtomicU64::new(u64::MAX),
            halt_during: AtomicU64::new(u64::MAX),
            fault_at: AtomicU64::new(u64::MAX),
            fault_at_kind: Mutex::new(None),
            ops_seen: AtomicU64::new(0),
            injected: AtomicUsize::new(0),
            sector_size,
        }
    }

    /// Fails the next `n` operations of kind `op` (any path) with
    /// `kind`.
    pub fn fail_next(&self, op: FsOpKind, n: usize, kind: FsFaultKind) {
        self.rules.lock().push(Rule::counted(op, None, n, kind));
    }

    /// Fails the next `n` operations of kind `op` whose path contains
    /// `fragment`.
    pub fn fail_matching(
        &self,
        op: FsOpKind,
        fragment: impl Into<String>,
        n: usize,
        kind: FsFaultKind,
    ) {
        self.rules
            .lock()
            .push(Rule::counted(op, Some(fragment.into()), n, kind));
    }

    /// Fails each operation of kind `op` independently with probability
    /// `p`, forever (until [`VfsFaultPlan::clear`]). Deterministic per
    /// `seed`.
    pub fn fail_randomly(&self, op: FsOpKind, p: f64, seed: u64, kind: FsFaultKind) {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability must be in [0, 1]"
        );
        self.rules.lock().push(Rule {
            op,
            name_contains: None,
            remaining: AtomicUsize::new(usize::MAX),
            probability: p,
            draw_state: AtomicU64::new(seed),
            kind,
        });
    }

    /// Removes all scheduled rules (halt state is unaffected).
    pub fn clear(&self) {
        self.rules.lock().clear();
    }

    /// Fails the *single* mutating op with index `n` (0-based, counted
    /// from plan creation) with `kind`, then disarms — the crash-point
    /// explorer's "an I/O error struck exactly here, and the process
    /// survived it". Unlike [`VfsFaultPlan::fail_next`], which fires on
    /// the next matching op whenever it happens, this addresses one
    /// fixed point in the op stream, so a seeded replay hits the same
    /// operation every time.
    pub fn fail_at_op(&self, n: u64, kind: FsFaultKind) {
        *self.fault_at_kind.lock() = Some(kind);
        self.fault_at.store(n, Ordering::SeqCst);
    }

    /// Kills the process right after the mutating op with index `n`
    /// (0-based, counted from plan creation): every later mutating op
    /// and every read fails with no side effects — the crash-point
    /// explorer's "power was cut between two I/Os".
    pub fn halt_after_op(&self, n: u64) {
        self.halt_after.store(n, Ordering::SeqCst);
    }

    /// Kills the process *during* the mutating op with index `n`: that
    /// write's bytes reach the page cache (never the platter — pair
    /// with [`crate::JournaledFs::power_cut_torn`]), everything after
    /// fails — "power was cut mid-write".
    pub fn halt_during_op(&self, n: u64) {
        self.halt_during.store(n, Ordering::SeqCst);
    }

    /// Revives the process: disarms both halt modes.
    pub fn revive(&self) {
        self.halt_after.store(u64::MAX, Ordering::SeqCst);
        self.halt_during.store(u64::MAX, Ordering::SeqCst);
    }

    /// Whether a halt has tripped (the process is "dead").
    pub fn halted(&self) -> bool {
        let seen = self.ops_seen.load(Ordering::SeqCst);
        seen > self.halt_after.load(Ordering::SeqCst)
            || seen > self.halt_during.load(Ordering::SeqCst)
    }

    /// Mutating operations observed so far — the crash-point space.
    pub fn mutating_ops_seen(&self) -> u64 {
        self.ops_seen.load(Ordering::SeqCst)
    }

    /// Number of faults injected so far (halts are not faults).
    pub fn injected_count(&self) -> usize {
        self.injected.load(Ordering::SeqCst)
    }

    fn check(&self, op: FsOpKind, name: &str) -> Verdict {
        if op.is_mutating() {
            let idx = self.ops_seen.fetch_add(1, Ordering::SeqCst);
            let during = self.halt_during.load(Ordering::SeqCst);
            if idx == during {
                return Verdict::TearAndHalt;
            }
            if idx > during || idx > self.halt_after.load(Ordering::SeqCst) {
                return Verdict::Halted;
            }
            if idx == self.fault_at.load(Ordering::SeqCst) {
                if let Some(kind) = self.fault_at_kind.lock().take() {
                    self.fault_at.store(u64::MAX, Ordering::SeqCst);
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    return Verdict::Inject(kind);
                }
            }
        } else if self.halted() {
            // The dead process cannot read either.
            return Verdict::Halted;
        }
        let rules = self.rules.lock();
        for rule in rules.iter() {
            if rule.op != op {
                continue;
            }
            if let Some(frag) = &rule.name_contains {
                if !name.contains(frag.as_str()) {
                    continue;
                }
            }
            if rule.probability < 1.0 && rule.draw() >= rule.probability {
                continue;
            }
            // Claim one failure budget atomically.
            let mut cur = rule.remaining.load(Ordering::SeqCst);
            loop {
                if cur == 0 {
                    break;
                }
                let next = if cur == usize::MAX { cur } else { cur - 1 };
                match rule
                    .remaining
                    .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => {
                        self.injected.fetch_add(1, Ordering::SeqCst);
                        return Verdict::Inject(rule.kind);
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
        Verdict::Proceed
    }
}

fn halt_error(op: FsOpKind, name: &str) -> FsError {
    FsError::Io(format!("injected halt: process dead at {op:?} {name}"))
}

fn injected_io(op: FsOpKind, name: &str) -> FsError {
    FsError::Io(format!("injected {op:?} failure for {name}"))
}

/// A [`FileSystem`] decorator that consults a [`VfsFaultPlan`] before
/// every operation — the local mirror of the cloud `FaultStore`.
#[derive(Debug)]
pub struct FaultFs<F> {
    inner: F,
    plan: Arc<VfsFaultPlan>,
    /// Set by [`FaultFs::with_journal`]: lets [`FsFaultKind::FsyncLoss`]
    /// actually drop the dirty data, as ext4 does.
    journal: Option<Arc<JournaledFs>>,
}

impl<F: FileSystem> FaultFs<F> {
    /// Wraps `inner`; faults are scheduled through the shared `plan`.
    pub fn new(inner: F, plan: Arc<VfsFaultPlan>) -> Self {
        FaultFs {
            inner,
            plan,
            journal: None,
        }
    }

    /// The wrapped file system.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The shared fault plan.
    pub fn plan(&self) -> &Arc<VfsFaultPlan> {
        &self.plan
    }
}

impl FaultFs<Arc<JournaledFs>> {
    /// Wraps a [`JournaledFs`] and remembers it, so
    /// [`FsFaultKind::FsyncLoss`] can discard the lost write's dirty
    /// data immediately (not merely leave it volatile).
    pub fn with_journal(journal: Arc<JournaledFs>, plan: Arc<VfsFaultPlan>) -> Self {
        FaultFs {
            inner: journal.clone(),
            plan,
            journal: Some(journal),
        }
    }
}

impl<F: FileSystem> FaultFs<F> {
    /// Shared handling for mutating non-write operations.
    fn gate(&self, op: FsOpKind, name: &str) -> Result<(), FsError> {
        match self.plan.check(op, name) {
            Verdict::Proceed => Ok(()),
            // There is no data to tear in a metadata op; the process
            // simply dies before it takes effect.
            Verdict::Halted | Verdict::TearAndHalt => Err(halt_error(op, name)),
            Verdict::Inject(FsFaultKind::NoSpace) => Err(FsError::NoSpace(name.to_string())),
            Verdict::Inject(_) => Err(injected_io(op, name)),
        }
    }
}

impl<F: FileSystem> FileSystem for FaultFs<F> {
    fn create(&self, path: &str) -> Result<(), FsError> {
        self.gate(FsOpKind::Create, path)?;
        self.inner.create(path)
    }

    fn write(&self, path: &str, offset: u64, data: &[u8], sync: bool) -> Result<(), FsError> {
        match self.plan.check(FsOpKind::Write, path) {
            Verdict::Proceed => self.inner.write(path, offset, data, sync),
            Verdict::Halted => Err(halt_error(FsOpKind::Write, path)),
            Verdict::TearAndHalt => {
                // The bytes reached the page cache; the fsync (if any)
                // never completed. power_cut_torn() decides which
                // sectors made it to the platter.
                self.inner.write(path, offset, data, false)?;
                Err(FsError::Io(format!(
                    "injected halt: process dead mid-write of {path}"
                )))
            }
            Verdict::Inject(FsFaultKind::Io) => Err(injected_io(FsOpKind::Write, path)),
            Verdict::Inject(FsFaultKind::NoSpace) => Err(FsError::NoSpace(path.to_string())),
            Verdict::Inject(FsFaultKind::ShortWrite) => {
                let keep = data.len().min(self.plan.sector_size);
                if keep > 0 {
                    self.inner.write(path, offset, &data[..keep], sync)?;
                }
                Err(FsError::Io(format!(
                    "injected short write for {path}: {keep} of {} bytes",
                    data.len()
                )))
            }
            Verdict::Inject(FsFaultKind::FsyncLoss) => {
                self.inner.write(path, offset, data, false)?;
                if let Some(journal) = &self.journal {
                    journal.discard_volatile(path);
                }
                Err(FsError::Io(format!(
                    "injected fsync failure for {path}: dirty data dropped"
                )))
            }
        }
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        self.gate(FsOpKind::Read, path)?;
        self.inner.read(path, offset, len)
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.gate(FsOpKind::Read, path)?;
        self.inner.read_all(path)
    }

    fn len(&self, path: &str) -> Result<u64, FsError> {
        self.gate(FsOpKind::Read, path)?;
        self.inner.len(path)
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError> {
        self.gate(FsOpKind::Truncate, path)?;
        self.inner.truncate(path, len)
    }

    fn delete(&self, path: &str) -> Result<(), FsError> {
        self.gate(FsOpKind::Delete, path)?;
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        self.gate(FsOpKind::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        self.gate(FsOpKind::List, prefix)?;
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn fs_with_plan() -> (FaultFs<MemFs>, Arc<VfsFaultPlan>) {
        let plan = Arc::new(VfsFaultPlan::new());
        (FaultFs::new(MemFs::new(), plan.clone()), plan)
    }

    #[test]
    fn no_faults_passes_through() {
        let (fs, plan) = fs_with_plan();
        fs.create("a").unwrap();
        fs.write("a", 0, b"123", true).unwrap();
        assert_eq!(fs.read("a", 1, 2).unwrap(), b"23");
        assert_eq!(fs.read_all("a").unwrap(), b"123");
        assert_eq!(fs.len("a").unwrap(), 3);
        fs.truncate("a", 1).unwrap();
        fs.rename("a", "b").unwrap();
        assert_eq!(fs.list("").unwrap(), vec!["b"]);
        assert!(fs.exists("b"));
        fs.delete("b").unwrap();
        fs.wipe().unwrap();
        assert_eq!(plan.injected_count(), 0);
    }

    #[test]
    fn fail_next_write_with_each_kind() {
        let (fs, plan) = fs_with_plan();
        plan.fail_next(FsOpKind::Write, 1, FsFaultKind::Io);
        assert!(matches!(fs.write("f", 0, b"x", true), Err(FsError::Io(_))));
        plan.fail_next(FsOpKind::Write, 1, FsFaultKind::NoSpace);
        assert!(matches!(
            fs.write("f", 0, b"x", true),
            Err(FsError::NoSpace(_))
        ));
        fs.write("f", 0, b"x", true).unwrap();
        assert_eq!(plan.injected_count(), 2);
    }

    #[test]
    fn failed_write_applies_nothing() {
        let (fs, plan) = fs_with_plan();
        plan.fail_next(FsOpKind::Write, 1, FsFaultKind::Io);
        let _ = fs.write("f", 0, b"x", true);
        assert!(!fs.exists("f"));
    }

    #[test]
    fn short_write_persists_one_sector() {
        let plan = Arc::new(VfsFaultPlan::with_sector_size(4));
        let fs = FaultFs::new(MemFs::new(), plan.clone());
        plan.fail_next(FsOpKind::Write, 1, FsFaultKind::ShortWrite);
        assert!(fs.write("f", 0, b"AAAABBBB", true).is_err());
        assert_eq!(fs.read_all("f").unwrap(), b"AAAA");
    }

    #[test]
    fn fsync_loss_drops_dirty_data_through_journal() {
        let plan = Arc::new(VfsFaultPlan::new());
        let journal = Arc::new(JournaledFs::new());
        let fs = FaultFs::with_journal(journal.clone(), plan.clone());
        fs.write("f", 0, b"safe", true).unwrap();
        plan.fail_next(FsOpKind::Write, 1, FsFaultKind::FsyncLoss);
        assert!(fs.write("f", 4, b"gone", true).is_err());
        // The data is not even in the cache view any more.
        assert_eq!(fs.read_all("f").unwrap(), b"safe");
        journal.power_cut();
        assert_eq!(fs.read_all("f").unwrap(), b"safe");
    }

    #[test]
    fn fail_matching_only_hits_matching_paths() {
        let (fs, plan) = fs_with_plan();
        plan.fail_matching(FsOpKind::Write, "pg_xlog/", 1, FsFaultKind::Io);
        fs.write("base/1", 0, b"d", true).unwrap();
        assert!(fs.write("pg_xlog/0001", 0, b"w", true).is_err());
        fs.write("pg_xlog/0001", 0, b"w", true).unwrap();
    }

    #[test]
    fn fail_randomly_is_deterministic_per_seed() {
        let run = |seed| {
            let (fs, plan) = fs_with_plan();
            plan.fail_randomly(FsOpKind::Write, 0.5, seed, FsFaultKind::Io);
            (0..64)
                .map(|i| fs.write(&format!("o{i}"), 0, b"x", false).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fail_at_op_targets_one_mutating_index_once() {
        let (fs, plan) = fs_with_plan();
        plan.fail_at_op(2, FsFaultKind::NoSpace);
        fs.write("a", 0, b"x", true).unwrap(); // op 0
        fs.create("b").unwrap(); // op 1
        assert!(matches!(
            fs.write("c", 0, b"x", true), // op 2: the targeted one
            Err(FsError::NoSpace(_))
        ));
        fs.write("c", 0, b"x", true).unwrap(); // op 3: disarmed again
        let _ = fs.read_all("c"); // reads never consume indices
        assert_eq!(plan.injected_count(), 1);
    }

    #[test]
    fn halt_after_op_kills_everything_later() {
        let (fs, plan) = fs_with_plan();
        fs.write("f", 0, b"pre", true).unwrap();
        plan.halt_after_op(1); // ops 0 and 1 proceed
        fs.write("f", 3, b"last", true).unwrap(); // op 1
        assert!(fs.write("f", 7, b"dead", true).is_err()); // op 2
        assert!(fs.read_all("f").is_err());
        assert!(fs.len("f").is_err());
        assert!(fs.list("").is_err());
        assert!(fs.delete("f").is_err());
        assert!(plan.halted());
        plan.revive();
        assert_eq!(fs.read_all("f").unwrap(), b"prelast");
    }

    #[test]
    fn halt_during_op_leaves_bytes_volatile() {
        let plan = Arc::new(VfsFaultPlan::new());
        let journal = Arc::new(JournaledFs::new());
        let fs = FaultFs::with_journal(journal.clone(), plan.clone());
        fs.write("f", 0, b"pre", true).unwrap(); // op 0
        plan.halt_during_op(1);
        assert!(fs.write("f", 3, b"mid", true).is_err()); // op 1: torn
        assert!(fs.write("f", 6, b"post", true).is_err()); // op 2: dead
        plan.revive();
        // The mid-write bytes are in the cache but not on the platter.
        assert_eq!(journal.read_all("f").unwrap(), b"premid");
        journal.power_cut();
        assert_eq!(journal.read_all("f").unwrap(), b"pre");
    }

    #[test]
    fn mutating_op_indices_count_all_mutations() {
        let (fs, plan) = fs_with_plan();
        fs.create("a").unwrap();
        fs.write("a", 0, b"x", false).unwrap();
        fs.truncate("a", 0).unwrap();
        fs.rename("a", "b").unwrap();
        fs.delete("b").unwrap();
        let _ = fs.list("");
        let _ = fs.read_all("b");
        assert_eq!(plan.mutating_ops_seen(), 5);
    }

    #[test]
    fn concurrent_budget_not_overspent() {
        let (fs, plan) = fs_with_plan();
        let fs = Arc::new(fs);
        plan.fail_next(FsOpKind::Write, 10, FsFaultKind::Io);
        let mut handles = Vec::new();
        for t in 0..4 {
            let fs = fs.clone();
            handles.push(std::thread::spawn(move || {
                let mut failures = 0;
                for i in 0..25 {
                    if fs.write(&format!("o-{t}-{i}"), 0, b"x", false).is_err() {
                        failures += 1;
                    }
                }
                failures
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(plan.injected_count(), 10);
    }
}
