//! `ginja-cli` — operator tooling over a Ginja cloud bucket.
//!
//! The bucket is addressed as a directory (use an rclone/NFS mount for
//! a real cloud bucket):
//!
//! ```text
//! ginja-cli status <bucket-dir>
//! ginja-cli restore-points <bucket-dir>
//! ginja-cli verify <bucket-dir> [--password <pw>]
//! ginja-cli drill <bucket-dir> [--prefix <tenants/name/>] [--password <pw>]
//! ginja-cli recover <bucket-dir> <target-dir> [--point <ts>] [--password <pw>]
//! ginja-cli cost <db-gb> <updates-per-min> <batch>
//! ginja-cli budget <monthly-usd> <db-gb> <updates-per-min> [--batch <B>] [--safety <S>] [--headroom <f>] [--steps <n>]
//! ginja-cli crashtest [--profile <postgres|mysql>] [--seed <n>] [--ops <n>] [--stride <n>] [--no-torn] [--prefix <p>]
//! ginja-cli fleet [--tenants <n>] [--txns <n>] [--width <w>] [--budget <usd>] [--month-secs <s>]
//! ginja-cli outage [--rows <n>] [--ring <n>] [--spill-ceiling <bytes>]
//! ginja-cli standby [--rows <n>] [--waves <n>] [--promote]
//! ```
//!
//! `budget` is the offline view of the live cost governor (`DESIGN.md`
//! §13): it simulates a governed month under a steady workload and
//! prints the knob trajectory, next to the fixed-B §7.1 cost and the
//! Figure 1 capacity frontier for the same budget.
//!
//! `crashtest` needs no bucket: it runs the CrashFs crash-point sweep
//! (see `DESIGN.md` §11) against in-memory stores and exits non-zero if
//! any crash point violates a durability invariant.
//!
//! `fleet` needs no bucket either: it spins up an in-process
//! multi-tenant fleet (`DESIGN.md` §14) — N TPC-C tenants in one shared
//! bucket behind one fair-share executor and one fleet budget — then
//! proves every tenant scrubs clean and recovers from its own prefix
//! with nothing acknowledged lost, and exits non-zero otherwise.
//!
//! `outage` is the outage endurance drill (`DESIGN.md` §15), also
//! in-process: it cuts the cloud out from under a live pipeline, shows
//! the outage policy escalating (Healthy → Degraded → Enduring) while
//! the RAM backlog stays bounded and the overflow spills to disk, then
//! restores the cloud and proves catch-up drains to a scrub-clean
//! bucket with zero acknowledged loss — exiting non-zero otherwise.
//!
//! `standby` is the warm-standby drill (`DESIGN.md` §17), in-process
//! too: it protects a database, attaches a continuous cloud-tail
//! standby, and prints a live lag table as commit waves land and the
//! tail absorbs them. With `--promote` it then fences the tail,
//! promotes the shadow into a bootable directory, and prints the
//! achieved RPO (updates lost, against the Safety bound `S`) and the
//! achieved RTO next to a cold recovery of the same bucket — exiting
//! non-zero on any lost acknowledged update.
//!
//! On shared (multi-tenant) buckets, `--prefix tenants/<name>/` scopes
//! `drill` and `crashtest` to one tenant's namespace: the scoped drill
//! structurally cannot list, read, or delete a neighbor's objects.

use std::process::ExitCode;

use ginja::cloud::{DirStore, ObjectStore};
use ginja::codec::CodecConfig;
use ginja::core::{
    list_restore_points, recover_to_point, verify_backup, CloudView, GinjaConfig, RestorePointKind,
};
use ginja::cost::GinjaCostModel;
use ginja::vfs::DirFs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("status") => status(&args[1..]),
        Some("restore-points") => restore_points(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("drill") => drill(&args[1..]),
        Some("recover") => recover(&args[1..]),
        Some("cost") => cost(&args[1..]),
        Some("budget") => budget(&args[1..]),
        Some("crashtest") => crashtest(&args[1..]),
        Some("fleet") => fleet(&args[1..]),
        Some("outage") => outage(&args[1..]),
        Some("standby") => standby(&args[1..]),
        _ => {
            eprintln!(
                "usage: ginja-cli <status|restore-points|verify|drill|recover|cost|budget|crashtest|fleet|outage|standby> ..."
            );
            eprintln!("  status <bucket-dir>");
            eprintln!("  restore-points <bucket-dir>");
            eprintln!("  verify <bucket-dir> [--password <pw>]");
            eprintln!("  drill <bucket-dir> [--prefix <tenants/name/>] [--password <pw>]");
            eprintln!("  recover <bucket-dir> <target-dir> [--point <ts>] [--password <pw>]");
            eprintln!("  cost <db-gb> <updates-per-min> <batch>");
            eprintln!(
                "  budget <monthly-usd> <db-gb> <updates-per-min> [--batch <B>] [--safety <S>] [--headroom <f>] [--steps <n>]"
            );
            eprintln!(
                "  crashtest [--profile <postgres|mysql>] [--seed <n>] [--ops <n>] [--stride <n>] [--no-torn] [--prefix <p>]"
            );
            eprintln!(
                "  fleet [--tenants <n>] [--txns <n>] [--width <w>] [--budget <usd>] [--month-secs <s>]"
            );
            eprintln!("  outage [--rows <n>] [--ring <n>] [--spill-ceiling <bytes>]");
            eprintln!("  standby [--rows <n>] [--waves <n>] [--promote]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--prefix`, normalized to end in `/` (the `tenants/<name>/`
/// convention); `None` when absent or explicitly empty (whole bucket).
fn prefix_from(args: &[String]) -> Option<String> {
    flag_value(args, "--prefix")
        .filter(|p| !p.is_empty())
        .map(|p| if p.ends_with('/') { p } else { format!("{p}/") })
}

fn config_from(args: &[String]) -> Result<GinjaConfig, String> {
    let mut codec = CodecConfig::new();
    if let Some(password) = flag_value(args, "--password") {
        codec = codec.compression(true).password(password);
    }
    GinjaConfig::builder()
        .codec(codec)
        .build()
        .map_err(|e| e.to_string())
}

fn open_bucket(args: &[String], index: usize) -> Result<DirStore, String> {
    let path = args.get(index).ok_or("missing bucket directory argument")?;
    DirStore::open(path).map_err(|e| e.to_string())
}

fn status(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let names = bucket.list("").map_err(|e| e.to_string())?;
    let view = CloudView::from_listing(&names).map_err(|e| e.to_string())?;
    println!("bucket:            {}", bucket.root().display());
    println!("objects:           {}", names.len());
    println!(
        "WAL objects:       {} ({} bytes raw)",
        view.wal_count(),
        view.total_wal_bytes()
    );
    println!(
        "DB objects:        {} ({} bytes raw)",
        view.db_count(),
        view.total_db_size()
    );
    println!("WAL frontier ts:   {}", view.last_wal_ts());
    match view.most_recent_dump() {
        Some((ts, entry)) => {
            println!(
                "newest dump:       ts {ts}, {} bytes, {} part(s)",
                entry.size,
                entry.parts.len()
            )
        }
        None => println!("newest dump:       NONE — this bucket cannot be recovered"),
    }
    Ok(())
}

fn restore_points(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let points = list_restore_points(&bucket).map_err(|e| e.to_string())?;
    if points.is_empty() {
        println!("no restorable points (no complete dump in the bucket)");
        return Ok(());
    }
    for point in points {
        let kind = match point.kind {
            RestorePointKind::Dump => "dump",
            RestorePointKind::Checkpoint => "checkpoint",
            RestorePointKind::Wal => "wal",
        };
        println!("ts {:>8}  {kind}", point.ts);
    }
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let config = config_from(args)?;
    let scratch = ginja::vfs::MemFs::new();
    let report = verify_backup(&bucket, &config, &scratch).map_err(|e| e.to_string())?;
    println!("objects verified:  {}", report.objects_verified);
    println!("bytes downloaded:  {}", report.bytes_downloaded);
    if !report.corrupt_objects.is_empty() {
        println!("CORRUPT OBJECTS:");
        for name in &report.corrupt_objects {
            println!("  {name}");
        }
        return Err(format!(
            "{} corrupt object(s)",
            report.corrupt_objects.len()
        ));
    }
    match report.recovery {
        Some(recovery) => println!(
            "rebuild OK:        dump ts {}, {} checkpoint(s), {} WAL object(s), {} file(s)",
            recovery.dump_ts,
            recovery.checkpoints_applied,
            recovery.wal_objects_applied,
            recovery.files_written
        ),
        None => return Err("no dump to rebuild from".into()),
    }
    println!("backup verification PASSED");
    Ok(())
}

/// A one-shot disaster-recovery drill: scrub the bucket (every payload
/// envelope-verified, anomalies classified), then rehearse a full
/// restore into scratch memory and report the achieved RTO. With
/// `--prefix`, both stages run against one tenant's scoped view of a
/// shared bucket — the neighbors' objects are structurally unreachable.
fn drill(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;

    use ginja::cloud::PrefixStore;

    let mut store: Arc<dyn ObjectStore> = Arc::new(open_bucket(args, 0)?);
    if let Some(prefix) = prefix_from(args) {
        println!("tenant prefix:     {prefix}");
        store = Arc::new(PrefixStore::new(store, prefix));
    }
    let config = config_from(args)?;

    let scrub =
        ginja::sentinel::scrub_bucket(store.as_ref(), &config).map_err(|e| e.to_string())?;
    println!("objects listed:    {}", scrub.objects_listed);
    println!("payloads verified: {}", scrub.payloads_verified);
    if !scrub.is_clean() {
        println!("ANOMALIES:");
        for anomaly in &scrub.anomalies {
            println!("  {:<12} {}", anomaly.kind.to_string(), anomaly.name);
        }
    }

    let (rehearsal, _scratch) =
        ginja::sentinel::rehearse_bucket(store.as_ref(), &config).map_err(|e| e.to_string())?;
    match &rehearsal.verify.recovery {
        Some(recovery) => println!(
            "rehearsal rebuild: dump ts {}, {} checkpoint(s), {} WAL object(s), {} file(s)",
            recovery.dump_ts,
            recovery.checkpoints_applied,
            recovery.wal_objects_applied,
            recovery.files_written
        ),
        None => println!("rehearsal rebuild: FAILED (no usable dump)"),
    }
    println!("achieved RTO:      {:?}", rehearsal.rto);

    if !scrub.is_clean() {
        return Err(format!("{} anomaly(ies) found", scrub.anomalies.len()));
    }
    if !rehearsal.restorable() {
        return Err("bucket is not restorable".into());
    }
    println!("drill PASSED — bucket is clean and restorable");
    Ok(())
}

fn recover(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let target_path = args.get(1).ok_or("missing target directory argument")?;
    let point = match flag_value(args, "--point") {
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("bad --point value: {raw}"))?,
        None => u64::MAX,
    };
    let config = config_from(args)?;
    let target = DirFs::open(target_path).map_err(|e| e.to_string())?;
    let report = recover_to_point(&target, &bucket, &config, point).map_err(|e| e.to_string())?;
    println!(
        "recovered into {}: dump ts {}, {} checkpoint(s), {} WAL object(s), {} bytes downloaded",
        target_path,
        report.dump_ts,
        report.checkpoints_applied,
        report.wal_objects_applied,
        report.bytes_downloaded
    );
    println!("start the DBMS over this directory to complete crash recovery");
    Ok(())
}

fn cost(args: &[String]) -> Result<(), String> {
    let parse = |i: usize, what: &str| -> Result<f64, String> {
        args.get(i)
            .ok_or(format!("missing {what}"))?
            .parse::<f64>()
            .map_err(|_| format!("bad {what}: {}", args[i]))
    };
    let db_gb = parse(0, "db-gb")?;
    let updates = parse(1, "updates-per-min")?;
    let batch = parse(2, "batch")? as u64;
    if batch == 0 {
        return Err("batch must be at least 1".into());
    }
    let mut model = GinjaCostModel::paper_fig4(updates, batch);
    model.db_size_gb = db_gb;
    println!("C_DB_Storage  = ${:>9.3}", model.c_db_storage());
    println!("C_DB_PUT      = ${:>9.3}", model.c_db_put());
    println!("C_WAL_Storage = ${:>9.3}", model.c_wal_storage());
    println!("C_WAL_PUT     = ${:>9.3}", model.c_wal_put());
    println!("C_Total       = ${:>9.3} per month", model.total());
    println!(
        "recovery      = ${:>9.3} (free intra-region)",
        model.recovery_cost()
    );
    Ok(())
}

/// Plans a governed month offline: the same [`GovernorPolicy`] the live
/// governor runs, stepped through a steady workload with the §7.1 cost
/// terms — prints the knob trajectory, the fixed-B cost it beats, and
/// where the deployment sits on the budget's capacity frontier.
fn budget(args: &[String]) -> Result<(), String> {
    use ginja::cost::governor::{
        simulate_steady_month, BudgetConfig, GovernorAction, GovernorPolicy, KnobBounds,
    };
    use ginja::cost::Budget;
    use std::time::Duration;

    let parse = |i: usize, what: &str| -> Result<f64, String> {
        args.get(i)
            .ok_or(format!("missing {what}"))?
            .parse::<f64>()
            .map_err(|_| format!("bad {what}: {}", args[i]))
    };
    let monthly_usd = parse(0, "monthly-usd")?;
    let db_gb = parse(1, "db-gb")?;
    let updates = parse(2, "updates-per-min")?;
    let parse_flag = |flag: &str, default: f64| -> Result<f64, String> {
        match flag_value(args, flag) {
            Some(raw) => raw.parse().map_err(|_| format!("bad {flag} value: {raw}")),
            None => Ok(default),
        }
    };
    let batch = parse_flag("--batch", 100.0)? as usize;
    let safety = parse_flag("--safety", 1000.0)? as usize;
    let headroom = parse_flag("--headroom", 0.1)?;
    let steps = parse_flag("--steps", 64.0)? as usize;
    if batch == 0 || safety < batch {
        return Err("need 1 <= batch <= safety".into());
    }

    let mut config = BudgetConfig::new(monthly_usd);
    config.headroom = headroom;
    config.validate().map_err(|e| e.to_string())?;
    let target = config.target_usd();
    let pricing = config.pricing;
    let bounds = KnobBounds {
        min_batch: batch,
        max_batch: safety,
        min_batch_timeout: Duration::from_secs(1),
        max_batch_timeout: Duration::from_secs(5),
        min_dump_threshold: 1.5,
        max_dump_threshold: 3.0,
        max_sentinel_pace: 16.0,
    };
    let policy = GovernorPolicy::new(config, bounds);

    println!("Ginja budget plan (S3 May-2017 prices)");
    println!(
        "  budget:           ${monthly_usd:.2}/month (target ${target:.2} after {:.0}% headroom)",
        headroom * 100.0
    );
    println!("  database size:    {db_gb} GB");
    println!("  workload:         {updates} updates/minute");
    println!("  baseline B/S:     {batch}/{safety}");
    println!();

    let mut fixed = ginja::cost::GinjaCostModel::paper_fig4(updates, batch as u64);
    fixed.db_size_gb = db_gb;
    fixed.pricing = pricing;
    let fixed_total = fixed.total();
    println!(
        "fixed B={batch} month-end (§7.1):  ${fixed_total:.3}  [{}]",
        if fixed_total <= monthly_usd {
            "under budget"
        } else {
            "OVER BUDGET"
        }
    );

    let sim = simulate_steady_month(db_gb, updates, &policy, steps);
    println!("\ngoverned month ({steps} steps):");
    println!("  month%   B      spent$    projected$  action");
    for point in &sim.trajectory {
        let action = match point.action {
            Some(GovernorAction::Escalate) => "escalate",
            Some(GovernorAction::Relax) => "relax",
            None => continue, // print only the steps where the governor moved
        };
        println!(
            "  {:>5.1}  {:>5}  {:>8.3}  {:>10.3}  {action}",
            point.at_fraction * 100.0,
            point.batch,
            point.spent_usd,
            point.projected_usd,
        );
    }
    let moves = sim.trajectory.iter().filter(|p| p.action.is_some()).count();
    if moves == 0 {
        println!("  (no knob movement: baseline already fits the target)");
    }
    println!(
        "  month-end: ${:.3} with B={} — {}",
        sim.final_usd,
        sim.final_knobs.batch,
        if sim.final_usd <= monthly_usd {
            "within budget"
        } else {
            "cannot fit: raise the budget, raise S, or shrink the workload"
        }
    );

    println!("\ncapacity frontier at ${monthly_usd:.2}/month (Figure 1):");
    let per_hour = updates * 60.0 / batch as f64;
    let budget = Budget::with_pricing(monthly_usd, pricing);
    println!("  syncs/hour   max DB size");
    for (rate, size) in budget.frontier([25.0, 50.0, 100.0, 150.0, 200.0, 250.0]) {
        println!("  {rate:>10.0}   {size:>8.1} GB");
    }
    println!(
        "  this deployment: {per_hour:.0} syncs/hour at baseline B → max {:.1} GB ({db_gb} GB {})",
        budget.max_db_size_gb(per_hour),
        if db_gb <= budget.max_db_size_gb(per_hour) {
            "fits"
        } else {
            "does not fit at baseline B — the governor will escalate"
        }
    );
    Ok(())
}

/// Runs the CrashFs crash-point sweep against in-memory stores: every
/// mutating local I/O of a seeded workload becomes a kill point, and
/// each surviving state must crash-recover locally, disaster-recover
/// from the cloud with bounded loss, scrub clean, and reboot-resync.
fn crashtest(args: &[String]) -> Result<(), String> {
    use ginja::crashpoint::{explore, ExplorerConfig};
    use ginja::db::ProfileKind;

    let profile = match flag_value(args, "--profile").as_deref() {
        None | Some("postgres") => ProfileKind::Postgres,
        Some("mysql") => ProfileKind::MySql,
        Some(other) => return Err(format!("unknown profile: {other}")),
    };
    let parse_num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            Some(raw) => raw.parse().map_err(|_| format!("bad {flag} value: {raw}")),
            None => Ok(default),
        }
    };
    let mut cfg = ExplorerConfig::new(profile);
    cfg.seed = parse_num("--seed", cfg.seed)?;
    cfg.steps = parse_num("--ops", cfg.steps as u64)? as usize;
    cfg.stride = parse_num("--stride", cfg.stride as u64)?.max(1) as usize;
    cfg.torn = !args.iter().any(|a| a == "--no-torn");
    if let Some(prefix) = prefix_from(args) {
        println!("tenant prefix:     {prefix}");
        cfg.prefix = prefix;
    }

    let report = explore(&cfg);
    println!(
        "profile:           {}",
        match profile {
            ProfileKind::Postgres => "postgres",
            ProfileKind::MySql => "mysql",
        }
    );
    println!("workload steps:    {}", cfg.steps);
    println!("crash points:      {}", report.crash_points);
    println!(
        "replays explored:  {} (stride {}, torn {})",
        report.explored, cfg.stride, cfg.torn
    );
    println!("faults injected:   {}", report.fs_faults_injected);
    println!("torn tails healed: {}", report.torn_tails_truncated);
    println!("WAL resynced:      {} object(s)", report.wal_resync_objects);
    if !report.is_clean() {
        println!("VIOLATIONS:");
        for violation in &report.violations {
            println!("  {violation}");
        }
        return Err(format!(
            "{} crash-point violation(s)",
            report.violations.len()
        ));
    }
    println!("crashtest PASSED — every explored crash point recovered");
    Ok(())
}

/// Spins up an in-process multi-tenant fleet: N TPC-C tenants over one
/// shared in-memory bucket, one fair-share executor, and one fleet
/// budget ($1/tenant/month by default, the paper's price point). After
/// the run, every tenant must scrub clean and recover from its own
/// `tenants/<name>/` prefix with nothing acknowledged lost, and the
/// fleet's projected spend must sit inside the budget — exits non-zero
/// otherwise. CI smoke-tests the fleet subsystem through this command.
fn fleet(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::Duration;

    use ginja::cloud::MemStore;
    use ginja::core::recover_into;
    use ginja::cost::BudgetConfig;
    use ginja::db::{Database, DbProfile};
    use ginja::fleet::{Fleet, FleetConfig, TenantSpec};
    use ginja::vfs::MemFs;
    use ginja::workload::{probe_tpcc, Tpcc, TpccScale};

    /// Table each tenant writes a final marker row into — proof after
    /// recovery that the very last acknowledged update survived.
    const MARKER_TABLE: u32 = 77;

    let parse_num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            Some(raw) => raw.parse().map_err(|_| format!("bad {flag} value: {raw}")),
            None => Ok(default),
        }
    };
    let tenants = parse_num("--tenants", 3)? as usize;
    let txns = parse_num("--txns", 30)?;
    let width = parse_num("--width", 8)?.max(1) as usize;
    if tenants == 0 {
        return Err("need at least one tenant".into());
    }
    let budget_usd = match flag_value(args, "--budget") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("bad --budget value: {raw}"))?,
        None => tenants as f64, // one dollar per tenant per month
    };
    // A seconds-long "month": the projection math is scale-free in
    // month length, so a short month exercises the same arbitration a
    // 30-day one would without extrapolating a 2-second run 10^6-fold.
    let month = Duration::from_secs(parse_num("--month-secs", 60)?.max(1));

    let fleet = Fleet::new(
        Arc::new(MemStore::new()),
        FleetConfig {
            width,
            budget: Some(BudgetConfig {
                month,
                ..BudgetConfig::new(budget_usd)
            }),
            ..FleetConfig::default()
        },
    );
    let config = GinjaConfig::builder()
        .batch(4)
        .safety(32)
        .batch_timeout(Duration::from_millis(10))
        .build()
        .map_err(|e| e.to_string())?;
    for i in 0..tenants {
        fleet
            .attach(TenantSpec::new(
                format!("t{i}"),
                DbProfile::postgres_small(),
                config.clone(),
            ))
            .map_err(|e| e.to_string())?;
    }
    println!("fleet: {tenants} tenant(s), executor width {width}, budget ${budget_usd:.2}/month");

    // Drive every tenant concurrently; arbitrate the budget meanwhile.
    let workers: Vec<_> = fleet
        .tenants()
        .into_iter()
        .enumerate()
        .map(|(i, tenant)| {
            std::thread::spawn(move || -> Result<(), String> {
                let mut tpcc = Tpcc::new(1, 0xF1EE7 ^ i as u64, TpccScale::tiny());
                tpcc.create_schema(tenant.db()).map_err(|e| e.to_string())?;
                tpcc.load(tenant.db()).map_err(|e| e.to_string())?;
                for _ in 0..txns {
                    tpcc.run_transaction(tenant.db())
                        .map_err(|e| e.to_string())?;
                }
                tenant
                    .db()
                    .create_table(MARKER_TABLE, 64)
                    .map_err(|e| e.to_string())?;
                tenant
                    .db()
                    .put(MARKER_TABLE, 0, tenant.name().as_bytes().to_vec())
                    .map_err(|e| e.to_string())
            })
        })
        .collect();
    while workers.iter().any(|w| !w.is_finished()) {
        fleet.governor_pass();
        std::thread::sleep(Duration::from_millis(5));
    }
    for worker in workers {
        worker.join().map_err(|_| "tenant worker panicked")??;
    }
    if !fleet.sync_all(Duration::from_secs(60)) {
        return Err("a tenant pipeline failed to drain".into());
    }
    fleet.governor_pass();

    // One full sentinel rotation, then a per-tenant recovery check.
    let mut anomalies = 0;
    for _ in 0..tenants {
        if let Some((name, report)) = fleet.scrub_next().map_err(|e| e.to_string())? {
            if !report.is_clean() {
                eprintln!(
                    "tenant {name}: {} scrub anomaly(ies)",
                    report.anomalies.len()
                );
                anomalies += report.anomalies.len();
            }
        }
    }
    let mut lost = 0;
    for tenant in fleet.tenants() {
        let target = Arc::new(MemFs::new());
        recover_into(target.as_ref(), &tenant.store(), &config).map_err(|e| e.to_string())?;
        let db = Database::open(target, DbProfile::postgres_small()).map_err(|e| e.to_string())?;
        let marker = db.get(MARKER_TABLE, 0).map_err(|e| e.to_string())?;
        if marker.as_deref() != Some(tenant.name().as_bytes()) {
            eprintln!("tenant {}: final acked marker lost", tenant.name());
            lost += 1;
        }
        let probe = probe_tpcc(&db).map_err(|e| e.to_string())?;
        if !probe.is_consistent() {
            eprintln!(
                "tenant {}: recovered state inconsistent: {probe:?}",
                tenant.name()
            );
            lost += 1;
        }
    }

    let snap = fleet.snapshot();
    fleet.shutdown();
    println!(
        "\n{:<8} {:>6} {:>4} {:>8} {:>6} {:>8} {:>10} {:>10} {:>10} {:>4} {:>9} {:>5} {:>5}",
        "tenant",
        "weight",
        "lane",
        "updates",
        "waves",
        "granted",
        "spent $",
        "proj $",
        "budget $",
        "esc",
        "put p99",
        "parks",
        "seals"
    );
    for t in &snap.tenants {
        let (waves, granted) = t
            .scheduler
            .map(|l| (l.waves, l.granted))
            .unwrap_or_default();
        println!(
            "{:<8} {:>6.1} {:>4} {:>8} {:>6} {:>8} {:>10.6} {:>10.6} {:>10.6} {:>4} {:>9.1?} {:>5} {:>5}",
            t.name,
            t.weight,
            t.lane,
            t.stats.updates_intercepted,
            waves,
            granted,
            t.spent_microusd as f64 / 1e6,
            t.projected_microusd as f64 / 1e6,
            t.sub_budget_microusd as f64 / 1e6,
            t.escalations,
            t.stats.ingest.put_latency.p99,
            t.stats.ingest.put_parks,
            t.stats.ingest.adaptive_seals,
        );
    }
    println!(
        "\naggregate: {} updates, {} WAL + {} DB objects, max in-flight {}/{}, \
         spent ${:.6}, projected ${:.6} of ${:.2}",
        snap.totals.updates_intercepted,
        snap.totals.wal_objects_uploaded,
        snap.totals.db_objects_uploaded,
        snap.max_in_flight,
        snap.width,
        snap.spent_microusd as f64 / 1e6,
        snap.projected_microusd as f64 / 1e6,
        budget_usd,
    );
    println!(
        "ingest:    {} park(s), {} credit retry(ies), {} targeted wakeup(s), \
         {} adaptive seal(s) across the fleet",
        snap.totals.ingest_put_parks,
        snap.totals.ingest_credit_retries,
        snap.totals.ingest_ack_wakeups,
        snap.totals.ingest_adaptive_seals,
    );

    if anomalies > 0 {
        return Err(format!("{anomalies} scrub anomaly(ies) across the fleet"));
    }
    if lost > 0 {
        return Err(format!("{lost} tenant(s) lost acknowledged updates"));
    }
    if snap.over_budget {
        return Err("fleet projected spend exceeds the budget".into());
    }
    if !snap.healthy() {
        return Err("fleet snapshot reports unhealthy tenants".into());
    }
    println!("\nfleet OK — {tenants} tenant(s) protected, zero acked loss, spend under budget");
    Ok(())
}

/// The outage endurance drill: boots a solo pipeline over an
/// in-process bucket, takes the cloud away mid-traffic, and narrates
/// the outage subsystem doing its job — the policy escalating to
/// `Enduring`, the RAM ring holding its bound while the overflow
/// spills to disk, checkpoints coalescing, B widening toward S — then
/// restores the cloud and verifies the catch-up drain ends with an
/// empty spill, a scrub-clean bucket, and a lossless recovery. Exits
/// non-zero if any of that fails. CI smoke-tests the outage subsystem
/// through this command.
fn outage(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use ginja::cloud::{FaultPlan, FaultStore, MemStore, RetryConfig};
    use ginja::core::{recover_into, Ginja, OutageConfig, OutageState, SentinelConfig};
    use ginja::db::{Database, DbProfile};
    use ginja::sentinel::Sentinel;
    use ginja::vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

    /// Table the drill writes its rows into.
    const TABLE: u32 = 42;

    let parse_num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            Some(raw) => raw.parse().map_err(|_| format!("bad {flag} value: {raw}")),
            None => Ok(default),
        }
    };
    let rows = parse_num("--rows", 200)?.max(8);
    let ring = parse_num("--ring", 8)?.max(1) as usize;
    let ceiling = parse_num("--spill-ceiling", 1 << 30)?;

    let wait_for = |timeout: Duration, mut probe: Box<dyn FnMut() -> bool + '_>| -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if probe() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        probe()
    };

    let profile = DbProfile::postgres_small().with_checkpoint_every(1_000_000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).map_err(|e| e.to_string())?;
    db.create_table(TABLE, 256).map_err(|e| e.to_string())?;
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    let config = GinjaConfig::builder()
        .batch(2)
        .safety((rows as usize) * 2 + 64)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(60))
        // A real outage compressed to milliseconds: the breaker opens
        // within a few failed attempts and the policy only measures
        // time through `enduring_after`, scaled down to match.
        .retry(RetryConfig {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(50),
            breaker_probes: 1,
            ..RetryConfig::default()
        })
        .sentinel(SentinelConfig {
            scrub_sample: 0, // verify every payload
            ..SentinelConfig::default()
        })
        .outage(OutageConfig {
            ring_capacity: ring,
            ckpt_capacity: 2,
            spill_ceiling: ceiling,
            enduring_after: Duration::from_millis(50),
            poll_interval: Duration::from_millis(5),
            ..OutageConfig::default()
        })
        .build()
        .map_err(|e| e.to_string())?;
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .map_err(|e| e.to_string())?;
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).map_err(|e| e.to_string())?;

    // Healthy phase: a slice of the rows lands in the cloud normally.
    let healthy_rows = rows / 4;
    for seq in 0..healthy_rows {
        db.put(TABLE, seq, format!("healthy-{seq}").into_bytes())
            .map_err(|e| e.to_string())?;
    }
    if !ginja.sync(Duration::from_secs(30)) {
        return Err("healthy phase failed to drain".into());
    }
    // A burst can transiently spill even with a healthy cloud; give
    // the policy a tick to walk back before reporting.
    wait_for(
        Duration::from_secs(5),
        Box::new(|| ginja.stats().outage.state == OutageState::Healthy),
    );
    println!(
        "healthy phase:     {healthy_rows} row(s) uploaded, state {:?}",
        ginja.stats().outage.state
    );

    // The outage: every cloud op fails from here on, commits keep
    // coming, and a burst of checkpoints overflows the coalescing
    // queue on purpose.
    plan.outage();
    println!("cloud outage:      injected (every op fails)");
    for seq in healthy_rows..rows {
        db.put(TABLE, seq, format!("enduring-{seq}").into_bytes())
            .map_err(|e| e.to_string())?;
    }
    for _ in 0..4 {
        db.checkpoint().map_err(|e| e.to_string())?;
    }

    let mut ring_bound_held = true;
    let escalated = wait_for(
        Duration::from_secs(30),
        Box::new(|| {
            let snap = ginja.stats().outage;
            ring_bound_held &= snap.ring_len <= ring as u64;
            matches!(snap.state, OutageState::Enduring | OutageState::Shedding)
        }),
    );
    let mid = ginja.stats();
    println!("under outage:      state {:?}", mid.outage.state);
    println!(
        "  ring:            {} / {} slot(s) (bound held: {ring_bound_held})",
        mid.outage.ring_len, mid.outage.ring_capacity
    );
    println!(
        "  spill:           {} record(s), {} byte(s) on disk",
        mid.outage.spill_records, mid.outage.spill_bytes
    );
    println!("  ckpt coalesced:  {}", mid.outage.ckpt_coalesced);
    println!(
        "  knobs:           B {} -> {} (S stays {})",
        config.batch,
        ginja.current_knobs().batch,
        config.safety
    );
    if !escalated {
        return Err(format!("policy never escalated: {:?}", mid.outage));
    }
    if !ring_bound_held {
        return Err("RAM ring exceeded its capacity during the outage".into());
    }
    if mid.outage.spill_records == 0 {
        return Err("backlog never spilled to disk".into());
    }

    // The cloud returns: the catch-up lane drains the spill in order,
    // the policy walks back to Healthy, and the knobs restore.
    plan.restore();
    println!("cloud restored:    catch-up draining...");
    if !ginja.sync(Duration::from_secs(120)) {
        return Err("catch-up failed to drain after the cloud returned".into());
    }
    if !wait_for(
        Duration::from_secs(15),
        Box::new(|| ginja.exposure().outage == OutageState::Healthy),
    ) {
        return Err(format!("policy stuck at {:?}", ginja.exposure().outage));
    }
    let fin = ginja.stats();
    println!("after catch-up:    state {:?}", fin.outage.state);
    println!(
        "  drained:         {} record(s), {} byte(s)",
        fin.outage.drained, fin.outage.drained_bytes
    );
    println!(
        "  outage time:     {:.1?} across {} outage(s)",
        fin.outage.outage_time, fin.outage.outages
    );
    println!(
        "  ingest put:      p50 {:.1?} / p99 {:.1?} over {} put(s)",
        fin.ingest.put_latency.p50, fin.ingest.put_latency.p99, fin.ingest.put_latency.count
    );
    println!(
        "  ingest stalls:   {} blocked (p99 {:.1?}), {} spin(s), {} park(s)",
        fin.ingest.blocked_latency.count,
        fin.ingest.blocked_latency.p99,
        fin.ingest.put_spins,
        fin.ingest.put_parks
    );
    println!(
        "  ingest acks:     {} targeted wakeup(s), {} broadcast(s) suppressed",
        fin.ingest.ack_wakeups, fin.ingest.wakeups_suppressed
    );
    println!(
        "  ingest seals:    {} adaptive, {} by TB expiry ({} credit retry(ies))",
        fin.ingest.adaptive_seals, fin.ingest.timeout_seals, fin.ingest.credit_retries
    );
    if fin.outage.spill_records != 0 || fin.outage.spill_bytes != 0 {
        return Err(format!("spill not empty after catch-up: {:?}", fin.outage));
    }
    if ginja.exposure().fatal {
        return Err("exposure still fatal after recovery".into());
    }

    // The bucket the outage left behind must be scrub-clean, and a
    // disaster recovery from it must see every acknowledged row.
    let cycle = Sentinel::new(&ginja)
        .run_cycle()
        .map_err(|e| e.to_string())?;
    if !cycle.scrub.is_clean() {
        return Err(format!(
            "dirty bucket after catch-up: {:?}",
            cycle.scrub.anomalies
        ));
    }
    println!(
        "scrub:             clean ({} object(s) verified)",
        cycle.scrub.objects_listed
    );
    if !ginja.sync(Duration::from_secs(30)) {
        return Err("final sync failed".into());
    }
    ginja.shutdown();
    let reference = db.dump_table(TABLE).map_err(|e| e.to_string())?;
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).map_err(|e| e.to_string())?;
    let recovered = Database::open(rebuilt, profile).map_err(|e| e.to_string())?;
    let rows_back = recovered.dump_table(TABLE).map_err(|e| e.to_string())?;
    if rows_back != reference {
        return Err(format!(
            "LOSS: recovered {} row(s), expected {}",
            rows_back.len(),
            reference.len()
        ));
    }
    println!(
        "recovery:          {} row(s), zero acknowledged loss",
        rows_back.len()
    );
    println!("outage drill PASSED");
    Ok(())
}

fn standby(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use ginja::cloud::MemStore;
    use ginja::core::{recover_into, Ginja};
    use ginja::db::{Database, DbProfile};
    use ginja::standby::{Standby, StandbyConfig};
    use ginja::vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

    /// Table the drill writes its rows into.
    const TABLE: u32 = 17;

    let parse_num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            Some(raw) => raw.parse().map_err(|_| format!("bad {flag} value: {raw}")),
            None => Ok(default),
        }
    };
    let rows = parse_num("--rows", 200)?.max(8);
    let waves = parse_num("--waves", 4)?.max(1);
    let promote = args.iter().any(|a| a == "--promote");

    let profile = DbProfile::postgres_small();
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).map_err(|e| e.to_string())?;
    db.create_table(TABLE, 256).map_err(|e| e.to_string())?;
    drop(db);

    let mem = Arc::new(MemStore::new());
    let config = GinjaConfig::builder()
        .batch(2)
        .safety((rows as usize) * 2 + 64)
        .batch_timeout(Duration::from_millis(5))
        .build()
        .map_err(|e| e.to_string())?;
    let ginja = Ginja::boot(
        local.clone(),
        mem.clone(),
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .map_err(|e| e.to_string())?;
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).map_err(|e| e.to_string())?;

    // The standby shares the instance's resilient store (one ledger,
    // one breaker) and tails into its own shadow directory.
    let standby = Standby::for_instance(&ginja, Arc::new(MemFs::new()), StandbyConfig::default())
        .map_err(|e| e.to_string())?;

    println!(
        "standby drill:     {rows} row(s) across {waves} wave(s), S = {}",
        config.safety
    );
    println!("wave    delta  gets     bytes  lag-objs  lag-bytes  pace");
    let per_wave = rows.div_ceil(waves);
    let mut written = 0u64;
    for wave in 0..waves {
        let until = ((wave + 1) * per_wave).min(rows);
        while written < until {
            db.put(TABLE, written, format!("standby-{written}").into_bytes())
                .map_err(|e| e.to_string())?;
            written += 1;
        }
        if !ginja.sync(Duration::from_secs(30)) {
            return Err(format!("wave {wave} failed to drain"));
        }
        let report = standby.run_cycle().map_err(|e| e.to_string())?;
        let snap = standby.snapshot();
        println!(
            "{wave:>4}  {:>7}  {:>4}  {:>8}  {:>8}  {:>9}  {:.2}x",
            report.delta_added,
            report.gets,
            report.bytes_fetched,
            snap.lag_objects,
            snap.lag_bytes,
            snap.pace_permille as f64 / 1000.0
        );
    }
    let idle = standby.run_cycle().map_err(|e| e.to_string())?;
    if idle.gets != 0 {
        return Err(format!("idle cycle still fetched: {idle:?}"));
    }
    let snap = standby.snapshot();
    if snap.lag_objects != 0 {
        return Err(format!("tail never drained: {snap:?}"));
    }
    println!(
        "tail drained:      {} cycle(s), {} GET(s), {} byte(s), {} reset(s)",
        snap.tail_cycles, snap.gets, snap.bytes_fetched, snap.resets
    );

    let reference = db.dump_table(TABLE).map_err(|e| e.to_string())?;
    if promote {
        // Cold baseline on the same bucket: full dump + WAL replay
        // into a fresh directory, timed the same way promotion is.
        let cold_start = Instant::now();
        let cold_fs = Arc::new(MemFs::new());
        recover_into(cold_fs.as_ref(), mem.as_ref(), &config).map_err(|e| e.to_string())?;
        let cold = cold_start.elapsed();

        let report = standby.promote().map_err(|e| e.to_string())?;
        ginja.shutdown();
        let promoted =
            Database::open(standby.shadow(), profile.clone()).map_err(|e| e.to_string())?;
        let rows_back = promoted.dump_table(TABLE).map_err(|e| e.to_string())?;
        let lost = reference.len().saturating_sub(rows_back.len());
        println!(
            "promotion:         caught_up {} ({} residual object(s), {} byte(s))",
            report.caught_up, report.residual_objects, report.residual_bytes
        );
        println!(
            "achieved RTO:      {:.1?} (cold recovery of the same bucket: {:.1?})",
            report.rto, cold
        );
        println!(
            "achieved RPO:      {lost} update(s) lost of {} (Safety bound S = {})",
            reference.len(),
            config.safety
        );
        if rows_back != reference {
            return Err(format!(
                "LOSS: promoted shadow has {} row(s), expected {}",
                rows_back.len(),
                reference.len()
            ));
        }
    } else {
        ginja.shutdown();
        standby.shutdown();
    }
    println!("standby drill PASSED");
    Ok(())
}
