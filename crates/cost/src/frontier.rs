//! The $1/month capacity frontier of Figure 1.
//!
//! Figure 1 plots, for an S3-based DR solution, the database size and
//! number of cloud synchronizations per hour that a fixed monthly
//! budget affords: `cost = size × C_Storage + syncs/month × C_PUT`.
//! Example points from §3: 4.3 GB at 4 syncs/minute (setup C), 20 GB at
//! 2 syncs/minute (setup B), 35 GB at one sync every 72 s (setup A).
//!
//! The API is the [`Budget`] type: construct one from a monthly dollar
//! figure and a price sheet, then ask it for costs, affordable sizes,
//! and the frontier series. The old free functions remain as deprecated
//! `#[doc(hidden)]` shims for one release; nothing in the workspace
//! calls them anymore.

use crate::pricing::S3Pricing;

/// Hours per 30-day month.
pub(crate) const HOURS_PER_MONTH: f64 = 30.0 * 24.0;

/// A monthly dollar budget against a price sheet — the unit of account
/// for Figure 1 and the live cost governor.
///
/// ```rust
/// use ginja_cost::{Budget, S3Pricing};
///
/// let budget = Budget::new(1.0); // the paper's one dollar
/// // Setup A from §3: 35 GB synchronized once every 72 s (50/hour).
/// assert!((budget.monthly_cost_simple(35.0, 50.0) - 1.0).abs() < 0.05);
/// assert!(budget.max_db_size_gb(50.0) > 30.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Dollars per month.
    pub monthly_usd: f64,
    /// Price sheet the budget is spent against.
    pub pricing: S3Pricing,
}

impl Budget {
    /// A budget of `monthly_usd` against the paper's May-2017 S3 sheet.
    pub fn new(monthly_usd: f64) -> Self {
        Budget {
            monthly_usd,
            pricing: S3Pricing::may_2017(),
        }
    }

    /// A budget against an explicit price sheet.
    pub fn with_pricing(monthly_usd: f64, pricing: S3Pricing) -> Self {
        Budget {
            monthly_usd,
            pricing,
        }
    }

    /// Monthly cost of the simple Figure 1 setup: storing `db_size_gb`
    /// and uploading `syncs_per_hour` batches per hour.
    pub fn monthly_cost_simple(&self, db_size_gb: f64, syncs_per_hour: f64) -> f64 {
        db_size_gb * self.pricing.storage_gb_month
            + syncs_per_hour * HOURS_PER_MONTH * self.pricing.put_op
    }

    /// Largest database size affordable at `syncs_per_hour` under this
    /// budget (the Figure 1 curve). Zero when the PUTs alone exceed the
    /// budget.
    pub fn max_db_size_gb(&self, syncs_per_hour: f64) -> f64 {
        let put_cost = syncs_per_hour * HOURS_PER_MONTH * self.pricing.put_op;
        ((self.monthly_usd - put_cost) / self.pricing.storage_gb_month).max(0.0)
    }

    /// Samples the frontier at each of `syncs_per_hour`, returning
    /// `(syncs/hour, max DB size GB)` pairs — the series Figure 1 plots.
    pub fn frontier(&self, syncs_per_hour: impl IntoIterator<Item = f64>) -> Vec<(f64, f64)> {
        syncs_per_hour
            .into_iter()
            .map(|rate| (rate, self.max_db_size_gb(rate)))
            .collect()
    }
}

/// Monthly cost of the simple Figure 1 setup.
#[doc(hidden)]
#[deprecated(since = "0.1.0", note = "use Budget::monthly_cost_simple instead")]
pub fn monthly_cost_simple(db_size_gb: f64, syncs_per_hour: f64, pricing: &S3Pricing) -> f64 {
    Budget::with_pricing(0.0, *pricing).monthly_cost_simple(db_size_gb, syncs_per_hour)
}

/// Largest database size affordable at `syncs_per_hour` under `budget`
/// dollars per month.
#[doc(hidden)]
#[deprecated(since = "0.1.0", note = "use Budget::max_db_size_gb instead")]
pub fn max_db_size_gb(syncs_per_hour: f64, budget: f64, pricing: &S3Pricing) -> f64 {
    Budget::with_pricing(budget, *pricing).max_db_size_gb(syncs_per_hour)
}

/// Samples the frontier at each of `syncs_per_hour`.
#[doc(hidden)]
#[deprecated(since = "0.1.0", note = "use Budget::frontier instead")]
pub fn budget_frontier(
    syncs_per_hour: impl IntoIterator<Item = f64>,
    budget: f64,
    pricing: &S3Pricing,
) -> Vec<(f64, f64)> {
    Budget::with_pricing(budget, *pricing).frontier(syncs_per_hour)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_dollar() -> Budget {
        Budget::new(1.0)
    }

    #[test]
    fn setup_c_from_section_3() {
        // "4.3GB with four synchronizations per minute" → 240/hour.
        let cost = one_dollar().monthly_cost_simple(4.3, 240.0);
        assert!((cost - 1.0).abs() < 0.05, "got {cost}");
    }

    #[test]
    fn setup_b_from_section_3() {
        // "a 20GB database with two synchronizations per minute".
        let cost = one_dollar().monthly_cost_simple(20.0, 120.0);
        assert!((cost - 1.0).abs() < 0.15, "got {cost}");
    }

    #[test]
    fn setup_a_from_section_3() {
        // "a 35GB database synchronized once every 72 seconds" → 50/hour.
        let cost = one_dollar().monthly_cost_simple(35.0, 50.0);
        assert!((cost - 1.0).abs() < 0.05, "got {cost}");
    }

    #[test]
    fn frontier_is_monotonically_decreasing() {
        let series = one_dollar().frontier((0..=250).step_by(10).map(|x| x as f64));
        for pair in series.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "{pair:?}");
        }
        // Left end: ~$1 of pure storage ≈ 43 GB.
        assert!((series[0].1 - 43.47).abs() < 0.1);
    }

    #[test]
    fn budget_exhausted_by_puts_gives_zero_size() {
        // 280 syncs/hour ≈ $1.008 of PUTs alone.
        assert_eq!(one_dollar().max_db_size_gb(300.0), 0.0);
    }

    #[test]
    fn below_frontier_is_below_budget() {
        let budget = one_dollar();
        for rate in [10.0, 60.0, 120.0, 240.0] {
            let max = budget.max_db_size_gb(rate);
            if max > 0.5 {
                assert!(budget.monthly_cost_simple(max - 0.5, rate) < 1.0);
            }
            assert!(budget.monthly_cost_simple(max + 1.0, rate) > 1.0);
        }
    }

    #[test]
    fn explicit_pricing_agrees_with_default_sheet() {
        // `Budget::new` and `Budget::with_pricing(May-2017)` must be
        // the same budget — the path every migrated shim caller takes.
        let budget = Budget::with_pricing(1.0, S3Pricing::may_2017());
        assert_eq!(
            budget.monthly_cost_simple(20.0, 120.0),
            one_dollar().monthly_cost_simple(20.0, 120.0)
        );
        assert_eq!(
            budget.max_db_size_gb(120.0),
            one_dollar().max_db_size_gb(120.0)
        );
        assert_eq!(
            budget.frontier([50.0, 120.0]),
            one_dollar().frontier([50.0, 120.0])
        );
    }
}
