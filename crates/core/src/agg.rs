//! Write aggregation (Algorithm 2, `aggregateUpdates`).
//!
//! "The DBMS write to the log on the granularity of a page, and many
//! times these pages are overwritten with more updates. Consequently, by
//! aggregating them we coalesce many updates in a single cloud object
//! upload" (§5.3). Aggregation applies last-write-wins semantics over
//! byte ranges and merges overlapping/adjacent ranges per file; a batch
//! of B page writes typically collapses to a single contiguous range
//! (one cloud object).

use std::collections::BTreeMap;

use ginja_codec::bufpool;

use crate::outage::OutageState;
use crate::queue::WalWrite;
use crate::stats::GinjaStatsSnapshot;

/// One coalesced byte range of one WAL segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatedRange {
    /// Segment file path.
    pub file: String,
    /// Start offset of the range.
    pub offset: u64,
    /// The range's bytes (later writes already applied over earlier).
    pub data: Vec<u8>,
}

/// Coalesces a batch of writes into per-file contiguous ranges, applying
/// them in arrival order (last write wins), then splits any range larger
/// than `max_chunk` bytes.
pub fn aggregate(writes: &[WalWrite], max_chunk: usize) -> Vec<AggregatedRange> {
    let mut files: BTreeMap<&str, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
    for w in writes {
        let ranges = files.entry(&*w.file).or_default();
        apply(ranges, w.offset, &w.data);
    }

    let mut out = Vec::new();
    for (file, ranges) in files {
        for (offset, data) in ranges {
            if data.len() <= max_chunk {
                // Common case (the paper's "typically one object per
                // batch"): move the merged buffer straight into the
                // output instead of copying it.
                out.push(AggregatedRange {
                    file: file.to_string(),
                    offset,
                    data,
                });
                continue;
            }
            // Split oversized ranges at the object-size cap, chunks
            // drawn from the pool; the merged source buffer goes back.
            let mut chunk_off = offset;
            let mut rest: &[u8] = &data;
            while rest.len() > max_chunk {
                let mut chunk = bufpool::take();
                chunk.extend_from_slice(&rest[..max_chunk]);
                out.push(AggregatedRange {
                    file: file.to_string(),
                    offset: chunk_off,
                    data: chunk,
                });
                chunk_off += max_chunk as u64;
                rest = &rest[max_chunk..];
            }
            let mut tail = bufpool::take();
            tail.extend_from_slice(rest);
            out.push(AggregatedRange {
                file: file.to_string(),
                offset: chunk_off,
                data: tail,
            });
            bufpool::recycle(data);
        }
    }
    out
}

/// Applies one write into a per-file range map, merging every range it
/// overlaps or touches.
pub fn apply(ranges: &mut BTreeMap<u64, Vec<u8>>, offset: u64, data: &[u8]) {
    let end = offset + data.len() as u64;
    // Candidates: ranges starting at or before `end` whose own end
    // reaches `offset` (overlap or adjacency).
    let touching: Vec<u64> = ranges
        .range(..=end)
        .filter(|(start, v)| **start + v.len() as u64 >= offset)
        .map(|(start, _)| *start)
        .collect();

    if touching.is_empty() {
        let mut fresh = bufpool::take();
        fresh.extend_from_slice(data);
        ranges.insert(offset, fresh);
        return;
    }

    let mut merged_start = offset;
    let mut merged_end = end;
    for start in &touching {
        let len = ranges[start].len() as u64;
        merged_start = merged_start.min(*start);
        merged_end = merged_end.max(start + len);
    }
    // Pooled merge buffer: under a steady WAL stream the aggregator
    // thread re-merges the tail range every batch, so this buffer (and
    // the superseded ranges recycled below) cycle through the
    // thread-local pool instead of the allocator.
    let mut buf = bufpool::take();
    buf.resize((merged_end - merged_start) as usize, 0);
    for start in touching {
        let old = ranges.remove(&start).expect("candidate vanished");
        let at = (start - merged_start) as usize;
        buf[at..at + old.len()].copy_from_slice(&old);
        bufpool::recycle(old);
    }
    let at = (offset - merged_start) as usize;
    buf[at..at + data.len()].copy_from_slice(data);
    ranges.insert(merged_start, buf);
}

/// Exact fleet-wide totals over per-tenant [`GinjaStatsSnapshot`]s.
///
/// Every counter is widened to `u128` before summing, so the rollup is
/// *exact* — no saturating addition can silently lose a tenant's
/// contribution — and, addition being commutative and associative with
/// no overflow possible (summing `u64`s cannot reach `u128::MAX` for
/// any realistic tenant count), *order-independent*: rolling up the
/// same snapshots in any permutation yields the same totals. Durations
/// are summed as integer microseconds for the same reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotTotals {
    /// Snapshots absorbed into these totals.
    pub tenants: u64,
    /// Sum of `updates_intercepted`.
    pub updates_intercepted: u128,
    /// Sum of `updates_blocked`.
    pub updates_blocked: u128,
    /// Sum of `blocked_time`, in microseconds.
    pub blocked_micros: u128,
    /// Sum of `batches_formed`.
    pub batches_formed: u128,
    /// Sum of `wal_objects_uploaded`.
    pub wal_objects_uploaded: u128,
    /// Sum of `wal_bytes_raw`.
    pub wal_bytes_raw: u128,
    /// Sum of `wal_bytes_sealed`.
    pub wal_bytes_sealed: u128,
    /// Sum of `db_objects_uploaded`.
    pub db_objects_uploaded: u128,
    /// Sum of `db_bytes_raw`.
    pub db_bytes_raw: u128,
    /// Sum of `db_bytes_sealed`.
    pub db_bytes_sealed: u128,
    /// Sum of `checkpoints_seen`.
    pub checkpoints_seen: u128,
    /// Sum of `dumps_uploaded`.
    pub dumps_uploaded: u128,
    /// Sum of `gc_deletes`.
    pub gc_deletes: u128,
    /// Sum of `gc_backlog` (a gauge per tenant; the sum is the fleet's
    /// outstanding deferred-DELETE backlog).
    pub gc_backlog: u128,
    /// Sum of `upload_retries`.
    pub upload_retries: u128,
    /// Sum of `wal_resync_objects`.
    pub wal_resync_objects: u128,
    /// Sum of `pipeline_fatals`.
    pub pipeline_fatals: u128,
    /// Sum of `fanout_waves`.
    pub fanout_waves: u128,
    /// Sum of `fanout_jobs`.
    pub fanout_jobs: u128,
    /// Sum of `cloud_retries`.
    pub cloud_retries: u128,
    /// Sum of `breaker_trips`.
    pub breaker_trips: u128,
    /// Sum of `breaker_fast_fails`.
    pub breaker_fast_fails: u128,
    /// Sum of `sentinel.objects_scrubbed`.
    pub objects_scrubbed: u128,
    /// Sum of all three sentinel anomaly classes.
    pub scrub_anomalies: u128,
    /// Sum of `sentinel.repairs_uploaded`.
    pub repairs_uploaded: u128,
    /// Sum of `sentinel.repairs_failed`.
    pub repairs_failed: u128,
    /// Sum of `sentinel.rehearsal_failures`.
    pub rehearsal_failures: u128,
    /// Sum of `governor.spent_microusd`.
    pub spent_microusd: u128,
    /// Sum of `governor.projected_microusd`.
    pub projected_microusd: u128,
    /// Sum of `governor.decisions`.
    pub governor_decisions: u128,
    /// Sum of `outage.outages` (outage episodes entered).
    pub outages: u128,
    /// Sum of `outage.sheds` (spill-ceiling shed events).
    pub outage_sheds: u128,
    /// Sum of `outage.spill_records` (a gauge per tenant; the sum is
    /// the fleet's outstanding spilled-but-unuploaded backlog).
    pub spill_records: u128,
    /// Sum of `outage.spill_bytes` (gauge, like `spill_records`).
    pub spill_bytes: u128,
    /// Sum of `gc_backlog_dropped`.
    pub gc_backlog_dropped: u128,
    /// Sum of `ingest.put_parks` (producers that exhausted their spin
    /// budget and slept on the Safety bound).
    pub ingest_put_parks: u128,
    /// Sum of `ingest.credit_retries` (CAS retries on the admission
    /// credit counter — the fleet's ingest-contention gauge).
    pub ingest_credit_retries: u128,
    /// Sum of `ingest.ack_wakeups` (targeted post-durability wakeups).
    pub ingest_ack_wakeups: u128,
    /// Sum of `ingest.adaptive_seals` (partial batches sealed early for
    /// parked producers).
    pub ingest_adaptive_seals: u128,
    /// Sum of `standby.tail_cycles` (warm-standby tail polls).
    pub standby_tail_cycles: u128,
    /// Sum of `standby.gets` (objects the standby tails fetched — the
    /// fleet's standby GET spend).
    pub standby_gets: u128,
    /// Sum of `standby.lag_objects` (a gauge per tenant; the sum is
    /// the fleet's total unabsorbed backlog behind its standbys).
    pub standby_lag_objects: u128,
    /// Sum of `standby.lag_bytes` (gauge, like `standby_lag_objects`).
    pub standby_lag_bytes: u128,
    /// Sum of `standby.promotions`.
    pub standby_promotions: u128,
    /// Tenants whose sentinel flags the backup as degraded.
    pub degraded_tenants: u64,
    /// Tenants currently enduring an outage (`Enduring` or `Shedding`).
    pub enduring_tenants: u64,
    /// Tenants currently shedding (spill backlog at the disk ceiling).
    pub shedding_tenants: u64,
}

impl SnapshotTotals {
    /// Adds one tenant's snapshot into the totals.
    pub fn absorb(&mut self, snap: &GinjaStatsSnapshot) {
        self.tenants += 1;
        self.updates_intercepted += u128::from(snap.updates_intercepted);
        self.updates_blocked += u128::from(snap.updates_blocked);
        self.blocked_micros += snap.blocked_time.as_micros();
        self.batches_formed += u128::from(snap.batches_formed);
        self.wal_objects_uploaded += u128::from(snap.wal_objects_uploaded);
        self.wal_bytes_raw += u128::from(snap.wal_bytes_raw);
        self.wal_bytes_sealed += u128::from(snap.wal_bytes_sealed);
        self.db_objects_uploaded += u128::from(snap.db_objects_uploaded);
        self.db_bytes_raw += u128::from(snap.db_bytes_raw);
        self.db_bytes_sealed += u128::from(snap.db_bytes_sealed);
        self.checkpoints_seen += u128::from(snap.checkpoints_seen);
        self.dumps_uploaded += u128::from(snap.dumps_uploaded);
        self.gc_deletes += u128::from(snap.gc_deletes);
        self.gc_backlog += u128::from(snap.gc_backlog);
        self.upload_retries += u128::from(snap.upload_retries);
        self.wal_resync_objects += u128::from(snap.wal_resync_objects);
        self.pipeline_fatals += u128::from(snap.pipeline_fatals);
        self.fanout_waves += u128::from(snap.fanout_waves);
        self.fanout_jobs += u128::from(snap.fanout_jobs);
        self.cloud_retries += u128::from(snap.cloud_retries);
        self.breaker_trips += u128::from(snap.breaker_trips);
        self.breaker_fast_fails += u128::from(snap.breaker_fast_fails);
        self.objects_scrubbed += u128::from(snap.sentinel.objects_scrubbed);
        self.scrub_anomalies += u128::from(snap.sentinel.anomalies_missing)
            + u128::from(snap.sentinel.anomalies_corrupt)
            + u128::from(snap.sentinel.anomalies_orphan);
        self.repairs_uploaded += u128::from(snap.sentinel.repairs_uploaded);
        self.repairs_failed += u128::from(snap.sentinel.repairs_failed);
        self.rehearsal_failures += u128::from(snap.sentinel.rehearsal_failures);
        self.spent_microusd += u128::from(snap.governor.spent_microusd);
        self.projected_microusd += u128::from(snap.governor.projected_microusd);
        self.governor_decisions += u128::from(snap.governor.decisions);
        self.outages += u128::from(snap.outage.outages);
        self.outage_sheds += u128::from(snap.outage.sheds);
        self.spill_records += u128::from(snap.outage.spill_records);
        self.spill_bytes += u128::from(snap.outage.spill_bytes);
        self.gc_backlog_dropped += u128::from(snap.gc_backlog_dropped);
        self.ingest_put_parks += u128::from(snap.ingest.put_parks);
        self.ingest_credit_retries += u128::from(snap.ingest.credit_retries);
        self.ingest_ack_wakeups += u128::from(snap.ingest.ack_wakeups);
        self.ingest_adaptive_seals += u128::from(snap.ingest.adaptive_seals);
        self.standby_tail_cycles += u128::from(snap.standby.tail_cycles);
        self.standby_gets += u128::from(snap.standby.gets);
        self.standby_lag_objects += u128::from(snap.standby.lag_objects);
        self.standby_lag_bytes += u128::from(snap.standby.lag_bytes);
        self.standby_promotions += u128::from(snap.standby.promotions);
        self.degraded_tenants += u64::from(snap.sentinel.degraded);
        self.enduring_tenants += u64::from(matches!(
            snap.outage.state,
            OutageState::Enduring | OutageState::Shedding
        ));
        self.shedding_tenants += u64::from(snap.outage.state == OutageState::Shedding);
    }

    /// Whether the fleet looks healthy in aggregate: no pipeline stage
    /// has died, no repair or rehearsal has failed, and no tenant's
    /// sentinel flags degradation.
    pub fn healthy(&self) -> bool {
        self.pipeline_fatals == 0
            && self.repairs_failed == 0
            && self.rehearsal_failures == 0
            && self.degraded_tenants == 0
    }
}

/// Rolls up per-tenant snapshots into exact fleet totals. The result is
/// independent of iteration order — see [`SnapshotTotals`].
pub fn rollup<'a, I>(snapshots: I) -> SnapshotTotals
where
    I: IntoIterator<Item = &'a GinjaStatsSnapshot>,
{
    let mut totals = SnapshotTotals::default();
    for snap in snapshots {
        totals.absorb(snap);
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn w(file: &str, offset: u64, data: &[u8]) -> WalWrite {
        WalWrite {
            file: file.into(),
            offset,
            data: Arc::from(data),
        }
    }

    const CAP: usize = 1 << 20;

    #[test]
    fn single_write_passthrough() {
        let out = aggregate(&[w("f", 8, b"abc")], CAP);
        assert_eq!(
            out,
            vec![AggregatedRange {
                file: "f".into(),
                offset: 8,
                data: b"abc".to_vec()
            }]
        );
    }

    #[test]
    fn rewritten_page_coalesces_to_one_range() {
        // The WAL tail-block pattern: the same page written repeatedly.
        let out = aggregate(
            &[w("f", 0, b"aaaa"), w("f", 0, b"bbbb"), w("f", 0, b"cccc")],
            CAP,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].data, b"cccc");
    }

    #[test]
    fn last_write_wins_on_partial_overlap() {
        let out = aggregate(&[w("f", 0, b"aaaaaa"), w("f", 2, b"BB")], CAP);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[0].data, b"aaBBaa");
    }

    #[test]
    fn adjacent_ranges_merge() {
        let out = aggregate(&[w("f", 0, b"aa"), w("f", 2, b"bb"), w("f", 4, b"cc")], CAP);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].data, b"aabbcc");
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let out = aggregate(&[w("f", 0, b"aa"), w("f", 100, b"bb")], CAP);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[1].offset, 100);
    }

    #[test]
    fn write_bridging_two_ranges_merges_all() {
        let out = aggregate(
            &[
                w("f", 0, b"aaaa"),
                w("f", 8, b"cccc"),
                w("f", 2, b"BBBBBBBB"),
            ],
            CAP,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[0].data, b"aaBBBBBBBBcc");
    }

    #[test]
    fn multiple_files_sorted_output() {
        let out = aggregate(&[w("zz", 0, b"2"), w("aa", 0, b"1")], CAP);
        assert_eq!(out[0].file, "aa");
        assert_eq!(out[1].file, "zz");
    }

    #[test]
    fn typical_batch_one_object() {
        // Paper §5.3 footnote 4: consecutive page writes to one segment
        // "typically results in only one cloud object".
        let writes: Vec<WalWrite> = (0..100u64)
            .map(|i| w("pg_xlog/0001", (i / 3) * 8192, &[i as u8; 8192]))
            .collect();
        let out = aggregate(&writes, CAP);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[0].data.len(), 34 * 8192);
    }

    #[test]
    fn oversized_range_split_at_cap() {
        let big = vec![7u8; 10_000];
        let out = aggregate(&[w("f", 0, &big)], 4096);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].data.len(), 4096);
        assert_eq!(out[1].data.len(), 4096);
        assert_eq!(out[2].data.len(), 10_000 - 8192);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[1].offset, 4096);
        assert_eq!(out[2].offset, 8192);
    }

    #[test]
    fn empty_batch_empty_output() {
        assert!(aggregate(&[], CAP).is_empty());
    }

    #[test]
    fn rollup_of_nothing_is_zero_and_healthy() {
        let totals = rollup([]);
        assert_eq!(totals, SnapshotTotals::default());
        assert_eq!(totals.tenants, 0);
        assert!(totals.healthy());
    }

    #[test]
    fn rollup_sums_are_exact_beyond_u64() {
        // Two tenants both pinned at u64::MAX: a saturating u64 sum
        // would silently clamp; the u128 rollup must not.
        let maxed = GinjaStatsSnapshot {
            updates_intercepted: u64::MAX,
            wal_bytes_sealed: u64::MAX,
            upload_retries: u64::MAX,
            ..Default::default()
        };
        let totals = rollup([&maxed, &maxed]);
        assert_eq!(totals.tenants, 2);
        assert_eq!(totals.updates_intercepted, 2 * u128::from(u64::MAX));
        assert_eq!(totals.wal_bytes_sealed, 2 * u128::from(u64::MAX));
        assert_eq!(totals.upload_retries, 2 * u128::from(u64::MAX));
        assert!(totals.updates_intercepted > u128::from(u64::MAX));
    }

    #[test]
    fn rollup_flags_unhealthy_tenants() {
        use crate::stats::SentinelSnapshot;
        let ok = GinjaStatsSnapshot::default();
        let fatal = GinjaStatsSnapshot {
            pipeline_fatals: 1,
            ..Default::default()
        };
        let degraded = GinjaStatsSnapshot {
            sentinel: SentinelSnapshot {
                degraded: true,
                rehearsal_failures: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(rollup([&ok, &ok]).healthy());
        let bad = rollup([&ok, &fatal, &degraded]);
        assert!(!bad.healthy());
        assert_eq!(bad.pipeline_fatals, 1);
        assert_eq!(bad.rehearsal_failures, 2);
        assert_eq!(bad.degraded_tenants, 1);
    }

    #[test]
    fn reconstruction_equals_replay() {
        // Property-style check: aggregating then applying ranges to a
        // buffer equals applying the raw writes in order.
        let writes = vec![
            w("f", 5, b"11111"),
            w("f", 0, b"222"),
            w("f", 3, b"3333"),
            w("f", 20, b"44"),
            w("f", 18, b"5555"),
        ];
        let mut direct = vec![0u8; 30];
        for wr in &writes {
            let at = wr.offset as usize;
            direct[at..at + wr.data.len()].copy_from_slice(&wr.data);
        }
        let mut via_agg = vec![0u8; 30];
        for range in aggregate(&writes, CAP) {
            let at = range.offset as usize;
            via_agg[at..at + range.data.len()].copy_from_slice(&range.data);
        }
        assert_eq!(direct, via_agg);
    }
}

#[cfg(test)]
mod rollup_props {
    use super::*;
    use crate::stats::{GovernorSnapshot, IngestSnapshot, SentinelSnapshot, StandbySnapshot};
    use proptest::prelude::*;
    use std::time::Duration;

    /// Builds a snapshot whose counters spread across the pipeline,
    /// sentinel and governor sections, so the properties exercise every
    /// summation path (including the composite `scrub_anomalies`).
    /// Short chunks are zero-padded.
    fn snap(chunk: &[u64]) -> GinjaStatsSnapshot {
        let mut v = [0u64; 8];
        v[..chunk.len()].copy_from_slice(chunk);
        let [a, b, c, d, e, f, g, h] = v;
        GinjaStatsSnapshot {
            updates_intercepted: a,
            updates_blocked: b,
            blocked_time: Duration::from_micros(c),
            wal_objects_uploaded: d,
            wal_bytes_sealed: e,
            gc_deletes: f,
            upload_retries: g,
            fanout_jobs: h,
            pipeline_fatals: a % 3,
            sentinel: SentinelSnapshot {
                objects_scrubbed: b,
                anomalies_missing: c % 11,
                anomalies_corrupt: d % 7,
                anomalies_orphan: e % 5,
                repairs_failed: f % 2,
                degraded: g % 4 == 0,
                ..Default::default()
            },
            governor: GovernorSnapshot {
                spent_microusd: h,
                projected_microusd: a,
                decisions: b % 1000,
                ..Default::default()
            },
            ingest: IngestSnapshot {
                put_parks: c,
                credit_retries: d,
                ack_wakeups: e,
                adaptive_seals: f,
                ..Default::default()
            },
            standby: StandbySnapshot {
                tail_cycles: g,
                gets: h,
                lag_objects: a % 13,
                lag_bytes: b,
                promotions: c % 9,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Deterministic Fisher–Yates permutation driven by `seed`.
    fn shuffle<T>(items: &mut [T], seed: u64) {
        let mut s = seed;
        for i in (1..items.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((s >> 33) as usize) % (i + 1);
            items.swap(i, j);
        }
    }

    /// Zero-pads a chunk to the 8 slots `snap` reads.
    fn padded(chunk: &[u64]) -> [u64; 8] {
        let mut v = [0u64; 8];
        v[..chunk.len()].copy_from_slice(chunk);
        v
    }

    proptest! {
        #[test]
        fn rollup_is_order_independent(
            vals in proptest::collection::vec(any::<u64>(), 0..96),
            seed in any::<u64>(),
        ) {
            let snaps: Vec<GinjaStatsSnapshot> = vals.chunks(8).map(snap).collect();
            let mut shuffled = snaps.clone();
            shuffle(&mut shuffled, seed);
            prop_assert_eq!(rollup(snaps.iter()), rollup(shuffled.iter()));
        }

        #[test]
        fn rollup_sums_are_exact(
            vals in proptest::collection::vec(any::<u64>(), 0..96),
        ) {
            let chunks: Vec<[u64; 8]> = vals.chunks(8).map(padded).collect();
            let snaps: Vec<GinjaStatsSnapshot> =
                chunks.iter().map(|c| snap(&c[..])).collect();
            let totals = rollup(snaps.iter());
            let expect = |f: &dyn Fn(&[u64; 8]) -> u64| -> u128 {
                chunks.iter().map(|v| u128::from(f(v))).sum()
            };
            prop_assert_eq!(totals.tenants as usize, chunks.len());
            prop_assert_eq!(totals.updates_intercepted, expect(&|v| v[0]));
            prop_assert_eq!(totals.updates_blocked, expect(&|v| v[1]));
            prop_assert_eq!(totals.blocked_micros, expect(&|v| v[2]));
            prop_assert_eq!(totals.wal_objects_uploaded, expect(&|v| v[3]));
            prop_assert_eq!(totals.wal_bytes_sealed, expect(&|v| v[4]));
            prop_assert_eq!(totals.gc_deletes, expect(&|v| v[5]));
            prop_assert_eq!(totals.upload_retries, expect(&|v| v[6]));
            prop_assert_eq!(totals.fanout_jobs, expect(&|v| v[7]));
            prop_assert_eq!(totals.spent_microusd, expect(&|v| v[7]));
            prop_assert_eq!(totals.ingest_put_parks, expect(&|v| v[2]));
            prop_assert_eq!(totals.ingest_credit_retries, expect(&|v| v[3]));
            prop_assert_eq!(totals.ingest_ack_wakeups, expect(&|v| v[4]));
            prop_assert_eq!(totals.ingest_adaptive_seals, expect(&|v| v[5]));
            prop_assert_eq!(totals.standby_tail_cycles, expect(&|v| v[6]));
            prop_assert_eq!(totals.standby_gets, expect(&|v| v[7]));
            prop_assert_eq!(totals.standby_lag_objects, expect(&|v| v[0] % 13));
            prop_assert_eq!(totals.standby_lag_bytes, expect(&|v| v[1]));
            prop_assert_eq!(totals.standby_promotions, expect(&|v| v[2] % 9));
            prop_assert_eq!(
                totals.scrub_anomalies,
                expect(&|v| v[2] % 11) + expect(&|v| v[3] % 7) + expect(&|v| v[4] % 5)
            );
            prop_assert_eq!(
                totals.degraded_tenants as u128,
                expect(&|v| u64::from(v[6] % 4 == 0))
            );
            // Exactness survives incremental absorption too.
            let mut acc = SnapshotTotals::default();
            for s in &snaps {
                acc.absorb(s);
            }
            prop_assert_eq!(acc, totals);
        }
    }
}
