//! Ablation: warm-standby promotion vs cold recovery across database
//! sizes.
//!
//! Three buckets of growing size (a dump plus a long WAL tail, GC held
//! off) are each recovered two ways through the same intra-region
//! latency model and the same download fan-out:
//!
//! * **cold** — `recover_into` from nothing: every surviving object is
//!   downloaded and replayed at disaster time;
//! * **standby** — a warm standby that tailed the bucket while the
//!   primary was alive, so disaster time only pays for the residual
//!   delta since its last poll (here: the last commit wave).
//!
//! The claim under test is the paper's RTO asymmetry: cold recovery
//! time grows with database size while promotion time tracks the
//! *delta*, so the gap widens as the database grows — at the largest
//! size the standby must cut RTO by at least 3×. The standby's tail
//! GETs are real, metered spend: the run also shows them in a governor
//! projection, and the Safety knob `S` is never touched.
//!
//! With `BENCH_PR10_OUT=<path>` the headline numbers are written as a
//! small JSON document (CI smoke archives a trend point from it).

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{time_scale, to_sim_duration};
use ginja_cloud::{LatencyModel, LatencyStore, MemStore, ObjectStore};
use ginja_core::{recover_into, Ginja, GinjaConfig, UsageMeter as _};
use ginja_cost::governor::project_spend;
use ginja_cost::BudgetConfig;
use ginja_db::{Database, DbProfile};
use ginja_standby::{Standby, StandbyConfig};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

const TABLE: u32 = 3;
/// Commit wave still in flight at disaster time — the only work a
/// promotion has to replay.
const DELTA_ROWS: u64 = 32;
/// Download fan-out, identical for both recovery paths.
const FANOUT: usize = 8;

struct SizeReport {
    base_rows: u64,
    objects: usize,
    tail_gets: u64,
    cold: Duration,
    promote: Duration,
    speedup: f64,
}

fn config(safety: usize) -> GinjaConfig {
    GinjaConfig::builder()
        .batch(4)
        .safety(safety)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(120))
        .recovery_fanout(FANOUT)
        .build()
        .expect("valid config")
}

fn run_size(base_rows: u64, scale: f64) -> SizeReport {
    // GC held off (no checkpoints): the WAL tail survives in full, so
    // the bucket — and with it cold recovery — grows with the row
    // count, exactly the regime the standby is for.
    let profile = DbProfile::postgres_small().with_checkpoint_every(100_000_000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).expect("create");
    db.create_table(TABLE, 128).expect("table");
    drop(db);

    let mem = Arc::new(MemStore::new());
    let config = config(base_rows as usize * 2 + 64);
    let ginja = Ginja::boot(
        local.clone(),
        mem.clone(),
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .expect("boot");
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).expect("open");

    // The standby reads the live bucket through the same intra-region
    // latency model cold recovery will pay at disaster time.
    let model = LatencyModel::s3_intra_region().scaled(scale);
    let lens: Arc<dyn ObjectStore> = Arc::new(LatencyStore::with_seed(
        mem.clone(),
        model.clone(),
        0x57A4D + base_rows,
    ));
    let standby = Standby::attach(
        lens,
        Arc::new(MemFs::new()),
        config.clone(),
        StandbyConfig {
            fanout: FANOUT,
            ..StandbyConfig::default()
        },
    )
    .expect("standby attaches");

    // The database's life before the disaster: the base rows land and
    // the tail absorbs them at leisure (this time is NOT RTO — the
    // primary is healthy while it happens).
    for seq in 0..base_rows {
        db.put(TABLE, seq, format!("base-{seq}").into_bytes())
            .expect("base row");
    }
    assert!(ginja.sync(Duration::from_secs(120)), "base wave drains");
    let report = standby.run_cycle().expect("tail cycle");
    assert!(report.rebased, "first cycle cold-applies the base");
    assert_eq!(report.lag_objects, 0, "tail drained: {report:?}");

    // The last commit wave: synced to the cloud, but the standby has
    // not polled since — this is the residual a promotion replays.
    for seq in base_rows..base_rows + DELTA_ROWS {
        db.put(TABLE, seq, format!("delta-{seq}").into_bytes())
            .expect("delta row");
    }
    assert!(ginja.sync(Duration::from_secs(120)), "delta wave drains");

    // Disaster. Both recovery paths read the same frozen bucket
    // through the same latency lens.
    let reference = db.dump_table(TABLE).expect("dump");
    ginja.shutdown();
    drop(db);
    let objects = mem.list("").expect("list").len();

    let cold_lens = LatencyStore::with_seed(mem.clone(), model, 0xC01D + base_rows);
    let cold_fs = Arc::new(MemFs::new());
    let t0 = Instant::now();
    recover_into(cold_fs.as_ref(), &cold_lens, &config).expect("cold recovery");
    let cold = t0.elapsed();
    let cold_db = Database::open(cold_fs, profile.clone()).expect("cold db opens");
    assert_eq!(
        cold_db.dump_table(TABLE).expect("dump"),
        reference,
        "cold recovery lost rows"
    );

    let promo = standby.promote().expect("promotion");
    assert!(promo.caught_up, "quiescent bucket: {promo:?}");
    let promoted = Database::open(standby.shadow(), profile).expect("promoted db opens");
    assert_eq!(
        promoted.dump_table(TABLE).expect("dump"),
        reference,
        "promotion lost rows"
    );

    // The tail's spend is real and metered: a governor projection over
    // the standby's own ledger must show the GETs it paid for.
    let usage = standby.ledger().usage();
    assert!(usage.gets > 0, "tail GETs unmetered: {usage:?}");
    let projection = project_spend(
        &usage,
        None,
        Duration::from_secs(3600),
        &BudgetConfig::new(1.0),
    );
    assert!(
        projection.spent_usd > 0.0,
        "standby spend invisible to the governor: {projection:?}"
    );
    // And the knob contract: tailing and promotion never move S.
    assert_eq!(config.safety, base_rows as usize * 2 + 64, "S moved");

    SizeReport {
        base_rows,
        objects,
        tail_gets: usage.gets,
        cold,
        promote: promo.rto,
        speedup: cold.as_secs_f64() / promo.rto.as_secs_f64().max(1e-9),
    }
}

fn main() {
    let scale = time_scale();
    println!("time scale: {scale}");
    println!("== Ablation: warm-standby promotion vs cold recovery ==\n");
    println!(
        "{DELTA_ROWS}-row residual delta, fanout {FANOUT}, intra-region \
         latency model, GC held off\n"
    );

    let reports: Vec<SizeReport> = [96u64, 384, 1536]
        .into_iter()
        .map(|rows| run_size(rows, scale))
        .collect();

    let mut t = Table::new(&[
        "base rows",
        "bucket objs",
        "tail GETs",
        "cold RTO (sim s)",
        "promote RTO (sim s)",
        "RTO cut",
    ]);
    for r in &reports {
        t.row(&[
            r.base_rows.to_string(),
            r.objects.to_string(),
            r.tail_gets.to_string(),
            fmt(to_sim_duration(r.cold).as_secs_f64(), 2),
            fmt(to_sim_duration(r.promote).as_secs_f64(), 3),
            format!("{:.1}x", r.speedup),
        ]);
    }
    t.print();

    // -- Acceptance. -------------------------------------------------
    // Cold recovery grows with database size; promotion does not have
    // to (it tracks the delta), so the cut must widen — and at the
    // largest size it must be at least 3×.
    let largest = reports.last().expect("three sizes ran");
    assert!(
        to_sim_duration(largest.cold) > to_sim_duration(reports[0].cold),
        "cold RTO did not grow with database size"
    );
    assert!(
        largest.speedup >= 3.0,
        "standby must cut RTO >= 3x at {} rows, got {:.1}x ({:?} cold vs {:?} promote)",
        largest.base_rows,
        largest.speedup,
        largest.cold,
        largest.promote,
    );

    println!(
        "\nshape check: {}-row bucket — cold replays {} object(s) in {:.2?} (sim), \
         promotion replays the {DELTA_ROWS}-row residual in {:.3?} (sim): {:.1}x",
        largest.base_rows,
        largest.objects,
        to_sim_duration(largest.cold),
        to_sim_duration(largest.promote),
        largest.speedup,
    );

    if let Ok(path) = std::env::var("BENCH_PR10_OUT") {
        let per_size: Vec<String> = reports
            .iter()
            .map(|r| {
                format!(
                    "    {{\"base_rows\": {}, \"objects\": {}, \"tail_gets\": {}, \
                     \"cold_sim_secs\": {:.4}, \"promote_sim_secs\": {:.4}, \
                     \"speedup\": {:.2}}}",
                    r.base_rows,
                    r.objects,
                    r.tail_gets,
                    to_sim_duration(r.cold).as_secs_f64(),
                    to_sim_duration(r.promote).as_secs_f64(),
                    r.speedup,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"delta_rows\": {DELTA_ROWS},\n  \"fanout\": {FANOUT},\n  \
             \"largest_speedup\": {:.2},\n  \"sizes\": [\n{}\n  ]\n}}\n",
            largest.speedup,
            per_size.join(",\n"),
        );
        let mut file = std::fs::File::create(&path).expect("create BENCH_PR10_OUT");
        file.write_all(json.as_bytes())
            .expect("write BENCH_PR10_OUT");
        println!("\nwrote {path}");
    }
}
