use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::{FileSystem, FsError};

/// In-memory [`FileSystem`] — the default substrate for tests and
/// simulated experiments (fast and trivially wiped for disaster drills).
///
/// Every write is durable the instant it returns ("sync-transparent"):
/// there is no volatile page cache to lose, so `sync` only affects the
/// [`MemFs::synced_writes`]/[`MemFs::unsynced_writes`] counters. Tests
/// that need the real distinction — un-synced bytes that a power cut
/// destroys — wrap their workload in [`crate::JournaledFs`] instead.
#[derive(Debug, Default)]
pub struct MemFs {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
    synced_writes: AtomicU64,
    unsynced_writes: AtomicU64,
}

impl MemFs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Sum of all file sizes.
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|v| v.len() as u64).sum()
    }

    /// Writes that asked for durability (`sync == true`).
    pub fn synced_writes(&self) -> u64 {
        self.synced_writes.load(Ordering::Relaxed)
    }

    /// Writes that did not ask for durability (`sync == false`) — the
    /// ones a power cut would destroy on a real disk.
    pub fn unsynced_writes(&self) -> u64 {
        self.unsynced_writes.load(Ordering::Relaxed)
    }

    /// A deep copy of the current state — the benchmark harness loads a
    /// database once and forks it for each experiment configuration.
    /// Write counters start at zero in the copy.
    pub fn fork(&self) -> MemFs {
        MemFs {
            files: RwLock::new(self.files.read().clone()),
            synced_writes: AtomicU64::new(0),
            unsynced_writes: AtomicU64::new(0),
        }
    }
}

impl FileSystem for MemFs {
    fn create(&self, path: &str) -> Result<(), FsError> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        files.insert(path.to_string(), Vec::new());
        Ok(())
    }

    fn write(&self, path: &str, offset: u64, data: &[u8], sync: bool) -> Result<(), FsError> {
        if sync {
            self.synced_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.unsynced_writes.fetch_add(1, Ordering::Relaxed);
        }
        let mut files = self.files.write();
        let file = files.entry(path.to_string()).or_default();
        let offset = offset as usize;
        let end = offset + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset..end].copy_from_slice(data);
        Ok(())
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let files = self.files.read();
        let file = files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let offset = offset as usize;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| FsError::OutOfBounds {
                path: path.to_string(),
                offset: offset as u64,
                len: file.len() as u64,
            })?;
        if end > file.len() {
            return Err(FsError::OutOfBounds {
                path: path.to_string(),
                offset: offset as u64,
                len: file.len() as u64,
            });
        }
        Ok(file[offset..end].to_vec())
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn len(&self, path: &str) -> Result<u64, FsError> {
        self.files
            .read()
            .get(path)
            .map(|f| f.len() as u64)
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError> {
        let mut files = self.files.write();
        let file = files
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        file.resize(len as usize, 0);
        Ok(())
    }

    fn delete(&self, path: &str) -> Result<(), FsError> {
        self.files.write().remove(path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        let mut files = self.files.write();
        let data = files
            .remove(from)
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        files.insert(to.to_string(), data);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        let files = self.files.read();
        Ok(files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_write_read() {
        let fs = MemFs::new();
        fs.create("f").unwrap();
        fs.write("f", 0, b"hello", true).unwrap();
        assert_eq!(fs.read("f", 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read("f", 1, 3).unwrap(), b"ell");
    }

    #[test]
    fn create_existing_fails() {
        let fs = MemFs::new();
        fs.create("f").unwrap();
        assert!(matches!(fs.create("f"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn write_creates_implicitly_and_zero_fills() {
        let fs = MemFs::new();
        fs.write("f", 4, b"ab", false).unwrap();
        assert_eq!(fs.len("f").unwrap(), 6);
        assert_eq!(fs.read_all("f").unwrap(), vec![0, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn overwrite_middle() {
        let fs = MemFs::new();
        fs.write("f", 0, b"aaaaaa", false).unwrap();
        fs.write("f", 2, b"XX", false).unwrap();
        assert_eq!(fs.read_all("f").unwrap(), b"aaXXaa");
    }

    #[test]
    fn read_past_end_is_out_of_bounds() {
        let fs = MemFs::new();
        fs.write("f", 0, b"abc", false).unwrap();
        assert!(matches!(
            fs.read("f", 2, 5),
            Err(FsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            fs.read("f", 10, 1),
            Err(FsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn read_missing_file() {
        let fs = MemFs::new();
        assert!(matches!(fs.read("nope", 0, 1), Err(FsError::NotFound(_))));
        assert!(matches!(fs.read_all("nope"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.len("nope"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let fs = MemFs::new();
        fs.write("f", 0, b"abcdef", false).unwrap();
        fs.truncate("f", 3).unwrap();
        assert_eq!(fs.read_all("f").unwrap(), b"abc");
        fs.truncate("f", 5).unwrap();
        assert_eq!(fs.read_all("f").unwrap(), vec![b'a', b'b', b'c', 0, 0]);
    }

    #[test]
    fn rename_moves_content() {
        let fs = MemFs::new();
        fs.write("old", 0, b"x", false).unwrap();
        fs.rename("old", "new").unwrap();
        assert!(!fs.exists("old"));
        assert_eq!(fs.read_all("new").unwrap(), b"x");
        assert!(matches!(
            fs.rename("old", "other"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn list_prefix() {
        let fs = MemFs::new();
        fs.write("pg_xlog/001", 0, b"", false).unwrap();
        fs.write("pg_xlog/002", 0, b"", false).unwrap();
        fs.write("base/t1", 0, b"", false).unwrap();
        assert_eq!(
            fs.list("pg_xlog/").unwrap(),
            vec!["pg_xlog/001", "pg_xlog/002"]
        );
        assert_eq!(fs.list("").unwrap().len(), 3);
    }

    #[test]
    fn delete_and_wipe() {
        let fs = MemFs::new();
        fs.write("a", 0, b"1", false).unwrap();
        fs.write("b", 0, b"2", false).unwrap();
        fs.delete("a").unwrap();
        fs.delete("a").unwrap(); // idempotent
        assert_eq!(fs.file_count(), 1);
        fs.wipe().unwrap();
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn fork_is_independent() {
        let fs = MemFs::new();
        fs.write("a", 0, b"original", false).unwrap();
        let copy = fs.fork();
        copy.write("a", 0, b"modified", false).unwrap();
        copy.write("b", 0, b"new", false).unwrap();
        assert_eq!(fs.read_all("a").unwrap(), b"original");
        assert!(!fs.exists("b"));
        assert_eq!(copy.read_all("a").unwrap(), b"modified");
    }

    #[test]
    fn sync_flag_is_observed() {
        let fs = MemFs::new();
        fs.write("f", 0, b"a", true).unwrap();
        fs.write("f", 1, b"b", false).unwrap();
        fs.write("f", 2, b"c", false).unwrap();
        assert_eq!(fs.synced_writes(), 1);
        assert_eq!(fs.unsynced_writes(), 2);
        // Content is identical either way: MemFs stays sync-transparent.
        assert_eq!(fs.read_all("f").unwrap(), b"abc");
        let copy = fs.fork();
        assert_eq!(copy.synced_writes(), 0);
        assert_eq!(copy.unsynced_writes(), 0);
    }

    #[test]
    fn total_bytes_tracks_content() {
        let fs = MemFs::new();
        fs.write("a", 0, &[0u8; 100], false).unwrap();
        fs.write("b", 0, &[0u8; 20], false).unwrap();
        assert_eq!(fs.total_bytes(), 120);
    }
}
