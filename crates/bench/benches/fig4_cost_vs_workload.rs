//! Figure 4: effect of different configurations (B) and workloads (W,
//! updates/minute) on Ginja's monthly cost, for a 10 GB database on
//! Amazon S3 — both axes logarithmic in the paper.
//!
//! Model parameters (§7.2): 8 kB pages with 75 WAL records, checkpoints
//! every 60 minutes lasting 20 minutes, compression rate 1.43.

use ginja_bench::table::{fmt, Table};
use ginja_cost::GinjaCostModel;

fn main() {
    println!("== Figure 4: monthly cost vs. workload, 10 GB database ==\n");

    let workloads = [10.0, 18.0, 32.0, 56.0, 100.0, 180.0, 320.0, 560.0, 1000.0];
    let batches = [10u64, 100, 1000];

    let mut t = Table::new(&["W (upd/min)", "B=10 ($)", "B=100 ($)", "B=1000 ($)"]);
    for &w in &workloads {
        let costs: Vec<String> = batches
            .iter()
            .map(|&b| fmt(GinjaCostModel::paper_fig4(w, b).total(), 3))
            .collect();
        t.row(&[
            fmt(w, 0),
            costs[0].clone(),
            costs[1].clone(),
            costs[2].clone(),
        ]);
    }
    t.print();

    println!("\n-- Shape checks against the paper --");
    // B has a "severe impact on the total monetary cost".
    let high_w = 1000.0;
    let c10 = GinjaCostModel::paper_fig4(high_w, 10).total();
    let c1000 = GinjaCostModel::paper_fig4(high_w, 1000).total();
    println!(
        "  at W=1000: B=10 costs ${c10:.2}, B=1000 costs ${c1000:.2} ({:.0}x less)",
        c10 / c1000
    );
    assert!(c10 / c1000 > 20.0);

    // The 10 GB database pins a fixed storage floor of ≈ $0.20.
    let floor = GinjaCostModel::paper_fig4(10.0, 1000).c_db_storage();
    println!("  fixed C_DB_Storage floor: ${floor:.3} (paper: ~$0.20)");
    assert!((0.17..=0.23).contains(&floor));

    // Plenty of sub-$1 configurations exist.
    let under: usize = workloads
        .iter()
        .flat_map(|&w| batches.iter().map(move |&b| (w, b)))
        .filter(|&(w, b)| GinjaCostModel::paper_fig4(w, b).total() < 1.0)
        .count();
    println!(
        "  configurations under $1/month: {under} of {}",
        workloads.len() * batches.len()
    );
    assert!(under >= 12);
}
