//! CRC-32 (IEEE 802.3 polynomial), used to validate WAL blocks, table
//! pages and control records after a crash.

/// Lazily-built lookup table for the reflected polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data`.
///
/// ```rust
/// assert_eq!(ginja_db::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_change() {
        let base = crc32(b"hello world");
        assert_ne!(base, crc32(b"hello worlD"));
        assert_ne!(base, crc32(b"hello worl"));
        assert_ne!(base, crc32(b"hello world "));
    }
}
