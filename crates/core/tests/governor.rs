//! Live cost-governor tests: a real pipeline under a budget, with the
//! governor polling the usage ledger and retuning knobs at runtime.

use std::sync::Arc;
use std::time::Duration;

use ginja_cloud::{MemStore, UsageMeter};
use ginja_core::{recover_into, BudgetConfig, Ginja, GinjaConfig};
use ginja_db::{Database, DbProfile};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

/// A budget so small that the first metered PUT blows it: every poll
/// escalates until the knobs pin at their bounds.
fn starvation_budget() -> BudgetConfig {
    let mut budget = BudgetConfig::new(0.000_001);
    budget.month = Duration::from_secs(60);
    budget.poll_interval = Duration::from_millis(25);
    budget
}

fn governed_config(budget: Option<BudgetConfig>) -> GinjaConfig {
    let mut builder = GinjaConfig::builder()
        .batch(2)
        .safety(16)
        .batch_timeout(Duration::from_millis(20))
        .safety_timeout(Duration::from_secs(30))
        .uploaders(2);
    if let Some(budget) = budget {
        builder = builder.budget(budget);
    }
    builder.build().unwrap()
}

fn protect(config: GinjaConfig, cloud: Arc<MemStore>) -> (Database, Ginja) {
    let profile = DbProfile::postgres_small();
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config,
    )
    .unwrap();
    let intercepted: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(intercepted, profile).unwrap();
    (db, ginja)
}

#[test]
fn governor_escalates_under_pressure_but_never_past_safety() {
    let cloud = Arc::new(MemStore::new());
    let config = governed_config(Some(starvation_budget()));
    let (db, ginja) = protect(config.clone(), cloud.clone());

    for i in 0..200u64 {
        db.put(1, i, format!("row-{i}").into_bytes()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(10)), "pipeline must drain");
    // Give the governor a few poll intervals to observe and react.
    std::thread::sleep(Duration::from_millis(200));

    let snap = ginja.stats().governor;
    assert!(snap.enabled);
    assert!(snap.spent_microusd > 0, "metered PUTs must price as spend");
    assert!(snap.projected_microusd >= snap.spent_microusd);
    assert!(snap.escalations >= 1, "an impossible budget must escalate");
    assert_eq!(snap.decisions, snap.escalations + snap.relaxations);
    // B escalated above the configured baseline — but S is sacred.
    assert!(snap.batch > config.batch as u64, "batch {}", snap.batch);
    assert!(snap.batch <= config.safety as u64);
    assert!(ginja.governed_scrub_interval() >= config.sentinel.scrub_interval);
    assert!(ginja.dump_threshold() >= config.dump_threshold);
    assert!(ginja.sentinel_pace() >= 1.0);

    let exposure = ginja.exposure();
    assert!(
        exposure.over_budget,
        "projection must exceed the $1e-6 budget"
    );
    assert_eq!(exposure.projected_spend_microusd, snap.projected_microusd);

    // Budget pressure must not cost data: everything acked recovers.
    ginja.shutdown();
    drop(db);
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, DbProfile::postgres_small()).unwrap();
    for i in 0..200u64 {
        assert_eq!(
            db.get(1, i).unwrap().unwrap(),
            format!("row-{i}").into_bytes()
        );
    }
}

#[test]
fn no_budget_means_no_governing() {
    let cloud = Arc::new(MemStore::new());
    let config = governed_config(None);
    let (db, ginja) = protect(config.clone(), cloud);

    for i in 0..50u64 {
        db.put(1, i, b"v".to_vec()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(100));

    let snap = ginja.stats().governor;
    assert!(!snap.enabled);
    assert_eq!(snap.decisions, 0);
    assert_eq!(snap.batch, config.batch as u64, "knobs stay at config");
    assert_eq!(snap.projected_microusd, 0);
    let exposure = ginja.exposure();
    assert!(!exposure.over_budget);
    assert_eq!(exposure.projected_spend_microusd, 0);
    ginja.shutdown();
}

#[test]
fn pipeline_traffic_lands_in_one_ledger() {
    let cloud = Arc::new(MemStore::new());
    let config = governed_config(None);
    let (db, ginja) = protect(config, cloud);

    for i in 0..50u64 {
        db.put(1, i, b"v".to_vec()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(10)));
    let usage = ginja.usage_ledger().usage();
    // Boot (WAL segments + dump) and the batch uploads all metered.
    assert!(usage.puts > 0, "puts {}", usage.puts);
    assert!(usage.bytes_uploaded > 0);
    assert!(usage.stored_bytes > 0, "live objects tracked by size");
    assert!(ginja.usage_ledger().mean_put_latency() > Duration::ZERO);
    ginja.shutdown();
}
