//! Runtime statistics of the middleware — blocking time, uploads,
//! object sizes. These counters feed the Table 3/4 experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared atomic counters updated by every pipeline stage.
#[derive(Debug, Default)]
pub struct GinjaStats {
    pub(crate) updates_intercepted: AtomicU64,
    pub(crate) updates_blocked: AtomicU64,
    pub(crate) blocked_micros: AtomicU64,
    pub(crate) batches_formed: AtomicU64,
    pub(crate) wal_objects_uploaded: AtomicU64,
    pub(crate) wal_bytes_raw: AtomicU64,
    pub(crate) wal_bytes_sealed: AtomicU64,
    pub(crate) db_objects_uploaded: AtomicU64,
    pub(crate) db_bytes_raw: AtomicU64,
    pub(crate) db_bytes_sealed: AtomicU64,
    pub(crate) checkpoints_seen: AtomicU64,
    pub(crate) dumps_uploaded: AtomicU64,
    pub(crate) gc_deletes: AtomicU64,
    pub(crate) upload_retries: AtomicU64,
    pub(crate) seal_micros: AtomicU64,
}

impl GinjaStats {
    pub(crate) fn add_blocked(&self, blocked: Duration) {
        if !blocked.is_zero() {
            self.updates_blocked.fetch_add(1, Ordering::Relaxed);
            self.blocked_micros
                .fetch_add(blocked.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> GinjaStatsSnapshot {
        GinjaStatsSnapshot {
            updates_intercepted: self.updates_intercepted.load(Ordering::Relaxed),
            updates_blocked: self.updates_blocked.load(Ordering::Relaxed),
            blocked_time: Duration::from_micros(self.blocked_micros.load(Ordering::Relaxed)),
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            wal_objects_uploaded: self.wal_objects_uploaded.load(Ordering::Relaxed),
            wal_bytes_raw: self.wal_bytes_raw.load(Ordering::Relaxed),
            wal_bytes_sealed: self.wal_bytes_sealed.load(Ordering::Relaxed),
            db_objects_uploaded: self.db_objects_uploaded.load(Ordering::Relaxed),
            db_bytes_raw: self.db_bytes_raw.load(Ordering::Relaxed),
            db_bytes_sealed: self.db_bytes_sealed.load(Ordering::Relaxed),
            checkpoints_seen: self.checkpoints_seen.load(Ordering::Relaxed),
            dumps_uploaded: self.dumps_uploaded.load(Ordering::Relaxed),
            gc_deletes: self.gc_deletes.load(Ordering::Relaxed),
            upload_retries: self.upload_retries.load(Ordering::Relaxed),
            seal_time: Duration::from_micros(self.seal_micros.load(Ordering::Relaxed)),
            cloud_retries: 0,
            hedges_launched: 0,
            hedges_won: 0,
            hedges_lost: 0,
            breaker_trips: 0,
            breaker_fast_fails: 0,
            breaker_open_time: Duration::ZERO,
        }
    }
}

/// A point-in-time copy of [`GinjaStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GinjaStatsSnapshot {
    /// WAL writes intercepted (Ginja's unit of "database update").
    pub updates_intercepted: u64,
    /// Updates whose `put` blocked on Safety.
    pub updates_blocked: u64,
    /// Total time the DBMS spent blocked on Safety.
    pub blocked_time: Duration,
    /// Batches handed to the uploaders.
    pub batches_formed: u64,
    /// WAL objects successfully uploaded.
    pub wal_objects_uploaded: u64,
    /// Raw (pre-seal) WAL bytes.
    pub wal_bytes_raw: u64,
    /// Sealed (post-compression/encryption) WAL bytes uploaded.
    pub wal_bytes_sealed: u64,
    /// DB object parts successfully uploaded.
    pub db_objects_uploaded: u64,
    /// Raw DB bundle bytes.
    pub db_bytes_raw: u64,
    /// Sealed DB bytes uploaded.
    pub db_bytes_sealed: u64,
    /// DBMS checkpoints observed (begin→end pairs).
    pub checkpoints_seen: u64,
    /// Full dumps uploaded (initial boot dump included).
    pub dumps_uploaded: u64,
    /// Cloud DELETE operations issued by garbage collection.
    pub gc_deletes: u64,
    /// Upload attempts that failed and were retried.
    pub upload_retries: u64,
    /// CPU-ish time spent sealing objects (compression + encryption +
    /// MAC) — the codec contribution to Table 4's CPU overhead.
    pub seal_time: Duration,
    /// Retries issued *inside* the resilience layer (backoff + jitter),
    /// across every cloud operation. Zero with retries disabled.
    pub cloud_retries: u64,
    /// Hedged second `put` attempts launched by the resilience layer.
    pub hedges_launched: u64,
    /// Hedges where the second attempt acknowledged first.
    pub hedges_won: u64,
    /// Hedges that did not win: the primary acknowledged first anyway,
    /// or the operation failed.
    pub hedges_lost: u64,
    /// Circuit-breaker closed → open transitions.
    pub breaker_trips: u64,
    /// Operations the open breaker rejected without reaching the cloud.
    pub breaker_fast_fails: u64,
    /// Cumulative time the circuit breaker spent open — stalls during
    /// these windows are attributable to cloud faults, not Ginja.
    pub breaker_open_time: Duration,
}

impl GinjaStatsSnapshot {
    /// Mean sealed WAL object size, or 0 with no uploads.
    pub fn avg_wal_object_size(&self) -> u64 {
        self.wal_bytes_sealed
            .checked_div(self.wal_objects_uploaded)
            .unwrap_or(0)
    }

    /// Compression+encryption ratio achieved on WAL data (raw/sealed).
    pub fn wal_seal_ratio(&self) -> f64 {
        if self.wal_bytes_sealed == 0 {
            1.0
        } else {
            self.wal_bytes_raw as f64 / self.wal_bytes_sealed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = GinjaStats::default();
        stats.updates_intercepted.store(10, Ordering::Relaxed);
        stats.wal_objects_uploaded.store(2, Ordering::Relaxed);
        stats.wal_bytes_sealed.store(300, Ordering::Relaxed);
        stats.wal_bytes_raw.store(600, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.updates_intercepted, 10);
        assert_eq!(snap.avg_wal_object_size(), 150);
        assert!((snap.wal_seal_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_accounting() {
        let stats = GinjaStats::default();
        stats.add_blocked(Duration::ZERO);
        assert_eq!(stats.snapshot().updates_blocked, 0);
        stats.add_blocked(Duration::from_millis(5));
        stats.add_blocked(Duration::from_millis(7));
        let snap = stats.snapshot();
        assert_eq!(snap.updates_blocked, 2);
        assert_eq!(snap.blocked_time, Duration::from_millis(12));
    }

    #[test]
    fn empty_snapshot_ratios_are_neutral() {
        let snap = GinjaStats::default().snapshot();
        assert_eq!(snap.avg_wal_object_size(), 0);
        assert!((snap.wal_seal_ratio() - 1.0).abs() < 1e-9);
    }
}
