//! Ablation: one shared fair-share executor vs per-tenant pools.
//!
//! Two rigs run the same eight-tenant TPC-C load at the same *total*
//! transfer concurrency:
//!
//! * **fleet** — eight tenants in one [`Fleet`]: one bucket under
//!   `tenants/<name>/` prefixes, one width-8 deficit-round-robin
//!   executor multiplexing every tenant's upload and checkpoint waves;
//! * **per-tenant pools** — eight fully independent Ginja stacks, each
//!   with its own bucket and its own width-1 solo pool (8 × 1 = the
//!   fleet's width).
//!
//! Acceptance: fair-share holds — the worst tenant's p99 commit latency
//! in the fleet stays within 2× the best tenant's (plus a small
//! absolute floor for scheduler noise on shared runners) — the
//! executor never exceeds its width, the total concurrency budget is
//! identical across rigs, and every fleet tenant's traffic really was
//! multiplexed (every lane got grants).
//!
//! With `BENCH_PR7_OUT=<path>` the headline numbers are written as a
//! small JSON document (CI smoke archives a trend point from it).

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, time_scale, to_sim_duration};
use ginja_cloud::MemStore;
use ginja_core::{Ginja, GinjaConfig};
use ginja_db::{Database, DbProfile};
use ginja_fleet::{Fleet, FleetConfig, TenantSpec};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
use ginja_workload::{Tpcc, TpccScale};

const TENANTS: usize = 8;
/// Total concurrent cloud transfers, identical in both rigs: one
/// width-8 fair executor vs eight width-1 solo pools.
const WIDTH: usize = 8;

fn config(scale: f64) -> GinjaConfig {
    GinjaConfig::builder()
        .batch(4)
        .safety(64)
        .batch_timeout(Duration::from_secs_f64(0.2 * scale))
        .uploaders(1)
        .recovery_fanout(1) // solo pool width in the per-tenant rig
        .build()
        .expect("valid config")
}

/// Runs `deadline`-bounded TPC-C against `db`, timing each commit.
/// Returns sorted latencies.
fn drive(db: &Database, seed: u64, deadline: Instant) -> Vec<Duration> {
    let mut tpcc = Tpcc::new(1, seed, TpccScale::tiny());
    tpcc.create_schema(db).expect("schema");
    tpcc.load(db).expect("load");
    let mut latencies = Vec::new();
    while Instant::now() < deadline {
        let t = Instant::now();
        tpcc.run_transaction(db).expect("transaction");
        latencies.push(t.elapsed());
    }
    latencies.sort();
    latencies
}

fn p99(sorted: &[Duration]) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() - 1) * 99 / 100]
}

fn main() {
    let scale = time_scale();
    let wall = run_wall_duration();
    println!("time scale: {scale}");
    println!("== Ablation: shared fair executor vs {TENANTS} per-tenant pools ==\n");
    println!(
        "{TENANTS} TPC-C tenants, {:.2}s wall each rig, total width {WIDTH} both ways",
        wall.as_secs_f64()
    );

    // -- Rig 1: the fleet (one bucket, one fair executor). -----------
    let fleet = Fleet::new(
        Arc::new(MemStore::new()),
        FleetConfig {
            width: WIDTH,
            ..FleetConfig::default()
        },
    );
    for i in 0..TENANTS {
        fleet
            .attach(TenantSpec::new(
                format!("t{i}"),
                DbProfile::postgres_small(),
                config(scale),
            ))
            .expect("attach tenant");
    }
    let deadline = Instant::now() + wall;
    let handles: Vec<_> = fleet
        .tenants()
        .into_iter()
        .enumerate()
        .map(|(i, tenant)| {
            std::thread::spawn(move || drive(tenant.db(), 0xF0A + i as u64, deadline))
        })
        .collect();
    let fleet_lat: Vec<Vec<Duration>> = handles
        .into_iter()
        .map(|h| h.join().expect("fleet tenant"))
        .collect();
    assert!(
        fleet.sync_all(Duration::from_secs(60)),
        "fleet pipelines must drain"
    );
    let snap = fleet.snapshot();
    fleet.shutdown();

    // -- Rig 2: eight independent stacks, width 1 each. --------------
    let mut indep = Vec::new();
    for i in 0..TENANTS {
        let local = Arc::new(MemFs::new());
        let db = Database::create(local.clone(), DbProfile::postgres_small()).expect("create");
        drop(db);
        let ginja = Ginja::boot(
            local.clone(),
            Arc::new(MemStore::new()),
            Arc::new(PostgresProcessor::new()),
            config(scale),
        )
        .expect("boot");
        let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
        let db = Database::open(fs, DbProfile::postgres_small()).expect("open");
        indep.push((ginja, Arc::new(db), i as u64));
    }
    let pool_total: usize = indep.iter().map(|(g, _, _)| g.fanout().width()).sum();
    let deadline = Instant::now() + wall;
    let handles: Vec<_> = indep
        .iter()
        .map(|(_, db, i)| {
            let db = db.clone();
            let seed = 0xF0A + *i;
            std::thread::spawn(move || drive(&db, seed, deadline))
        })
        .collect();
    let indep_lat: Vec<Vec<Duration>> = handles
        .into_iter()
        .map(|h| h.join().expect("indep tenant"))
        .collect();
    for (ginja, _, _) in &indep {
        assert!(ginja.sync(Duration::from_secs(60)), "indep pipeline drains");
        ginja.shutdown();
    }

    // -- Report. -----------------------------------------------------
    let sim_ms = |d: Duration| to_sim_duration(d).as_secs_f64() * 1000.0;
    let mut t = Table::new(&[
        "tenant",
        "fleet txns",
        "fleet p99 ms",
        "pool txns",
        "pool p99 ms",
    ]);
    for i in 0..TENANTS {
        t.row(&[
            format!("t{i}"),
            fleet_lat[i].len().to_string(),
            fmt(sim_ms(p99(&fleet_lat[i])), 2),
            indep_lat[i].len().to_string(),
            fmt(sim_ms(p99(&indep_lat[i])), 2),
        ]);
    }
    t.print();

    let fleet_p99s: Vec<Duration> = fleet_lat.iter().map(|l| p99(l)).collect();
    let best = *fleet_p99s.iter().min().expect("tenants");
    let worst = *fleet_p99s.iter().max().expect("tenants");
    let fleet_txns: usize = fleet_lat.iter().map(Vec::len).sum();
    let indep_txns: usize = indep_lat.iter().map(Vec::len).sum();
    println!(
        "\nfleet: {} txns total, worst/best tenant p99 {:.2}/{:.2} ms (sim), \
         max in-flight {}/{}; pools: {} txns total, {} threads",
        fleet_txns,
        sim_ms(worst),
        sim_ms(best),
        snap.max_in_flight,
        snap.width,
        indep_txns,
        pool_total,
    );

    // -- Acceptance. -------------------------------------------------
    // Same total concurrency budget in both rigs.
    assert_eq!(snap.width, WIDTH);
    assert_eq!(
        pool_total, WIDTH,
        "per-tenant pools must sum to the fleet width"
    );
    assert!(
        snap.max_in_flight <= WIDTH,
        "fair executor exceeded its width: {}",
        snap.max_in_flight
    );
    // Every tenant's traffic really went through the shared scheduler.
    for tenant in &snap.tenants {
        let lane = tenant.scheduler.expect("lane snapshot");
        assert!(
            lane.granted > 0,
            "tenant {} never got a grant from the shared executor",
            tenant.name
        );
    }
    // The fair-share claim: no tenant's commit tail blows past its
    // neighbors'. The absolute floor keeps sub-millisecond p99s from
    // flaking the ratio on noisy shared runners.
    let cap = worst.min(best.mul_f64(2.0) + Duration::from_millis(2).mul_f64(scale.max(0.05)));
    assert!(
        worst <= best.mul_f64(2.0) + Duration::from_millis(2).mul_f64(scale.max(0.05)),
        "worst tenant p99 {:?} exceeds 2x best {:?} (+floor, cap {:?})",
        worst,
        best,
        cap
    );

    println!(
        "\nshape check: one width-{WIDTH} fair executor serves {TENANTS} tenants with \
         worst-tenant p99 within 2x best — no tenant starves behind a neighbor"
    );

    if let Ok(path) = std::env::var("BENCH_PR7_OUT") {
        let json = format!(
            "{{\n  \"tenants\": {TENANTS},\n  \"width\": {WIDTH},\n  \
             \"fleet_txns\": {fleet_txns},\n  \"indep_txns\": {indep_txns},\n  \
             \"fleet_best_p99_sim_ms\": {:.3},\n  \"fleet_worst_p99_sim_ms\": {:.3},\n  \
             \"fleet_max_in_flight\": {},\n  \"pool_threads\": {pool_total}\n}}\n",
            sim_ms(best),
            sim_ms(worst),
            snap.max_in_flight,
        );
        let mut file = std::fs::File::create(&path).expect("create BENCH_PR7_OUT");
        file.write_all(json.as_bytes())
            .expect("write BENCH_PR7_OUT");
        println!("\nwrote {path}");
    }
}
