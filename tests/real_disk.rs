//! End-to-end over a real on-disk directory (`DirFs`): the same
//! disaster drill as the in-memory tests, but with actual files and
//! fsyncs, proving nothing in the stack depends on `MemFs` semantics.

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::MemStore;
use ginja::core::{recover_into, Ginja, GinjaConfig};
use ginja::db::{Database, DbProfile};
use ginja::vfs::{DirFs, FileSystem, InterceptFs, PostgresProcessor};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("ginja-real-disk")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disaster_recovery_on_real_disk() {
    let primary_dir = temp_dir("primary");
    let local: Arc<dyn FileSystem> = Arc::new(DirFs::open(&primary_dir).unwrap());
    let profile = DbProfile::postgres_small().with_checkpoint_every(20);
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);

    let cloud = Arc::new(MemStore::new());
    let config = GinjaConfig::builder()
        .batch(4)
        .safety(64)
        .batch_timeout(Duration::from_millis(20))
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .unwrap();
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, profile.clone()).unwrap();
    for i in 0..60u64 {
        db.put(1, i, format!("disk-row-{i}").into_bytes()).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(20)));
    assert!(ginja.stats().checkpoints_seen > 0);
    ginja.shutdown();
    drop(db);

    // Disaster: rm -rf the primary directory.
    std::fs::remove_dir_all(&primary_dir).unwrap();

    // Recover onto a different real directory.
    let recovery_dir = temp_dir("recovered");
    let rebuilt: Arc<dyn FileSystem> = Arc::new(DirFs::open(&recovery_dir).unwrap());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    for i in 0..60u64 {
        assert_eq!(
            db.get(1, i).unwrap().unwrap(),
            format!("disk-row-{i}").into_bytes()
        );
    }
    let _ = std::fs::remove_dir_all(&recovery_dir);
}

#[test]
fn crash_recovery_on_real_disk_without_cloud() {
    // The DBMS substrate alone must also behave on a real disk.
    let dir = temp_dir("crash");
    let fs: Arc<dyn FileSystem> = Arc::new(DirFs::open(&dir).unwrap());
    let profile = DbProfile::mysql_small();
    let db = Database::create(fs.clone(), profile.clone()).unwrap();
    db.create_table(1, 64).unwrap();
    for i in 0..40u64 {
        db.put(1, i, format!("v{i}").into_bytes()).unwrap();
    }
    db.checkpoint().unwrap();
    for i in 40..80u64 {
        db.put(1, i, format!("v{i}").into_bytes()).unwrap();
    }
    let fs = db.crash();
    let db = Database::open(fs, profile).unwrap();
    for i in 0..80u64 {
        assert_eq!(db.get(1, i).unwrap().unwrap(), format!("v{i}").into_bytes());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
