//! The real-application scenarios of Table 2: a clinical laboratory and
//! a hospital running "a real clinical analysis system deployed in more
//! than 100 institutions in Europe".
//!
//! | Configuration | Ginja (S3) | EC2 VMs |
//! |---|---|---|
//! | Laboratory (10 GB, 6 up/min) | $0.42 (1 sync/m) / $1.50 (6 sync/m) | m3.medium + VPN + EBS 100IOS = $93.4 |
//! | Hospital (1 TB, 138 up/min) | $20.3 (1 sync/m) / $21.4 (6 sync/m) | m3.large + VPN + EBS 500IOS = $291.5 |

use crate::model::{GinjaCostModel, SyncRate};
use crate::pricing::{Ec2Pricing, S3Pricing};

/// One Table 2 scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name as in the paper.
    pub name: &'static str,
    /// Database size in GB.
    pub db_size_gb: f64,
    /// Updates per minute.
    pub updates_per_minute: f64,
}

/// The clinical laboratory: "10GB database that processes 30
/// transactions per minute … only 20% are updates".
pub fn laboratory() -> Scenario {
    Scenario {
        name: "Laboratory",
        db_size_gb: 10.0,
        updates_per_minute: 6.0,
    }
}

/// The hospital: 1 TB database, 138 updates per minute (Table 2).
pub fn hospital() -> Scenario {
    Scenario {
        name: "Hospital",
        db_size_gb: 1000.0,
        updates_per_minute: 138.0,
    }
}

impl Scenario {
    /// Ginja's monthly cost at `syncs_per_minute` cloud synchronizations.
    pub fn ginja_cost(&self, syncs_per_minute: f64) -> f64 {
        self.model(syncs_per_minute).total()
    }

    /// The underlying cost model (hourly checkpoints, CR = 1.43 as in
    /// §7.2).
    pub fn model(&self, syncs_per_minute: f64) -> GinjaCostModel {
        GinjaCostModel {
            db_size_gb: self.db_size_gb,
            compression_ratio: 1.43,
            ckpt_period_min: 60.0,
            ckpt_time_min: 80.0,
            ckpt_size_mb: 64.0,
            wal_page_bytes: 8192.0,
            records_per_page: 75.0,
            updates_per_minute: self.updates_per_minute,
            sync: SyncRate::PerMinute(syncs_per_minute),
            object_cap_mb: 20.0,
            pricing: S3Pricing::may_2017(),
        }
    }

    /// The VM-based Pilot-Light alternative's monthly cost.
    pub fn vm_cost(&self, pricing: &Ec2Pricing) -> f64 {
        if self.db_size_gb > 100.0 {
            pricing.hospital_vm_month(self.db_size_gb)
        } else {
            pricing.laboratory_vm_month(self.db_size_gb)
        }
    }

    /// §7.3 recovery cost. The paper's figures ($1.125 laboratory,
    /// $112.5 hospital) correspond to downloading `size × 1.25` GB at
    /// the egress price *without* the compression factor — we reproduce
    /// that arithmetic here (see EXPERIMENTS.md for the discrepancy with
    /// the §7.1 storage terms).
    pub fn recovery_cost_paper_arithmetic(&self) -> f64 {
        self.db_size_gb * 1.25 * S3Pricing::may_2017().egress_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laboratory_one_sync_per_minute() {
        // Table 2: $0.42.
        let cost = laboratory().ginja_cost(1.0);
        assert!((cost - 0.42).abs() < 0.03, "got {cost}");
    }

    #[test]
    fn laboratory_six_syncs_per_minute() {
        // Table 2: $1.50.
        let cost = laboratory().ginja_cost(6.0);
        assert!((cost - 1.50).abs() < 0.05, "got {cost}");
    }

    #[test]
    fn hospital_one_sync_per_minute() {
        // Table 2: $20.3.
        let cost = hospital().ginja_cost(1.0);
        assert!((cost - 20.3).abs() < 0.3, "got {cost}");
    }

    #[test]
    fn hospital_six_syncs_per_minute() {
        // Table 2: $21.4.
        let cost = hospital().ginja_cost(6.0);
        assert!((cost - 21.4).abs() < 0.4, "got {cost}");
    }

    #[test]
    fn laboratory_savings_factor_62_to_222() {
        // §7.2: "G INJA has an operational cost between 62× to 222×
        // smaller" in the laboratory scenario.
        let vm = laboratory().vm_cost(&Ec2Pricing::may_2017());
        let hi = vm / laboratory().ginja_cost(1.0);
        let lo = vm / laboratory().ginja_cost(6.0);
        assert!((200.0..=240.0).contains(&hi), "high factor {hi}");
        assert!((55.0..=70.0).contains(&lo), "low factor {lo}");
    }

    #[test]
    fn hospital_savings_factor_14() {
        // §7.2: "a cost 14× smaller".
        let vm = hospital().vm_cost(&Ec2Pricing::may_2017());
        let factor = vm / hospital().ginja_cost(1.0);
        assert!((12.0..=16.0).contains(&factor), "factor {factor}");
    }

    #[test]
    fn recovery_costs_match_section_7_3() {
        // "$112.5 and $1.125 for the Hospital and the Laboratory".
        assert!((laboratory().recovery_cost_paper_arithmetic() - 1.125).abs() < 1e-9);
        assert!((hospital().recovery_cost_paper_arithmetic() - 112.5).abs() < 1e-9);
    }

    #[test]
    fn headline_claim_14x_to_222x_cheaper() {
        // Abstract/conclusion: "between 14× to 222× cheaper".
        let ec2 = Ec2Pricing::may_2017();
        let mut factors = Vec::new();
        for scenario in [laboratory(), hospital()] {
            for rate in [1.0, 6.0] {
                factors.push(scenario.vm_cost(&ec2) / scenario.ginja_cost(rate));
            }
        }
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0, f64::max);
        assert!(min > 12.0 && min < 16.0, "min {min}");
        assert!(max > 200.0 && max < 240.0, "max {max}");
    }
}
