#![warn(missing_docs)]
//! # Ginja — one-dollar cloud-based disaster recovery for databases
//!
//! This is a complete, self-contained Rust reproduction of
//! *"Ginja: One-dollar Cloud-based Disaster Recovery for Databases"*
//! (Alcântara, Oliveira, Bessani — Middleware '17).
//!
//! Ginja is a transparent middleware that intercepts the file-system I/O
//! of a transactional DBMS and replicates it to a cloud **object storage**
//! service (the paper used Amazon S3) — no backup VM required. Two knobs
//! control the cost/performance/data-loss trade-off:
//!
//! * **Batch** `B`/`TB` — updates aggregated per cloud synchronization;
//! * **Safety** `S`/`TS` — maximum updates that may be lost in a disaster
//!   (the DBMS blocks when more than `S` updates are unacknowledged).
//!
//! The facade crate re-exports the workspace members:
//!
//! * [`core`] (`ginja-core`) — the middleware itself: commit pipeline,
//!   checkpoints, garbage collection, boot/reboot/recovery.
//! * [`db`] (`ginja-db`) — a miniature WAL-based DBMS with PostgreSQL and
//!   MySQL/InnoDB I/O profiles, used as the protected system.
//! * [`vfs`] (`ginja-vfs`) — the file-system interception layer (the
//!   FUSE stand-in) and the per-DBMS I/O processors.
//! * [`cloud`] (`ginja-cloud`) — the object-store abstraction plus
//!   simulated backends (latency, faults, metering, multi-cloud).
//! * [`codec`] (`ginja-codec`) — compression, AES-128-CTR, HMAC-SHA1.
//! * [`workload`] (`ginja-workload`) — TPC-C-style and synthetic drivers.
//! * [`cost`] (`ginja-cost`) — the §7 monetary cost model.
//! * [`sentinel`] (`ginja-sentinel`) — the DR sentinel: continuous cloud
//!   scrubbing, restore rehearsal, and self-healing repair.
//! * [`fleet`] (`ginja-fleet`) — the multi-tenant fleet manager:
//!   fair-share upload scheduling and budget arbitration across many
//!   protected databases sharing one bucket.
//! * [`standby`] (`ginja-standby`) — the warm standby: continuous
//!   cloud-tail apply into a shadow directory and bounded-RTO
//!   promotion.
//!
//! ## Quickstart
//!
//! ```rust
//! use std::sync::Arc;
//! use ginja::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A cloud (in-memory stand-in for S3) and a database behind Ginja.
//! let cloud = Arc::new(MemStore::new());
//! let config = GinjaConfig::builder().batch(2).safety(10).build()?;
//!
//! let local = Arc::new(MemFs::new());
//! let harness =
//!     ProtectedDb::boot(local, cloud, DbProfile::postgres_small(), config)?;
//!
//! // Commit a few transactions through the protected database.
//! harness.db().create_table(1, 64)?;
//! for i in 0..10u64 {
//!     harness.db().put(1, i, format!("row-{i}").into_bytes())?;
//! }
//! assert!(harness.sync());
//!
//! // Disaster! All local state is lost. Recover from the cloud alone.
//! let recovered = harness.disaster_and_recover()?;
//! assert_eq!(recovered.get(1, 3)?.unwrap(), b"row-3");
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for larger scenarios and `DESIGN.md` for the paper →
//! repository map.

pub use ginja_cloud as cloud;
pub use ginja_codec as codec;
pub use ginja_core as core;
pub use ginja_cost as cost;
pub use ginja_db as db;
pub use ginja_fleet as fleet;
pub use ginja_sentinel as sentinel;
pub use ginja_standby as standby;
pub use ginja_vfs as vfs;
pub use ginja_workload as workload;

pub mod crashpoint;
pub mod harness;

pub use crashpoint::{explore, CrashMode, CrashReport, ExplorerConfig, Violation};
pub use harness::{HarnessError, ProtectedDb};

/// Convenient re-exports of the most common entry points.
pub mod prelude {
    pub use crate::harness::ProtectedDb;
    pub use ginja_cloud::{MemStore, ObjectStore};
    pub use ginja_core::{Ginja, GinjaConfig};
    pub use ginja_db::{Database, DbProfile};
    pub use ginja_vfs::{FileSystem, MemFs};
}
