//! Cross-crate integration: TPC-C traffic through the full stack —
//! workload → mini-DBMS → interception → Ginja pipeline → simulated
//! cloud → disaster → recovery → DBMS crash-replay → verification.

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{MemStore, MeteredStore, ObjectStore};
use ginja::core::{recover_into, verify_backup_in_memory, Ginja, GinjaConfig};
use ginja::db::{Database, DbProfile, ProfileKind};
use ginja::vfs::{
    DbmsProcessor, FileSystem, InterceptFs, MemFs, MySqlProcessor, PostgresProcessor,
};
use ginja::workload::{probe_tpcc, tables, Tpcc, TpccScale};

fn processor_for(kind: ProfileKind) -> Arc<dyn DbmsProcessor> {
    match kind {
        ProfileKind::Postgres => Arc::new(PostgresProcessor::new()),
        ProfileKind::MySql => Arc::new(MySqlProcessor::new()),
    }
}

fn profile_for(kind: ProfileKind) -> DbProfile {
    match kind {
        ProfileKind::Postgres => DbProfile::postgres_small().with_checkpoint_every(40),
        ProfileKind::MySql => DbProfile::mysql_small().with_checkpoint_every(40),
    }
}

fn config() -> GinjaConfig {
    GinjaConfig::builder()
        .batch(8)
        .safety(120)
        .batch_timeout(Duration::from_millis(20))
        .safety_timeout(Duration::from_secs(30))
        .build()
        .unwrap()
}

#[test]
fn tpcc_disaster_recovery_both_profiles() {
    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        let profile = profile_for(kind);
        let local = Arc::new(MemFs::new());
        let db = Database::create(local.clone(), profile.clone()).unwrap();
        let mut tpcc = Tpcc::new(1, 99, TpccScale::tiny());
        tpcc.create_schema(&db).unwrap();
        tpcc.load(&db).unwrap();
        drop(db);

        let cloud = Arc::new(MeteredStore::new(MemStore::new()));
        let ginja =
            Ginja::boot(local.clone(), cloud.clone(), processor_for(kind), config()).unwrap();
        let protected: Arc<dyn FileSystem> =
            Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
        let db = Database::open(protected, profile.clone()).unwrap();

        // A burst of TPC-C traffic, including checkpoints.
        for _ in 0..300 {
            tpcc.run_transaction(&db).unwrap();
        }
        let reference_stock = db.dump_table(tables::STOCK).unwrap();
        let reference_customers = db.dump_table(tables::CUSTOMER).unwrap();
        assert!(ginja.sync(Duration::from_secs(20)), "pipeline must drain");
        let stats = ginja.stats();
        assert!(
            stats.checkpoints_seen > 0,
            "{kind:?} should have checkpointed"
        );
        ginja.shutdown();
        drop(db);

        // Disaster: rebuild from the cloud and compare the hot tables.
        let rebuilt = Arc::new(MemFs::new());
        recover_into(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
        let db = Database::open(rebuilt, profile).unwrap();
        assert_eq!(
            db.dump_table(tables::STOCK).unwrap(),
            reference_stock,
            "{kind:?} stock"
        );
        assert_eq!(
            db.dump_table(tables::CUSTOMER).unwrap(),
            reference_customers,
            "{kind:?} customers"
        );
        // §5.4 validation 3: the service-specific probe over the
        // recovered database.
        let probe = probe_tpcc(&db).unwrap();
        assert!(probe.is_consistent(), "{kind:?}: {probe:?}");
    }
}

#[test]
fn tpcc_order_lines_consistent_after_recovery() {
    // Referential sanity: every recovered ORDER that was committed with
    // its ORDER_LINEs (same transaction) must have the lines too —
    // transactions are atomic across the disaster.
    let profile = profile_for(ProfileKind::Postgres);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, 5, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let cloud = Arc::new(MemStore::new());
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        processor_for(ProfileKind::Postgres),
        config(),
    )
    .unwrap();
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, profile.clone()).unwrap();
    for _ in 0..200 {
        tpcc.run_transaction(&db).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    let orders = db.dump_table(tables::ORDER).unwrap();
    assert!(!orders.is_empty());
    let mut checked = 0;
    for (order_key, row) in &orders {
        // Delivered orders are rewritten with a 0-lines marker; check
        // only orders created by newOrder (line count in the row).
        if String::from_utf8_lossy(row).starts_with("order:") {
            // Every order has line 0 if it has any lines recorded.
            if db.get(tables::NEW_ORDER, *order_key).unwrap().is_some() {
                assert!(
                    db.get(tables::ORDER_LINE, order_key * 15)
                        .unwrap()
                        .is_some(),
                    "order {order_key} lost its lines"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 10, "checked only {checked} orders");
}

#[test]
fn backup_verification_catches_cloud_corruption() {
    let profile = profile_for(ProfileKind::Postgres);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    db.create_table(1, 64).unwrap();
    drop(db);

    let cloud = Arc::new(MemStore::new());
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        processor_for(ProfileKind::Postgres),
        config(),
    )
    .unwrap();
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, profile).unwrap();
    for i in 0..30 {
        db.put(1, i, vec![i as u8; 40]).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    drop(db);

    // Clean backup verifies.
    let (report, _) = verify_backup_in_memory(cloud.as_ref(), &config()).unwrap();
    assert!(report.is_ok());

    // Bit-rot in one object is detected by name.
    let victim = cloud.list("WAL/").unwrap().pop().unwrap();
    let mut bytes = cloud.get(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    cloud.put(&victim, &bytes).unwrap();
    let (report, _) = verify_backup_in_memory(cloud.as_ref(), &config()).unwrap();
    assert!(!report.is_ok());
    assert_eq!(report.corrupt_objects, vec![victim]);
}

#[test]
fn compressed_encrypted_full_stack() {
    let profile = profile_for(ProfileKind::MySql);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, 123, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let config = GinjaConfig::builder()
        .batch(8)
        .safety(120)
        .batch_timeout(Duration::from_millis(20))
        .codec(
            ginja::codec::CodecConfig::new()
                .compression(true)
                .password("full-stack")
                .kdf_iterations(8),
        )
        .build()
        .unwrap();
    let cloud = Arc::new(MemStore::new());
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        processor_for(ProfileKind::MySql),
        config.clone(),
    )
    .unwrap();
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, profile.clone()).unwrap();
    for _ in 0..150 {
        tpcc.run_transaction(&db).unwrap();
    }
    let reference = db.dump_table(tables::DISTRICT).unwrap();
    assert!(ginja.sync(Duration::from_secs(20)));
    ginja.shutdown();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    assert_eq!(db.dump_table(tables::DISTRICT).unwrap(), reference);
}
