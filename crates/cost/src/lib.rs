#![warn(missing_docs)]
//! The monetary cost model for cloud-backed database disaster recovery
//! (Ginja, §3 and §7).
//!
//! All quantities are closed-form: the paper derives monthly cost from
//! the S3 price sheet (May 2017) and the workload/configuration
//! parameters. This crate reproduces:
//!
//! * the four cost terms of §7.1 — [`GinjaCostModel`]:
//!   `C_Total = C_DB_Storage + C_DB_PUT + C_WAL_Storage + C_WAL_PUT`;
//! * the $1/month capacity frontier of Figure 1 — [`Budget::frontier`];
//! * the cost-vs-workload curves of Figure 4;
//! * the real-application comparison of Table 2 (Ginja vs a
//!   VM-based Pilot Light) — [`scenarios`];
//! * the recovery cost of §7.3 — [`GinjaCostModel::recovery_cost`];
//! * the **live cost governor** — [`governor`]: projects month-end
//!   spend from real metered usage (a `ginja_cloud::UsageLedger`) and
//!   adaptively retunes B / TB / dump cadence / sentinel pacing to hold
//!   a [`governor::BudgetConfig`], without ever touching the safety
//!   bound S.
//!
//! ```rust
//! use ginja_cost::{GinjaCostModel, S3Pricing};
//!
//! // The paper's Figure 4 configuration: 10 GB database, B = 100.
//! let model = GinjaCostModel::paper_fig4(100.0, 100);
//! let cost = model.total();
//! assert!(cost > 0.0 && cost < 1.0, "Figure 4 mid-curve is under $1: {cost}");
//! # let _ = S3Pricing::may_2017();
//! ```

mod frontier;
pub mod governor;
mod model;
mod pricing;
pub mod scenarios;

pub use frontier::Budget;
// Deprecated free-function shims, kept re-exported (hidden) for one
// release; every internal caller now goes through `Budget` methods.
#[doc(hidden)]
#[allow(deprecated)]
pub use frontier::{budget_frontier, max_db_size_gb, monthly_cost_simple};
pub use governor::{BudgetConfig, GovernorPolicy, KnobBounds, Knobs, SpendProjection};
pub use model::{GinjaCostModel, SyncRate, MINUTES_PER_MONTH};
pub use pricing::{Ec2Pricing, S3Pricing};
