//! Scaled-time configuration shared by every timed experiment.

use std::time::Duration;

/// The default time scale: all latencies shrink 10×. (Smaller scales
/// run faster but the engine's unscaled compute time starts to distort
/// the MySQL profile, whose per-transaction budget is only ~5 ms —
/// especially on small machines where the pipeline threads share cores
/// with the DBMS.)
pub const DEFAULT_SCALE: f64 = 0.1;

/// The default simulated run length in minutes (the paper used 5).
pub const DEFAULT_SIM_MINUTES: f64 = 1.0;

/// The experiment time scale (see `GINJA_BENCH_SCALE`).
pub fn time_scale() -> f64 {
    std::env::var("GINJA_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0 && *v <= 1.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// Simulated minutes each TPC-C run lasts (see `GINJA_BENCH_MINUTES`).
pub fn sim_minutes() -> f64 {
    std::env::var("GINJA_BENCH_MINUTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(DEFAULT_SIM_MINUTES)
}

/// Wall-clock duration corresponding to `sim_minutes()` at the current
/// scale.
pub fn run_wall_duration() -> Duration {
    Duration::from_secs_f64(sim_minutes() * 60.0 * time_scale())
}

/// Converts a measured wall-clock rate (per minute) into the simulated
/// per-minute rate: all delays are `scale×` shorter, so wall throughput
/// is `1/scale×` higher than the simulated system's.
pub fn to_sim_per_minute(wall_per_minute: f64) -> f64 {
    wall_per_minute * time_scale()
}

/// Converts a wall-clock duration into simulated time.
pub fn to_sim_duration(wall: Duration) -> Duration {
    wall.div_f64(time_scale())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(time_scale() > 0.0 && time_scale() <= 1.0);
        assert!(sim_minutes() > 0.0);
        assert!(run_wall_duration() > Duration::ZERO);
    }

    #[test]
    fn conversions_are_inverse_scalings() {
        let scale = time_scale();
        assert!((to_sim_per_minute(100.0) - 100.0 * scale).abs() < 1e-9);
        let sim = to_sim_duration(Duration::from_secs(1));
        assert!((sim.as_secs_f64() - 1.0 / scale).abs() < 1e-6);
    }
}
