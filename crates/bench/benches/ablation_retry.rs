//! Ablation: what does the resilience layer (typed retryability +
//! backoff/jitter + circuit breaker) buy under an unreliable cloud?
//!
//! The paper's Safety mechanism (§5.1) means a slow or failing cloud
//! never loses updates — it *blocks* the DBMS instead. How long it
//! blocks is therefore the correct figure of merit for the retry
//! policy: this harness runs the same TPC-C workload under increasing
//! transient-fault rates, with the in-layer retry policy enabled and
//! disabled, and compares the time the DBMS spent blocked at the
//! Safety limit.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_bench::table::{fmt, Table};
use ginja_cloud::{FaultPlan, FaultStore, MemStore, OpKind, RetryConfig};
use ginja_core::{Ginja, GinjaConfig, GinjaStatsSnapshot};
use ginja_db::{Database, DbProfile};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
use ginja_workload::{Tpcc, TpccScale};

/// Transactions per measured run.
const TXNS: usize = 150;

/// In-layer retry policy scaled for a fast harness: same shape as the
/// production defaults (exponential backoff, full jitter, breaker),
/// two orders of magnitude quicker.
fn fast_retry() -> RetryConfig {
    RetryConfig {
        base_delay: Duration::from_micros(500),
        max_delay: Duration::from_millis(5),
        breaker_cooldown: Duration::from_millis(100),
        ..RetryConfig::default()
    }
}

struct RunOutcome {
    stats: GinjaStatsSnapshot,
    wall: Duration,
}

fn run(p: f64, retry: RetryConfig, seed: u64) -> RunOutcome {
    let profile = DbProfile::postgres_small().with_checkpoint_every(50);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).expect("create db");
    let mut tpcc = Tpcc::new(1, seed, TpccScale::tiny());
    tpcc.create_schema(&db).expect("schema");
    tpcc.load(&db).expect("load");
    drop(db);

    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(MemStore::new(), plan.clone()));
    // Small Batch/Safety so upload stalls translate into DBMS blocking
    // within the harness's short run.
    let config = GinjaConfig::builder()
        .batch(2)
        .safety(4)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(60))
        .retry(retry)
        .build()
        .expect("valid config");
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config,
    )
    .expect("boot");
    plan.fail_randomly(OpKind::Put, p, seed);

    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile).expect("open db");
    let start = Instant::now();
    for _ in 0..TXNS {
        tpcc.run_transaction(&db).expect("txn");
    }
    assert!(ginja.sync(Duration::from_secs(120)), "pipeline must drain");
    let wall = start.elapsed();
    let stats = ginja.stats();
    ginja.shutdown();
    RunOutcome { stats, wall }
}

fn main() {
    let seed = 0xAB2;
    println!("== Ablation: transient-fault rate x retry policy ({TXNS} TPC-C txns, B/S = 2/4) ==");
    let mut t = Table::new(&[
        "put fault rate",
        "policy",
        "blocked ms",
        "wall ms",
        "in-layer retries",
        "outer retries",
        "breaker trips",
    ]);
    let mut blocked = Vec::new();
    for p in [0.0, 0.1, 0.3] {
        for (policy, retry) in [
            ("retry+breaker", fast_retry()),
            ("disabled", RetryConfig::disabled()),
        ] {
            let outcome = run(p, retry, seed);
            t.row(&[
                fmt(p, 2),
                policy.to_string(),
                fmt(outcome.stats.blocked_time.as_secs_f64() * 1e3, 1),
                fmt(outcome.wall.as_secs_f64() * 1e3, 0),
                outcome.stats.cloud_retries.to_string(),
                outcome.stats.upload_retries.to_string(),
                outcome.stats.breaker_trips.to_string(),
            ]);
            blocked.push((p, policy, outcome.stats));
        }
    }
    println!();
    t.print();

    // The claims the ISSUE's ablation exists to check: under faults the
    // in-layer policy retries (the outer loop stays quiet), and the
    // DBMS blocks for less time than with retries disabled.
    for chunk in blocked.chunks(2) {
        let (p, _, with_retry) = &chunk[0];
        let (_, _, without_retry) = &chunk[1];
        if *p > 0.0 {
            assert!(
                with_retry.cloud_retries > 0,
                "p={p}: the resilient run must have retried in-layer"
            );
            assert!(
                without_retry.blocked_time >= with_retry.blocked_time,
                "p={p}: retries must not increase blocked time ({:?} vs {:?})",
                with_retry.blocked_time,
                without_retry.blocked_time
            );
        }
    }
    println!("\nretry policy absorbs transient faults in-layer; blocked time shrinks accordingly");
}
