use std::error::Error;
use std::fmt;

/// Errors produced while sealing or opening Ginja cloud objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The object does not start with the envelope magic bytes.
    BadMagic,
    /// The object is shorter than the minimum envelope frame.
    Truncated,
    /// The stored MAC does not match the recomputed one; the object was
    /// tampered with, corrupted, or opened with the wrong key/name.
    MacMismatch,
    /// The envelope advertises flags this build does not understand.
    UnknownFlags(u8),
    /// The envelope says the body is encrypted but no password was
    /// configured (or vice versa).
    KeyMissing,
    /// The compressed body is malformed and cannot be decompressed.
    CorruptCompression(String),
    /// Declared lengths are inconsistent with the actual payload.
    LengthMismatch {
        /// Length the header declared.
        expected: usize,
        /// Length actually decoded.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "object does not carry the ginja envelope magic"),
            CodecError::Truncated => write!(f, "object is shorter than the minimum envelope"),
            CodecError::MacMismatch => write!(f, "object MAC verification failed"),
            CodecError::UnknownFlags(flags) => {
                write!(f, "object uses unknown envelope flags {flags:#04x}")
            }
            CodecError::KeyMissing => {
                write!(f, "object is encrypted but no encryption key is configured")
            }
            CodecError::CorruptCompression(reason) => {
                write!(f, "compressed body is corrupt: {reason}")
            }
            CodecError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "declared length {expected} does not match actual {actual}"
                )
            }
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let variants: Vec<CodecError> = vec![
            CodecError::BadMagic,
            CodecError::Truncated,
            CodecError::MacMismatch,
            CodecError::UnknownFlags(0x80),
            CodecError::KeyMissing,
            CodecError::CorruptCompression("bad token".into()),
            CodecError::LengthMismatch {
                expected: 3,
                actual: 7,
            },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CodecError>();
    }
}
