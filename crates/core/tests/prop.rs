//! Property tests for the middleware's data-plane building blocks.

use std::sync::Arc;

use ginja_core::agg::{self, AggregatedRange};
use ginja_core::names::{DbObjectKind, DbObjectName, WalObjectName};
use ginja_core::queue::WalWrite;
use ginja_core::{bundle, CloudView};
use proptest::prelude::*;

fn arb_write() -> impl Strategy<Value = (u8, u64, Vec<u8>)> {
    // (file id, offset, data) with offsets/lengths small enough to
    // overlap frequently.
    (
        0u8..3,
        0u64..500,
        proptest::collection::vec(any::<u8>(), 1..64),
    )
}

fn replay(writes: &[WalWrite], size: usize) -> std::collections::HashMap<String, Vec<u8>> {
    let mut files: std::collections::HashMap<String, Vec<u8>> = std::collections::HashMap::new();
    for w in writes {
        let file = files
            .entry(w.file.to_string())
            .or_insert_with(|| vec![0; size]);
        let at = w.offset as usize;
        file[at..at + w.data.len()].copy_from_slice(&w.data);
    }
    files
}

fn apply_ranges(
    ranges: &[AggregatedRange],
    size: usize,
) -> std::collections::HashMap<String, Vec<u8>> {
    let mut files: std::collections::HashMap<String, Vec<u8>> = std::collections::HashMap::new();
    for r in ranges {
        let file = files.entry(r.file.clone()).or_insert_with(|| vec![0; size]);
        let at = r.offset as usize;
        file[at..at + r.data.len()].copy_from_slice(&r.data);
    }
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn aggregation_equals_naive_replay(
        raw in proptest::collection::vec(arb_write(), 1..60),
        cap in 16usize..4096,
    ) {
        let writes: Vec<WalWrite> = raw
            .into_iter()
            .map(|(f, offset, data)| WalWrite {
                file: format!("seg{f}").into(),
                offset,
                data: Arc::from(data.as_slice()),
            })
            .collect();
        let ranges = agg::aggregate(&writes, cap);
        // Every chunk respects the size cap.
        prop_assert!(ranges.iter().all(|r| r.data.len() <= cap.max(1)));
        // Applying the aggregated ranges in order reproduces the bytes
        // of applying the raw writes in order.
        prop_assert_eq!(apply_ranges(&ranges, 600), replay(&writes, 600));
        // Ranges per file are disjoint and sorted.
        for file_ranges in ranges.chunk_by(|a, b| a.file == b.file) {
            for pair in file_ranges.windows(2) {
                prop_assert!(pair[0].offset + pair[0].data.len() as u64 <= pair[1].offset);
            }
        }
    }

    #[test]
    fn wal_name_roundtrip(
        ts in any::<u64>(),
        file in "[a-zA-Z0-9_./]{1,40}",
        offset in any::<u64>(),
        len in any::<u64>(),
    ) {
        prop_assume!(!file.is_empty());
        let name = WalObjectName { ts, file, offset, len };
        prop_assert_eq!(WalObjectName::parse(&name.to_name()).unwrap(), name);
    }

    #[test]
    fn db_name_roundtrip(
        ts in any::<u64>(),
        dump in any::<bool>(),
        size in any::<u64>(),
        part in 0u32..8,
        extra in 0u32..8,
    ) {
        let name = DbObjectName {
            ts,
            kind: if dump { DbObjectKind::Dump } else { DbObjectKind::Checkpoint },
            size,
            part,
            parts: part + 1 + extra,
        };
        prop_assert_eq!(DbObjectName::parse(&name.to_name()).unwrap(), name);
    }

    #[test]
    fn name_parsers_never_panic(garbage in "[ -~]{0,60}") {
        let _ = WalObjectName::parse(&garbage);
        let _ = DbObjectName::parse(&garbage);
        let _ = CloudView::from_listing([garbage.as_str()]);
    }

    #[test]
    fn bundle_roundtrip(
        entries in proptest::collection::vec(
            ("[a-z/]{1,20}", any::<u64>(), proptest::collection::vec(any::<u8>(), 0..128)),
            0..20,
        ),
    ) {
        let ranges: Vec<bundle::FileRange> = entries
            .into_iter()
            .map(|(path, offset, data)| bundle::FileRange { path, offset, data })
            .collect();
        prop_assert_eq!(bundle::decode(&bundle::encode(&ranges)).unwrap(), ranges);
    }

    #[test]
    fn bundle_decode_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = bundle::decode(&garbage);
    }

    #[test]
    fn covered_wal_gc_never_deletes_uncovered_data(
        objects in proptest::collection::vec(
            (0u8..2, 0u64..20, 1u64..20),
            1..30,
        ),
        upto_frac in 0.0f64..=1.0,
    ) {
        // Build a view with sequential timestamps and random ranges.
        let mut view = CloudView::new();
        let mut names = Vec::new();
        for (i, (file, offset, len)) in objects.iter().enumerate() {
            let name = WalObjectName {
                ts: i as u64 + 1,
                file: format!("f{file}"),
                offset: *offset,
                len: *len,
            };
            view.add_wal(name.clone());
            names.push(name);
        }
        let upto = (names.len() as f64 * upto_frac) as u64;
        let removed = view.remove_covered_wal(upto);
        let survivors: Vec<&WalObjectName> = view.wal_entries().collect();
        // Invariant 1: only candidates (ts <= upto) were removed.
        prop_assert!(removed.iter().all(|w| w.ts <= upto));
        // Invariant 2: every byte of every removed object is covered by
        // a surviving object with a strictly greater timestamp.
        for deleted in &removed {
            for byte in deleted.offset..deleted.end() {
                let covered = survivors.iter().any(|survivor| {
                    survivor.ts > deleted.ts
                        && survivor.file == deleted.file
                        && survivor.offset <= byte
                        && survivor.end() > byte
                });
                prop_assert!(covered, "byte {byte} of {deleted:?} uncovered");
            }
        }
    }
}
