//! Chaos testing: TPC-C traffic with randomized cloud faults injected
//! throughout, ending in a disaster — the recovered database must
//! always pass the consistency probe.

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{FaultPlan, FaultStore, MemStore, OpKind};
use ginja::core::{recover_into, Ginja, GinjaConfig};
use ginja::db::{Database, DbProfile, ProfileKind};
use ginja::vfs::{DbmsProcessor, FileSystem, InterceptFs, MemFs, MySqlProcessor, PostgresProcessor};
use ginja::workload::{probe_tpcc, Tpcc, TpccScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_chaos(kind: ProfileKind, seed: u64, rounds: usize) {
    let profile = match kind {
        ProfileKind::Postgres => DbProfile::postgres_small().with_checkpoint_every(30),
        ProfileKind::MySql => DbProfile::mysql_small().with_checkpoint_every(30),
    };
    let processor: Arc<dyn DbmsProcessor> = match kind {
        ProfileKind::Postgres => Arc::new(PostgresProcessor::new()),
        ProfileKind::MySql => Arc::new(MySqlProcessor::new()),
    };
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, seed, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    let config = GinjaConfig::builder()
        .batch(6)
        .safety(90)
        .batch_timeout(Duration::from_millis(10))
        .safety_timeout(Duration::from_secs(30))
        .build()
        .unwrap();
    let ginja =
        Ginja::boot(local.clone(), cloud, processor, config.clone()).unwrap();
    let fs: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();

    // Interleave traffic with random fault injection.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4405);
    for _ in 0..rounds {
        match rng.gen_range(0..10u32) {
            0 => plan.fail_next(OpKind::Put, rng.gen_range(1..5)),
            1 => plan.fail_next(OpKind::Delete, rng.gen_range(1..8)),
            2 => plan.fail_matching(OpKind::Put, "DB/", 1),
            _ => {}
        }
        for _ in 0..rng.gen_range(1..12) {
            tpcc.run_transaction(&db).unwrap();
        }
    }

    // Let everything land, then disaster.
    assert!(ginja.sync(Duration::from_secs(30)), "pipeline must drain after chaos");
    ginja.shutdown();
    let reference_stock = db.dump_table(ginja::workload::tables::STOCK).unwrap();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    assert_eq!(db.dump_table(ginja::workload::tables::STOCK).unwrap(), reference_stock);
    let probe = probe_tpcc(&db).unwrap();
    assert!(probe.is_consistent(), "{kind:?} seed {seed}: {probe:?}");
}

#[test]
fn chaos_short_postgres() {
    for seed in [1u64, 2, 3] {
        run_chaos(ProfileKind::Postgres, seed, 25);
    }
}

#[test]
fn chaos_short_mysql() {
    for seed in [4u64, 5, 6] {
        run_chaos(ProfileKind::MySql, seed, 25);
    }
}

/// Long soak — run explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "long soak; run on demand"]
fn chaos_soak() {
    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        for seed in 0..20u64 {
            run_chaos(kind, seed, 120);
        }
    }
}
