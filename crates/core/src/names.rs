//! Cloud object naming — the §5.2 data model.
//!
//! * WAL objects: `WAL/<ts>_<filename>_<offset>` — "ts establishes total
//!   order on the WAL objects, filename is the name of the corresponding
//!   WAL segment, and offset is the position of its content in the
//!   segment". This implementation appends `_<len>` (the range length)
//!   so that garbage collection can prove a region was rewritten by a
//!   newer object (see `CloudView::safe_wal_cutoff`).
//! * DB objects: `DB/<ts>_<type>_<size>` — "ts corresponds to the
//!   timestamp of the last uploaded WAL object before the beginning of
//!   the checkpoint"; type is `dump` or `checkpoint`.
//!
//! This implementation extends DB names with `_<part>_<parts>` when a
//! bundle exceeds the 20 MB object-size cap (§5.2 footnote 3) and must
//! be split; a single-part object is named exactly as in the paper.
//!
//! Filenames may contain `_` (and `/`), so WAL names are parsed
//! positionally: first `_` after the prefix, last `_` before the offset.

use crate::GinjaError;

/// Prefix of WAL object names.
pub const WAL_PREFIX: &str = "WAL/";

/// Prefix of DB object names.
pub const DB_PREFIX: &str = "DB/";

/// Identity of one WAL object.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WalObjectName {
    /// Total-order timestamp (unique across all WAL objects).
    pub ts: u64,
    /// WAL segment file the content belongs to.
    pub file: String,
    /// Byte offset of the content within the segment.
    pub offset: u64,
    /// Length of the content in bytes.
    pub len: u64,
}

impl WalObjectName {
    /// End offset (exclusive) of the covered range.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether this object's range fully contains `other`'s (same file).
    pub fn covers(&self, other: &WalObjectName) -> bool {
        self.file == other.file && self.offset <= other.offset && self.end() >= other.end()
    }

    /// Formats the cloud object name.
    pub fn to_name(&self) -> String {
        format!(
            "{WAL_PREFIX}{}_{}_{}_{}",
            self.ts, self.file, self.offset, self.len
        )
    }

    /// Parses a cloud object name.
    ///
    /// # Errors
    ///
    /// [`GinjaError::BadObjectName`] when malformed.
    pub fn parse(name: &str) -> Result<Self, GinjaError> {
        let bad = || GinjaError::BadObjectName(name.to_string());
        let rest = name.strip_prefix(WAL_PREFIX).ok_or_else(bad)?;
        let (ts_str, rest) = rest.split_once('_').ok_or_else(bad)?;
        let (rest, len_str) = rest.rsplit_once('_').ok_or_else(bad)?;
        let (file, offset_str) = rest.rsplit_once('_').ok_or_else(bad)?;
        if file.is_empty() {
            return Err(bad());
        }
        Ok(WalObjectName {
            ts: ts_str.parse().map_err(|_| bad())?,
            file: file.to_string(),
            offset: offset_str.parse().map_err(|_| bad())?,
            len: len_str.parse().map_err(|_| bad())?,
        })
    }
}

impl std::fmt::Display for WalObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_name())
    }
}

/// Kind of a DB object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DbObjectKind {
    /// A complete copy of every database (non-WAL) file.
    Dump,
    /// The file ranges written during one DBMS checkpoint.
    Checkpoint,
}

impl DbObjectKind {
    fn as_str(self) -> &'static str {
        match self {
            DbObjectKind::Dump => "dump",
            DbObjectKind::Checkpoint => "checkpoint",
        }
    }
}

/// Identity of one DB object part.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DbObjectName {
    /// Timestamp of the last WAL object uploaded before the checkpoint
    /// began (0 for the initial boot dump).
    pub ts: u64,
    /// Dump or incremental checkpoint.
    pub kind: DbObjectKind,
    /// Total (uncompressed) bundle size in bytes across all parts.
    pub size: u64,
    /// Part index (0-based).
    pub part: u32,
    /// Total number of parts.
    pub parts: u32,
}

impl DbObjectName {
    /// Formats the cloud object name. Single-part objects use the
    /// paper's exact `DB/<ts>_<type>_<size>` form.
    pub fn to_name(&self) -> String {
        if self.parts == 1 {
            format!(
                "{DB_PREFIX}{}_{}_{}",
                self.ts,
                self.kind.as_str(),
                self.size
            )
        } else {
            format!(
                "{DB_PREFIX}{}_{}_{}_{}_{}",
                self.ts,
                self.kind.as_str(),
                self.size,
                self.part,
                self.parts
            )
        }
    }

    /// Parses a cloud object name.
    ///
    /// # Errors
    ///
    /// [`GinjaError::BadObjectName`] when malformed.
    pub fn parse(name: &str) -> Result<Self, GinjaError> {
        let bad = || GinjaError::BadObjectName(name.to_string());
        let rest = name.strip_prefix(DB_PREFIX).ok_or_else(bad)?;
        let fields: Vec<&str> = rest.split('_').collect();
        if fields.len() != 3 && fields.len() != 5 {
            return Err(bad());
        }
        let kind = match fields[1] {
            "dump" => DbObjectKind::Dump,
            "checkpoint" => DbObjectKind::Checkpoint,
            _ => return Err(bad()),
        };
        let (part, parts) = if fields.len() == 5 {
            (
                fields[3].parse().map_err(|_| bad())?,
                fields[4].parse().map_err(|_| bad())?,
            )
        } else {
            (0, 1)
        };
        if parts == 0 || part >= parts {
            return Err(bad());
        }
        Ok(DbObjectName {
            ts: fields[0].parse().map_err(|_| bad())?,
            kind,
            size: fields[2].parse().map_err(|_| bad())?,
            part,
            parts,
        })
    }
}

impl std::fmt::Display for DbObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_roundtrip_simple() {
        let n = WalObjectName {
            ts: 42,
            file: "ib_logfile0".into(),
            offset: 2048,
            len: 512,
        };
        assert_eq!(n.to_name(), "WAL/42_ib_logfile0_2048_512");
        assert_eq!(WalObjectName::parse(&n.to_name()).unwrap(), n);
    }

    #[test]
    fn wal_roundtrip_with_path_and_underscores() {
        // Both '/' and '_' inside the filename must survive.
        let n = WalObjectName {
            ts: 7,
            file: "pg_xlog/000000010000000000000003".into(),
            offset: 8192,
            len: 16384,
        };
        assert_eq!(WalObjectName::parse(&n.to_name()).unwrap(), n);
    }

    #[test]
    fn wal_bad_names_rejected() {
        for bad in [
            "WAL/",
            "WAL/notanumber_f_0_1",
            "WAL/1_f_notanumber_1",
            "WAL/1_f_0_notanumber",
            "WAL/1",
            "WAL/1_f_0", // missing length field
            "DB/1_dump_3",
            "WAL/1__0_1", // empty filename
        ] {
            assert!(WalObjectName::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn db_single_part_matches_paper_format() {
        let n = DbObjectName {
            ts: 9,
            kind: DbObjectKind::Dump,
            size: 12345,
            part: 0,
            parts: 1,
        };
        assert_eq!(n.to_name(), "DB/9_dump_12345");
        assert_eq!(DbObjectName::parse("DB/9_dump_12345").unwrap(), n);
    }

    #[test]
    fn db_checkpoint_roundtrip() {
        let n = DbObjectName {
            ts: 120,
            kind: DbObjectKind::Checkpoint,
            size: 999,
            part: 0,
            parts: 1,
        };
        assert_eq!(n.to_name(), "DB/120_checkpoint_999");
        assert_eq!(DbObjectName::parse(&n.to_name()).unwrap(), n);
    }

    #[test]
    fn db_multi_part_roundtrip() {
        let n = DbObjectName {
            ts: 5,
            kind: DbObjectKind::Dump,
            size: 50_000_000,
            part: 2,
            parts: 3,
        };
        assert_eq!(n.to_name(), "DB/5_dump_50000000_2_3");
        assert_eq!(DbObjectName::parse(&n.to_name()).unwrap(), n);
    }

    #[test]
    fn db_bad_names_rejected() {
        for bad in [
            "DB/",
            "DB/1_snapshot_3",
            "DB/x_dump_3",
            "DB/1_dump_x",
            "DB/1_dump_3_4",   // 4 fields
            "DB/1_dump_3_2_2", // part >= parts
            "DB/1_dump_3_0_0", // zero parts
            "WAL/1_f_0",
        ] {
            assert!(DbObjectName::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn ordering_by_ts_first() {
        let a = WalObjectName {
            ts: 1,
            file: "z".into(),
            offset: 0,
            len: 1,
        };
        let b = WalObjectName {
            ts: 2,
            file: "a".into(),
            offset: 0,
            len: 1,
        };
        assert!(a < b);
    }

    #[test]
    fn display_matches_to_name() {
        let n = WalObjectName {
            ts: 3,
            file: "f".into(),
            offset: 1,
            len: 2,
        };
        assert_eq!(format!("{n}"), n.to_name());
        let d = DbObjectName {
            ts: 3,
            kind: DbObjectKind::Dump,
            size: 1,
            part: 0,
            parts: 1,
        };
        assert_eq!(format!("{d}"), d.to_name());
    }
}
