//! DB object payloads: a bundle of file ranges.
//!
//! A *dump* bundle carries every database file in full (offset 0, whole
//! content); an *incremental checkpoint* bundle carries the exact byte
//! ranges the DBMS wrote during one checkpoint. Recovery applies bundles
//! with `writeLocally(file.name, file.offset, file.content)` exactly as
//! in Algorithm 1.

use crate::GinjaError;

/// One `(file, offset, content)` entry of a bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRange {
    /// Target file path.
    pub path: String,
    /// Byte offset within the file.
    pub offset: u64,
    /// Content of the range.
    pub data: Vec<u8>,
}

const MAGIC: [u8; 4] = *b"GDBB";

/// Serializes a bundle.
pub fn encode(entries: &[FileRange]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for entry in entries {
        let path = entry.path.as_bytes();
        out.extend_from_slice(&(path.len() as u16).to_le_bytes());
        out.extend_from_slice(path);
        out.extend_from_slice(&entry.offset.to_le_bytes());
        out.extend_from_slice(&(entry.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&entry.data);
    }
    out
}

/// Deserializes a bundle.
///
/// # Errors
///
/// [`GinjaError::Recovery`] on malformed input (a bundle is only
/// decoded after its envelope MAC verified, so this indicates a bug or
/// version mismatch, not random corruption).
pub fn decode(data: &[u8]) -> Result<Vec<FileRange>, GinjaError> {
    let bad = |why: &str| GinjaError::Recovery(format!("bad db bundle: {why}"));
    if data.len() < 8 || data[0..4] != MAGIC {
        return Err(bad("missing magic"));
    }
    let count = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    let mut pos = 8usize;
    for _ in 0..count {
        if pos + 2 > data.len() {
            return Err(bad("truncated path length"));
        }
        let path_len = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if pos + path_len + 12 > data.len() {
            return Err(bad("truncated entry header"));
        }
        let path = std::str::from_utf8(&data[pos..pos + path_len])
            .map_err(|_| bad("path not utf-8"))?
            .to_string();
        pos += path_len;
        let offset = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > data.len() {
            return Err(bad("truncated entry data"));
        }
        entries.push(FileRange {
            path,
            offset,
            data: data[pos..pos + len].to_vec(),
        });
        pos += len;
    }
    if pos != data.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(entries)
}

/// Splits serialized bytes into chunks of at most `cap` bytes (the
/// 20 MB object-size limit of §5.2).
pub fn chunk(bytes: Vec<u8>, cap: usize) -> Vec<Vec<u8>> {
    if bytes.len() <= cap {
        return vec![bytes];
    }
    bytes.chunks(cap).map(|c| c.to_vec()).collect()
}

/// Reassembles chunks produced by [`chunk`].
pub fn reassemble(parts: Vec<Vec<u8>>) -> Vec<u8> {
    parts.concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, offset: u64, data: &[u8]) -> FileRange {
        FileRange {
            path: path.into(),
            offset,
            data: data.to_vec(),
        }
    }

    #[test]
    fn roundtrip_multiple_entries() {
        let entries = vec![
            entry("base/16384", 0, b"page-one"),
            entry("base/16384", 8192, b"page-two"),
            entry("global/pg_control", 0, b"ctl"),
            entry("empty", 4, b""),
        ];
        assert_eq!(decode(&encode(&entries)).unwrap(), entries);
    }

    #[test]
    fn roundtrip_empty_bundle() {
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn corrupt_inputs_rejected_not_panicking() {
        let good = encode(&[entry("f", 0, b"data")]);
        for cut in 0..good.len() {
            assert!(
                decode(&good[..cut]).is_err() || cut == good.len(),
                "cut {cut}"
            );
        }
        let mut extra = good.clone();
        extra.push(0);
        assert!(decode(&extra).is_err());
        assert!(decode(b"XXXX").is_err());
    }

    #[test]
    fn non_utf8_path_rejected() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&2u16.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn chunk_and_reassemble() {
        let bytes: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let parts = chunk(bytes.clone(), 4096);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() <= 4096));
        assert_eq!(reassemble(parts), bytes);
    }

    #[test]
    fn small_payload_single_chunk() {
        let parts = chunk(vec![1, 2, 3], 4096);
        assert_eq!(parts, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn chunked_bundle_survives_roundtrip() {
        let entries = vec![entry("big", 0, &vec![42u8; 9000])];
        let encoded = encode(&entries);
        let parts = chunk(encoded, 4096);
        let back = decode(&reassemble(parts)).unwrap();
        assert_eq!(back, entries);
    }
}
