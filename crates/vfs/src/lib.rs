#![warn(missing_docs)]
//! File-system interception substrate and DBMS I/O processors.
//!
//! The Ginja prototype is "an application-specific FUSE file system …
//! able to capture the semantics of the database's I/O operations
//! without having to change the DBMS" (§5). The paper is explicit that
//! the design "only assumes that the events of Table 1 are intercepted"
//! and could equally live in the kernel or the database itself.
//!
//! This crate is that interception point, expressed as a trait instead
//! of a kernel mount (see DESIGN.md §1 for the substitution rationale):
//!
//! * [`FileSystem`] — the file operations a DBMS performs on its data
//!   directory ([`MemFs`] in memory, [`DirFs`] over a real directory).
//! * [`InterceptFs`] — the FUSE stand-in: forwards every call to an
//!   inner file system, then reports it to an [`IoProcessor`]. Ginja's
//!   core implements `IoProcessor`.
//! * [`DbmsProcessor`] — classification of writes into the Table 1
//!   events, with [`PostgresProcessor`] and [`MySqlProcessor`]
//!   implementing the exact rules of the paper:
//!
//! | Event | PostgreSQL | MySQL/InnoDB |
//! |---|---|---|
//! | Update commit | sync. write to a `pg_xlog` file | sync. write to an `ib_logfile` (except header) |
//! | Checkpoint begin | sync. write to a `pg_clog` file | sync. write to a data file (`ibdata`, `.ibd`, `.frm`) |
//! | Checkpoint end | sync. write to `global/pg_control` | sync. write at offset 512/1536 of `ib_logfile0` |

mod delay;
mod dir;
mod error;
mod event;
mod fault;
mod fs;
mod intercept;
mod journal;
mod mem;
mod mysql;
mod postgres;
mod spill;

pub use delay::{precise_sleep, DelayFs};
pub use dir::DirFs;
pub use error::FsError;
pub use event::{DbmsProcessor, IoClass};
pub use fault::{FaultFs, FsFaultKind, FsOpKind, VfsFaultPlan};
pub use fs::FileSystem;
pub use intercept::{InterceptFs, IoProcessor, NullProcessor, WriteEvent};
pub use journal::{JournaledFs, DEFAULT_SECTOR_SIZE};
pub use mem::MemFs;
pub use mysql::MySqlProcessor;
pub use postgres::PostgresProcessor;
pub use spill::SpillQueue;
