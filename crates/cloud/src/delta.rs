//! Incremental bucket listing: one LIST per poll, a *delta* out.
//!
//! Two consumers watch a Ginja bucket continuously: the DR sentinel's
//! scrubber and the warm standby's tail. Both used to rebuild a full
//! name set from every LIST and re-walk the whole bucket each cycle —
//! O(bucket) allocation and downstream work per poll even when nothing
//! changed. [`DeltaLister`] keeps the previously seen name set as its
//! watermark and hands back only what changed since the last poll
//! ([`ListingDelta::added`] / [`ListingDelta::removed`]), so steady
//! state costs one LIST plus O(delta) processing, and the cached
//! [`DeltaLister::seen`] set replaces the per-cycle rebuild for
//! membership checks.
//!
//! The helper deliberately stays at the [`ObjectStore`] four-verb
//! level: LIST itself is still a full enumeration (the paper's §5
//! lowest-common-denominator interface has no change feed), but
//! everything *after* the LIST — parsing, classification, fetching —
//! becomes proportional to the change rate, which is what dominates.

use std::collections::BTreeSet;

use crate::error::StoreError;
use crate::store::ObjectStore;

/// What changed in the bucket between two polls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ListingDelta {
    /// Names present now that were absent at the previous poll, in
    /// lexicographic order.
    pub added: Vec<String>,
    /// Names absent now that were present at the previous poll (e.g.
    /// garbage-collected), in lexicographic order.
    pub removed: Vec<String>,
    /// Total names present after this poll.
    pub total: usize,
}

impl ListingDelta {
    /// Whether the bucket is unchanged since the previous poll.
    pub fn is_unchanged(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A stateful incremental lister over one prefix of an
/// [`ObjectStore`]. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct DeltaLister {
    prefix: String,
    seen: BTreeSet<String>,
}

impl DeltaLister {
    /// A lister over `prefix` (`""` for the whole bucket) whose first
    /// poll reports everything as added.
    pub fn new(prefix: impl Into<String>) -> Self {
        DeltaLister {
            prefix: prefix.into(),
            seen: BTreeSet::new(),
        }
    }

    /// The prefix this lister watches.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Issues one LIST and returns what changed since the previous
    /// poll, updating the cached name set in place (only the delta is
    /// inserted/removed — the set is never rebuilt).
    ///
    /// # Errors
    ///
    /// The LIST's [`StoreError`] propagates; the cached set is left
    /// untouched on error, so the next successful poll reports the
    /// union of both windows' changes.
    pub fn poll(&mut self, store: &dyn ObjectStore) -> Result<ListingDelta, StoreError> {
        let names = store.list(&self.prefix)?;
        // Both sides are sorted (ObjectStore lists lexicographically;
        // `seen` is a BTreeSet), so one merge walk finds the delta.
        let mut added = Vec::new();
        let mut removed = Vec::new();
        {
            let mut have = self.seen.iter().peekable();
            for name in &names {
                while let Some(h) = have.peek() {
                    if *h < name {
                        removed.push((*h).clone());
                        have.next();
                    } else {
                        break;
                    }
                }
                if have.peek().map(|h| *h == name).unwrap_or(false) {
                    have.next();
                } else {
                    added.push(name.clone());
                }
            }
            for h in have {
                removed.push(h.clone());
            }
        }
        for name in &removed {
            self.seen.remove(name);
        }
        for name in &added {
            self.seen.insert(name.clone());
        }
        Ok(ListingDelta {
            added,
            removed,
            total: self.seen.len(),
        })
    }

    /// The cached name set as of the last poll — the full-listing view
    /// consumers used to rebuild per cycle.
    pub fn seen(&self) -> &BTreeSet<String> {
        &self.seen
    }

    /// Whether `name` was present at the last poll.
    pub fn contains(&self, name: &str) -> bool {
        self.seen.contains(name)
    }

    /// Names cached from the last poll.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no names are cached.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Notes a PUT this consumer itself performed (e.g. a sentinel
    /// repair re-upload), so the next poll does not re-report it as
    /// added.
    pub fn note_put(&mut self, name: &str) {
        self.seen.insert(name.to_string());
    }

    /// Notes a DELETE this consumer itself performed (e.g. an orphan
    /// sweep), so the next poll does not re-report it as removed.
    pub fn note_delete(&mut self, name: &str) {
        self.seen.remove(name);
    }

    /// Forgets everything: the next poll reports the whole bucket as
    /// added again.
    pub fn reset(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    #[test]
    fn first_poll_reports_everything_added() {
        let store = MemStore::new();
        store.put("WAL/1_f_0_2", b"aa").unwrap();
        store.put("DB/0_dump_2", b"bb").unwrap();
        let mut lister = DeltaLister::new("");
        let delta = lister.poll(&store).unwrap();
        assert_eq!(delta.added, vec!["DB/0_dump_2", "WAL/1_f_0_2"]);
        assert!(delta.removed.is_empty());
        assert_eq!(delta.total, 2);
        assert_eq!(lister.len(), 2);
    }

    #[test]
    fn steady_state_is_empty_delta() {
        let store = MemStore::new();
        store.put("a", b"1").unwrap();
        let mut lister = DeltaLister::new("");
        lister.poll(&store).unwrap();
        let delta = lister.poll(&store).unwrap();
        assert!(delta.is_unchanged());
        assert_eq!(delta.total, 1);
    }

    #[test]
    fn adds_and_removes_tracked_incrementally() {
        let store = MemStore::new();
        store.put("a", b"1").unwrap();
        store.put("b", b"2").unwrap();
        let mut lister = DeltaLister::new("");
        lister.poll(&store).unwrap();

        store.delete("a").unwrap();
        store.put("c", b"3").unwrap();
        let delta = lister.poll(&store).unwrap();
        assert_eq!(delta.added, vec!["c"]);
        assert_eq!(delta.removed, vec!["a"]);
        assert_eq!(delta.total, 2);
        assert!(lister.contains("b") && lister.contains("c"));
        assert!(!lister.contains("a"));
    }

    #[test]
    fn prefix_restricts_the_window() {
        let store = MemStore::new();
        store.put("WAL/1_f_0_2", b"aa").unwrap();
        store.put("DB/0_dump_2", b"bb").unwrap();
        let mut lister = DeltaLister::new("WAL/");
        let delta = lister.poll(&store).unwrap();
        assert_eq!(delta.added, vec!["WAL/1_f_0_2"]);
        assert_eq!(delta.total, 1);
    }

    #[test]
    fn own_writes_noted_are_not_re_reported() {
        let store = MemStore::new();
        store.put("a", b"1").unwrap();
        let mut lister = DeltaLister::new("");
        lister.poll(&store).unwrap();

        // The consumer itself repairs one object and sweeps another.
        store.put("b", b"2").unwrap();
        lister.note_put("b");
        store.delete("a").unwrap();
        lister.note_delete("a");
        let delta = lister.poll(&store).unwrap();
        assert!(delta.is_unchanged(), "{delta:?}");
    }

    #[test]
    fn reset_replays_the_bucket() {
        let store = MemStore::new();
        store.put("a", b"1").unwrap();
        let mut lister = DeltaLister::new("");
        lister.poll(&store).unwrap();
        lister.reset();
        assert!(lister.is_empty());
        let delta = lister.poll(&store).unwrap();
        assert_eq!(delta.added, vec!["a"]);
    }
}
