//! Backup verification (§5.4): check that the disaster-recovery plan
//! would actually work, "in an easy and cheap way, without interfering
//! with the production system".
//!
//! The three validations of the paper:
//!
//! 1. MAC-verify every object downloaded from the cloud;
//! 2. rebuild the database files (the DBMS itself then re-verifies page
//!    CRCs and WAL CRCs when it restarts over them);
//! 3. run a service-specific probe over the restarted database.
//!
//! Steps 1–2 are implemented here against a scratch file system; step 3
//! is a caller-provided closure (it needs the DBMS, which this crate
//! does not depend on).

use ginja_cloud::ObjectStore;
use ginja_codec::Codec;
use ginja_vfs::{FileSystem, MemFs};

use crate::config::GinjaConfig;
use crate::recovery::{recover_into, RecoveryReport};
use crate::GinjaError;

/// Result of a backup verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Objects whose MAC verified.
    pub objects_verified: u64,
    /// Total sealed bytes downloaded.
    pub bytes_downloaded: u64,
    /// Objects that failed MAC or parse checks (names).
    pub corrupt_objects: Vec<String>,
    /// The rebuild (recovery) report, when the rebuild was attempted.
    pub recovery: Option<RecoveryReport>,
}

impl VerifyReport {
    /// Whether every check passed.
    pub fn is_ok(&self) -> bool {
        self.corrupt_objects.is_empty() && self.recovery.is_some()
    }
}

/// Verifies the integrity of every cloud object (validation 1) and then
/// rebuilds the database into `scratch` (enabling validation 2 — start
/// the DBMS over `scratch` — and validation 3 — the caller's probe).
///
/// # Errors
///
/// Cloud listing failures propagate; per-object corruption is *not* an
/// error — it is recorded in the report, because the whole point is to
/// discover it.
pub fn verify_backup(
    cloud: &dyn ObjectStore,
    config: &GinjaConfig,
    scratch: &dyn FileSystem,
) -> Result<VerifyReport, GinjaError> {
    let codec = Codec::new(config.codec.clone());
    let mut report = VerifyReport::default();

    for name in cloud.list("")? {
        match cloud.get(&name) {
            Ok(sealed) => {
                report.bytes_downloaded += sealed.len() as u64;
                if codec.verify(&name, &sealed).is_ok() {
                    report.objects_verified += 1;
                } else {
                    report.corrupt_objects.push(name);
                }
            }
            Err(_) => report.corrupt_objects.push(name),
        }
    }

    if report.corrupt_objects.is_empty() {
        match recover_into(scratch, cloud, config) {
            Ok(recovery) => report.recovery = Some(recovery),
            Err(GinjaError::Recovery(_)) => {
                // No dump yet — not corruption, but the plan cannot
                // restore anything either. Leave `recovery` empty.
            }
            Err(other) => return Err(other),
        }
    }
    Ok(report)
}

/// Convenience wrapper that verifies into a fresh in-memory scratch
/// file system and returns it alongside the report, so a caller can
/// start the DBMS over it for validations 2–3.
///
/// # Errors
///
/// As [`verify_backup`].
pub fn verify_backup_in_memory(
    cloud: &dyn ObjectStore,
    config: &GinjaConfig,
) -> Result<(VerifyReport, std::sync::Arc<MemFs>), GinjaError> {
    let scratch = std::sync::Arc::new(MemFs::new());
    let report = verify_backup(cloud, config, scratch.as_ref())?;
    Ok((report, scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use crate::names::{DbObjectKind, DbObjectName};
    use ginja_cloud::MemStore;

    fn config() -> GinjaConfig {
        GinjaConfig::builder().build().unwrap()
    }

    fn seed_dump(cloud: &MemStore, config: &GinjaConfig) {
        let codec = Codec::new(config.codec.clone());
        let bytes = bundle::encode(&[bundle::FileRange {
            path: "base/1".into(),
            offset: 0,
            data: b"table-data".to_vec(),
        }]);
        let name = DbObjectName {
            ts: 0,
            kind: DbObjectKind::Dump,
            size: bytes.len() as u64,
            part: 0,
            parts: 1,
        };
        let sealed = codec.seal(&name.to_name(), &bytes).unwrap();
        cloud.put(&name.to_name(), &sealed).unwrap();
    }

    #[test]
    fn clean_backup_verifies_and_rebuilds() {
        let cloud = MemStore::new();
        let config = config();
        seed_dump(&cloud, &config);
        let (report, scratch) = verify_backup_in_memory(&cloud, &config).unwrap();
        assert!(report.is_ok());
        assert_eq!(report.objects_verified, 1);
        assert!(report.corrupt_objects.is_empty());
        assert_eq!(scratch.read_all("base/1").unwrap(), b"table-data");
    }

    #[test]
    fn tampered_object_reported_not_errored() {
        let cloud = MemStore::new();
        let config = config();
        seed_dump(&cloud, &config);
        let name = cloud.list("DB/").unwrap()[0].clone();
        let mut sealed = cloud.get(&name).unwrap();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x01;
        cloud.put(&name, &sealed).unwrap();

        let (report, _) = verify_backup_in_memory(&cloud, &config).unwrap();
        assert!(!report.is_ok());
        assert_eq!(report.corrupt_objects, vec![name]);
        assert!(
            report.recovery.is_none(),
            "must not rebuild from corrupt objects"
        );
    }

    #[test]
    fn empty_cloud_verifies_but_cannot_rebuild() {
        let cloud = MemStore::new();
        let (report, _) = verify_backup_in_memory(&cloud, &config()).unwrap();
        assert_eq!(report.objects_verified, 0);
        assert!(report.corrupt_objects.is_empty());
        assert!(report.recovery.is_none());
        assert!(!report.is_ok());
    }

    #[test]
    fn wrong_password_flags_everything() {
        let cloud = MemStore::new();
        let enc_config = GinjaConfig::builder()
            .codec(
                ginja_codec::CodecConfig::new()
                    .password("right")
                    .kdf_iterations(2),
            )
            .build()
            .unwrap();
        seed_dump(&cloud, &enc_config);
        let wrong = GinjaConfig::builder()
            .codec(
                ginja_codec::CodecConfig::new()
                    .password("wrong")
                    .kdf_iterations(2),
            )
            .build()
            .unwrap();
        let (report, _) = verify_backup_in_memory(&cloud, &wrong).unwrap();
        assert_eq!(report.corrupt_objects.len(), 1);
    }
}
