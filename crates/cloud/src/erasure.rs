//! Reed–Solomon erasure coding across clouds.
//!
//! The paper's multi-cloud support cites DepSky, whose cost-efficient
//! variant (DepSky-CA) stores **erasure-coded shards** instead of full
//! replicas: with `n` clouds and threshold `k`, any `k` shards rebuild
//! the object, any `n − k` providers may fail, and the storage bill is
//! `n/k×` instead of `n×`. [`ErasureStore`] brings that trade-off to
//! Ginja: 3 clouds at `k = 2` tolerate one provider loss for 1.5× the
//! single-cloud storage cost, where [`crate::ReplicatedStore`] pays 3×.
//!
//! Coding is classic Reed–Solomon over GF(2⁸) with a Vandermonde
//! generator matrix (evaluation points 1..=n): every k×k submatrix is
//! invertible, so any k shards decode.

use std::sync::Arc;

use crate::gf256;
use crate::{ObjectStore, StoreError};

const MAGIC: [u8; 4] = *b"GERS";
const HEADER_LEN: usize = 4 + 3 + 4; // magic + (k, n, index) + orig_len

/// Maximum shard count (GF(256) evaluation points must stay distinct
/// and non-zero).
pub const MAX_SHARDS: usize = 255;

fn coefficient(shard_index: usize, data_index: usize) -> u8 {
    gf256::pow(shard_index as u8 + 1, data_index as u32)
}

/// Splits `data` into `n` coded shards, any `k` of which reconstruct it.
///
/// # Panics
///
/// Panics unless `1 <= k <= n <= MAX_SHARDS`.
pub fn encode(data: &[u8], k: usize, n: usize) -> Vec<Vec<u8>> {
    assert!(
        k >= 1 && k <= n && n <= MAX_SHARDS,
        "invalid (k={k}, n={n})"
    );
    let shard_len = data.len().div_ceil(k).max(1);
    // Column-major view of the padded data: chunk c holds bytes
    // [c·L, (c+1)·L).
    let chunk = |c: usize, p: usize| -> u8 {
        let at = c * shard_len + p;
        if at < data.len() {
            data[at]
        } else {
            0
        }
    };

    (0..n)
        .map(|s| {
            let mut shard = Vec::with_capacity(HEADER_LEN + shard_len);
            shard.extend_from_slice(&MAGIC);
            shard.push(k as u8);
            shard.push(n as u8);
            shard.push(s as u8);
            shard.extend_from_slice(&(data.len() as u32).to_le_bytes());
            for p in 0..shard_len {
                let mut value = 0u8;
                for c in 0..k {
                    value = gf256::add(value, gf256::mul(coefficient(s, c), chunk(c, p)));
                }
                shard.push(value);
            }
            shard
        })
        .collect()
}

/// Parses a shard header, returning `(k, n, index, orig_len, payload)`.
fn parse_shard(shard: &[u8]) -> Result<(usize, usize, usize, usize, &[u8]), StoreError> {
    let bad = |why: &str| StoreError::corrupt(format!("bad erasure shard: {why}"));
    if shard.len() < HEADER_LEN || shard[..4] != MAGIC {
        return Err(bad("missing header"));
    }
    let k = shard[4] as usize;
    let n = shard[5] as usize;
    let index = shard[6] as usize;
    let orig_len = u32::from_le_bytes(shard[7..11].try_into().expect("sized")) as usize;
    if k == 0 || k > n || index >= n {
        return Err(bad("inconsistent parameters"));
    }
    let expected = orig_len.div_ceil(k).max(1);
    if shard.len() - HEADER_LEN != expected {
        return Err(bad("payload length mismatch"));
    }
    Ok((k, n, index, orig_len, &shard[HEADER_LEN..]))
}

/// Reconstructs the original object from any `k` (or more) shards.
///
/// # Errors
///
/// [`StoreError::Unavailable`] when shards are malformed, inconsistent,
/// or fewer than `k` distinct indices are present.
pub fn decode(shards: &[Vec<u8>]) -> Result<Vec<u8>, StoreError> {
    let bad = |why: &str| StoreError::corrupt(format!("erasure decode: {why}"));
    let mut parsed = Vec::new();
    let mut params: Option<(usize, usize, usize)> = None;
    for shard in shards {
        let (k, n, index, orig_len, payload) = parse_shard(shard)?;
        match params {
            None => params = Some((k, n, orig_len)),
            Some(p) if p != (k, n, orig_len) => return Err(bad("mixed shard sets")),
            _ => {}
        }
        if !parsed.iter().any(|(i, _)| *i == index) {
            parsed.push((index, payload));
        }
    }
    let Some((k, _n, orig_len)) = params else {
        return Err(bad("no shards"));
    };
    if parsed.len() < k {
        return Err(bad("not enough shards"));
    }
    parsed.truncate(k);

    // Invert the k×k Vandermonde submatrix for the present indices.
    let matrix: Vec<Vec<u8>> = parsed
        .iter()
        .map(|(index, _)| (0..k).map(|c| coefficient(*index, c)).collect())
        .collect();
    let inverse = gf256::invert_matrix(&matrix).ok_or_else(|| bad("singular submatrix"))?;

    let shard_len = orig_len.div_ceil(k).max(1);
    let mut data = vec![0u8; k * shard_len];
    for p in 0..shard_len {
        let column: Vec<u8> = parsed.iter().map(|(_, payload)| payload[p]).collect();
        let decoded = gf256::matrix_apply(&inverse, &column);
        for (c, value) in decoded.into_iter().enumerate() {
            data[c * shard_len + p] = value;
        }
    }
    data.truncate(orig_len);
    Ok(data)
}

/// An [`ObjectStore`] that erasure-codes every object across `n`
/// backends with threshold `k`.
#[derive(Clone)]
pub struct ErasureStore {
    backends: Vec<Arc<dyn ObjectStore>>,
    k: usize,
}

impl std::fmt::Debug for ErasureStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasureStore")
            .field("n", &self.backends.len())
            .field("k", &self.k)
            .finish()
    }
}

impl ErasureStore {
    /// Erasure-codes across `backends` so that any `k` of them suffice
    /// to read. Writes require every backend to accept its shard (a
    /// failed backend would silently erode the fault tolerance
    /// otherwise).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= backends.len() <= MAX_SHARDS`.
    pub fn new(backends: Vec<Arc<dyn ObjectStore>>, k: usize) -> Self {
        assert!(
            k >= 1 && k <= backends.len() && backends.len() <= MAX_SHARDS,
            "invalid erasure configuration"
        );
        ErasureStore { backends, k }
    }

    /// The read threshold `k`.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// Storage overhead factor versus a single copy (`n / k`).
    pub fn storage_overhead(&self) -> f64 {
        self.backends.len() as f64 / self.k as f64
    }
}

impl ObjectStore for ErasureStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let shards = encode(data, self.k, self.backends.len());
        let mut acked = 0;
        let mut last_err = None;
        for (backend, shard) in self.backends.iter().zip(shards) {
            match backend.put(name, &shard) {
                Ok(()) => acked += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if acked == self.backends.len() {
            Ok(())
        } else {
            Err(last_err.unwrap_or(StoreError::QuorumNotReached {
                acked,
                required: self.backends.len(),
            }))
        }
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let mut shards = Vec::new();
        for backend in &self.backends {
            if let Ok(shard) = backend.get(name) {
                shards.push(shard);
                if shards.len() >= self.k {
                    // Optimistically try; fall through for more shards
                    // if one of these is corrupt.
                    if let Ok(data) = decode(&shards) {
                        return Ok(data);
                    }
                }
            }
        }
        if shards.is_empty() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        decode(&shards)
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        let mut any_ok = false;
        let mut last_err = None;
        for backend in &self.backends {
            match backend.delete(name) {
                Ok(()) => any_ok = true,
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| StoreError::fatal("no backends configured")))
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let mut names = std::collections::BTreeSet::new();
        let mut any_ok = false;
        let mut last_err = None;
        for backend in &self.backends {
            match backend.list(prefix) {
                Ok(list) => {
                    any_ok = true;
                    names.extend(list);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(names.into_iter().collect())
        } else {
            Err(last_err.unwrap_or_else(|| StoreError::fatal("no backends configured")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultStore, MemStore};

    #[test]
    fn encode_decode_roundtrip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for (k, n) in [(1, 1), (1, 3), (2, 3), (3, 5), (4, 7)] {
            let shards = encode(data, k, n);
            assert_eq!(shards.len(), n);
            assert_eq!(decode(&shards).unwrap(), data, "k={k} n={n}");
        }
    }

    #[test]
    fn any_k_shards_suffice() {
        let data: Vec<u8> = (0..257u32).map(|i| (i % 256) as u8).collect();
        let (k, n) = (3, 5);
        let shards = encode(&data, k, n);
        // Every 3-of-5 combination decodes.
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    let subset = vec![shards[a].clone(), shards[b].clone(), shards[c].clone()];
                    assert_eq!(decode(&subset).unwrap(), data, "subset ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn fewer_than_k_shards_fail() {
        let shards = encode(b"payload", 3, 5);
        assert!(decode(&shards[..2]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn duplicate_shards_do_not_count_twice() {
        let shards = encode(b"payload", 2, 3);
        let dupes = vec![shards[0].clone(), shards[0].clone()];
        assert!(decode(&dupes).is_err());
    }

    #[test]
    fn empty_and_tiny_objects() {
        for data in [&b""[..], b"x", b"ab"] {
            let shards = encode(data, 2, 3);
            assert_eq!(decode(&shards).unwrap(), data);
        }
    }

    #[test]
    fn corrupt_shard_rejected() {
        let shards = encode(b"data!", 2, 3);
        let mut bad = shards[0].clone();
        bad[5] = 200; // k/n bytes inconsistent
        assert!(decode(&[bad, shards[1].clone()]).is_err());
    }

    type Backends = (
        Vec<Arc<dyn ObjectStore>>,
        Vec<Arc<MemStore>>,
        Vec<Arc<FaultPlan>>,
    );

    fn three_backends() -> Backends {
        let mut backends: Vec<Arc<dyn ObjectStore>> = Vec::new();
        let mut mems = Vec::new();
        let mut plans = Vec::new();
        for _ in 0..3 {
            let mem = Arc::new(MemStore::new());
            let plan = Arc::new(FaultPlan::new());
            backends.push(Arc::new(FaultStore::new(mem.clone(), plan.clone())));
            mems.push(mem);
            plans.push(plan);
        }
        (backends, mems, plans)
    }

    #[test]
    fn store_roundtrip_and_storage_saving() {
        let (backends, mems, _) = three_backends();
        let store = ErasureStore::new(backends, 2);
        assert!((store.storage_overhead() - 1.5).abs() < 1e-9);
        let data = vec![7u8; 9000];
        store.put("obj", &data).unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
        // Each backend holds roughly half the object (plus headers) —
        // 1.5× total, vs 3× for full replication.
        let total: u64 = mems.iter().map(|m| m.total_bytes()).sum();
        assert!(total < data.len() as u64 * 16 / 10, "stored {total}");
        assert!(total > data.len() as u64 * 14 / 10, "stored {total}");
    }

    #[test]
    fn survives_one_provider_loss() {
        let (backends, mems, _) = three_backends();
        let store = ErasureStore::new(backends, 2);
        store.put("obj", b"critical database state").unwrap();
        mems[1].clear();
        assert_eq!(store.get("obj").unwrap(), b"critical database state");
    }

    #[test]
    fn two_provider_losses_exceed_threshold() {
        let (backends, mems, _) = three_backends();
        let store = ErasureStore::new(backends, 2);
        store.put("obj", b"gone").unwrap();
        mems[0].clear();
        mems[2].clear();
        assert!(store.get("obj").is_err());
    }

    #[test]
    fn put_requires_all_backends() {
        let (backends, _, plans) = three_backends();
        let store = ErasureStore::new(backends, 2);
        plans[2].outage();
        assert!(store.put("obj", b"x").is_err());
        plans[2].restore();
        store.put("obj", b"x").unwrap();
    }

    #[test]
    fn list_and_delete() {
        let (backends, _, _) = three_backends();
        let store = ErasureStore::new(backends, 2);
        store.put("WAL/1_f_0_1", b"a").unwrap();
        store.put("DB/0_dump_1", b"b").unwrap();
        assert_eq!(store.list("WAL/").unwrap(), vec!["WAL/1_f_0_1"]);
        store.delete("WAL/1_f_0_1").unwrap();
        assert!(matches!(
            store.get("WAL/1_f_0_1"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid erasure configuration")]
    fn zero_threshold_rejected() {
        let _ = ErasureStore::new(vec![Arc::new(MemStore::new())], 0);
    }
}
