use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::usage::{CloudUsage, PutSample, UsageLedger, UsageMeter};
use crate::{ObjectStore, StoreError};

/// An [`ObjectStore`] decorator that meters every operation into a
/// shared [`UsageLedger`].
///
/// The decorator itself holds no counters any more: all accounting —
/// operation counts, transferred bytes, live stored bytes, the bounded
/// [`PutSample`] ring — lives in the ledger, which can be shared with
/// other recording layers (e.g. [`crate::ResilientStore`]) and read
/// through the one [`UsageMeter`] API.
///
/// ```rust
/// use ginja_cloud::{MemStore, MeteredStore, ObjectStore, UsageMeter};
///
/// # fn main() -> Result<(), ginja_cloud::StoreError> {
/// let store = MeteredStore::new(MemStore::new());
/// store.put("a", &[0u8; 100])?;
/// store.put("b", &[0u8; 50])?;
/// store.delete("b")?;
/// let usage = store.usage();
/// assert_eq!((usage.puts, usage.deletes), (2, 1));
/// assert_eq!(usage.stored_bytes, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MeteredStore<S> {
    inner: S,
    ledger: Arc<UsageLedger>,
}

impl<S: ObjectStore> MeteredStore<S> {
    /// Wraps `inner` with a fresh ledger.
    pub fn new(inner: S) -> Self {
        MeteredStore::with_ledger(inner, Arc::new(UsageLedger::new()))
    }

    /// Wraps `inner`, recording into an existing shared `ledger`.
    pub fn with_ledger(inner: S, ledger: Arc<UsageLedger>) -> Self {
        MeteredStore { inner, ledger }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The shared ledger this store records into.
    pub fn ledger(&self) -> &Arc<UsageLedger> {
        &self.ledger
    }
}

impl<S: ObjectStore> UsageMeter for MeteredStore<S> {
    fn usage(&self) -> CloudUsage {
        self.ledger.usage()
    }

    fn put_samples(&self) -> Vec<PutSample> {
        self.ledger.put_samples()
    }

    fn dropped_put_samples(&self) -> u64 {
        self.ledger.dropped_put_samples()
    }

    fn mean_put_latency(&self) -> Duration {
        self.ledger.mean_put_latency()
    }

    fn reset_counters(&self) {
        self.ledger.reset_counters()
    }

    fn elapsed(&self) -> Duration {
        self.ledger.elapsed()
    }
}

impl<S: ObjectStore> ObjectStore for MeteredStore<S> {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let start = Instant::now();
        match self.inner.put(name, data) {
            Ok(()) => {
                self.ledger
                    .record_put(name, data.len() as u64, start.elapsed());
                Ok(())
            }
            Err(e) => {
                self.ledger.record_failure();
                Err(e)
            }
        }
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        match self.inner.get(name) {
            Ok(data) => {
                self.ledger.record_get(data.len() as u64);
                Ok(data)
            }
            Err(e) => {
                self.ledger.record_failure();
                Err(e)
            }
        }
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        match self.inner.delete(name) {
            Ok(()) => {
                self.ledger.record_delete(name);
                Ok(())
            }
            Err(e) => {
                self.ledger.record_failure();
                Err(e)
            }
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        match self.inner.list(prefix) {
            Ok(names) => {
                self.ledger.record_list();
                Ok(names)
            }
            Err(e) => {
                self.ledger.record_failure();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultStore, MemStore, OpKind};

    #[test]
    fn counts_successful_ops() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 100]).unwrap();
        store.put("b", &[0u8; 50]).unwrap();
        store.get("a").unwrap();
        store.list("").unwrap();
        store.delete("b").unwrap();
        let u = store.usage();
        assert_eq!(u.puts, 2);
        assert_eq!(u.gets, 1);
        assert_eq!(u.lists, 1);
        assert_eq!(u.deletes, 1);
        assert_eq!(u.failures, 0);
        assert_eq!(u.bytes_uploaded, 150);
        assert_eq!(u.bytes_downloaded, 100);
    }

    #[test]
    fn stored_bytes_follow_puts_and_deletes() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 100]).unwrap();
        assert_eq!(store.usage().stored_bytes, 100);
        store.put("a", &[0u8; 40]).unwrap(); // overwrite shrinks
        assert_eq!(store.usage().stored_bytes, 40);
        store.put("b", &[0u8; 60]).unwrap();
        assert_eq!(store.usage().stored_bytes, 100);
        store.delete("a").unwrap();
        assert_eq!(store.usage().stored_bytes, 60);
        assert_eq!(store.usage().peak_stored_bytes, 100);
    }

    #[test]
    fn failures_counted_not_metered() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new());
        let store = MeteredStore::new(FaultStore::new(MemStore::new(), plan.clone()));
        plan.fail_next(OpKind::Put, 1);
        assert!(store.put("a", &[0u8; 10]).is_err());
        let u = store.usage();
        assert_eq!(u.puts, 0);
        assert_eq!(u.failures, 1);
        assert_eq!(u.bytes_uploaded, 0);
        assert_eq!(u.stored_bytes, 0);
    }

    #[test]
    fn put_samples_recorded() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 123]).unwrap();
        store.put("b", &[0u8; 456]).unwrap();
        let samples = store.put_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].bytes, 123);
        assert_eq!(samples[1].bytes, 456);
        assert_eq!(store.usage().avg_put_size(), (123 + 456) / 2);
    }

    #[test]
    fn mean_latency_zero_when_empty() {
        let store = MeteredStore::new(MemStore::new());
        assert_eq!(store.mean_put_latency(), Duration::ZERO);
    }

    #[test]
    fn reset_keeps_stored_bytes() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 100]).unwrap();
        store.reset_counters();
        let u = store.usage();
        assert_eq!(u.puts, 0);
        assert_eq!(u.stored_bytes, 100);
        assert_eq!(u.peak_stored_bytes, 100);
    }

    #[test]
    fn delete_missing_does_not_underflow() {
        let store = MeteredStore::new(MemStore::new());
        store.delete("never-existed").unwrap();
        assert_eq!(store.usage().stored_bytes, 0);
    }

    #[test]
    fn shared_ledger_merges_two_stores() {
        use std::sync::Arc;
        let ledger = Arc::new(UsageLedger::new());
        let a = MeteredStore::with_ledger(MemStore::new(), ledger.clone());
        let b = MeteredStore::with_ledger(MemStore::new(), ledger.clone());
        a.put("x", &[0u8; 10]).unwrap();
        b.put("y", &[0u8; 20]).unwrap();
        assert_eq!(ledger.usage().puts, 2);
        assert_eq!(ledger.usage().bytes_uploaded, 30);
    }

    #[test]
    fn concurrent_metering_consistent() {
        use std::sync::Arc;
        let store = Arc::new(MeteredStore::new(MemStore::new()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    store.put(&format!("o-{t}-{i}"), &[1u8; 10]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let u = store.usage();
        assert_eq!(u.puts, 200);
        assert_eq!(u.bytes_uploaded, 2000);
        assert_eq!(u.stored_bytes, 2000);
    }
}
