//! LEB128-style variable-length integer encoding used by the [`crate::glz`]
//! compressed stream and metadata records.

/// Maximum encoded length of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Appends the varint encoding of `value` to `out` and returns the number
/// of bytes written.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let start = out.len();
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out.len() - start
}

/// Reads a varint from the front of `data`, returning `(value, bytes_read)`,
/// or `None` if `data` is truncated or the encoding overflows 64 bits.
pub fn read_u64(data: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let chunk = (byte & 0x7f) as u64;
        // Reject bits that would be shifted out of range.
        if shift == 63 && chunk > 1 {
            return None;
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(n, buf.len());
            let (back, read) = read_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(read, n);
        }
    }

    #[test]
    fn single_byte_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 42);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn truncated_is_none() {
        assert_eq!(read_u64(&[]), None);
        assert_eq!(read_u64(&[0x80]), None);
        assert_eq!(read_u64(&[0xff, 0xff]), None);
    }

    #[test]
    fn overlong_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let data = [0xffu8; 11];
        assert_eq!(read_u64(&data), None);
    }

    #[test]
    fn reads_only_prefix() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(&[1, 2, 3]);
        let (v, n) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(n, 2);
    }

    #[test]
    fn max_encoded_len_holds() {
        let mut buf = Vec::new();
        let n = write_u64(&mut buf, u64::MAX);
        assert!(n <= MAX_LEN);
    }
}
