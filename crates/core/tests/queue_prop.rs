//! Property test for the PR 9 ingest fast path: N producer threads
//! hammer one `CommitQueue` while a consumer takes, acks and
//! force-flushes in a plan-driven random interleaving. The properties
//! pinned here are exactly Algorithm 2's contract:
//!
//! * **No loss, no duplication** — every `WalWrite` a producer put is
//!   delivered by `take_batch` exactly once;
//! * **Per-producer FIFO** — a producer's writes are delivered in the
//!   order it put them (the queue drains in arrival order);
//! * **Never more than S unacked** — `len()` (unacked items) never
//!   exceeds the Safety bound, at any observation point;
//! * **Acks are front-only** — `ack_front` only ever removes items that
//!   a take already delivered (checked implicitly: the final queue is
//!   empty exactly when every delivered item was acked).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ginja_core::queue::{CommitQueue, WalWrite};
use proptest::prelude::*;

/// One producer's writes: `file = "p{id}"`, `offset` = its own sequence
/// number, payload derived from both so content checks catch swaps.
fn produce(q: &CommitQueue, id: usize, count: usize) {
    for i in 0..count {
        q.put(WalWrite {
            file: format!("p{id}").into(),
            offset: i as u64,
            data: Arc::from(vec![(id as u8) ^ (i as u8); 8].as_slice()),
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_ingest_no_loss_fifo_and_safety_bound(
        producers in 1usize..5,
        per_producer in 1usize..32,
        batch in 1usize..5,
        safety_slack in 0usize..6,
        plan in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let safety = batch + safety_slack;
        let total = producers * per_producer;
        let q = Arc::new(CommitQueue::new(
            batch,
            safety,
            Duration::from_millis(2), // small TB: partial batches release fast
            Duration::from_secs(10),
        ));

        let max_len = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..producers)
            .map(|id| {
                let q = q.clone();
                std::thread::spawn(move || produce(&q, id, per_producer))
            })
            .collect();

        // Consumer: take, then ack/force-flush per the random plan. A
        // "debt" of taken-but-unacked items models the Unlocker lagging
        // behind the aggregator.
        let mut delivered: Vec<WalWrite> = Vec::new();
        let mut debt = 0usize;
        let mut step = 0usize;
        while delivered.len() < total {
            let taken = q.take_batch().expect("queue closed early");
            prop_assert!(taken.len() <= batch, "take exceeded B");
            max_len.fetch_max(q.len(), Ordering::Relaxed);
            debt += taken.len();
            delivered.extend(taken);

            let byte = plan[step % plan.len()];
            step += 1;
            if byte % 5 == 0 {
                q.force_flush();
            }
            if debt > 0 {
                // Ack between 1 and `debt` items; occasionally hold the
                // whole debt back for one round to stress the S bound.
                if byte % 7 != 0 {
                    let n = 1 + (byte as usize) % debt.max(1);
                    let n = n.min(debt);
                    q.ack_front(n);
                    debt -= n;
                } else if debt >= safety {
                    // Producers are necessarily blocked now; release one
                    // so the run always terminates.
                    q.ack_front(1);
                    debt -= 1;
                }
            }
        }
        q.ack_front(debt);
        for h in handles {
            h.join().unwrap();
        }
        q.close();

        // Never more than S unacked, at any point we could observe.
        prop_assert!(
            max_len.load(Ordering::Relaxed) <= safety,
            "unacked items exceeded the Safety bound"
        );

        // No loss, no duplication, correct payloads.
        prop_assert_eq!(delivered.len(), total);
        let mut next_seq = vec![0u64; producers];
        for w in &delivered {
            let id: usize = w.file[1..].parse().unwrap();
            // Per-producer FIFO: each producer's offsets appear in order.
            prop_assert_eq!(w.offset, next_seq[id], "producer {} out of order", id);
            next_seq[id] += 1;
            prop_assert_eq!(&w.data[..], &vec![(id as u8) ^ (w.offset as u8); 8][..]);
        }
        for (id, seq) in next_seq.iter().enumerate() {
            prop_assert_eq!(*seq as usize, per_producer, "producer {} lost writes", id);
        }

        // Everything delivered was acked: the queue drained completely.
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.unread(), 0);
    }
}
