//! SHA-1 message digest (FIPS 180-1 / RFC 3174).
//!
//! The Ginja prototype computes "MACs using SHA-1" (§6). SHA-1 is no
//! longer collision-resistant, but as the inner hash of HMAC (the use in
//! this system) it remains a reasonable integrity primitive and is kept
//! here for fidelity with the paper.

/// Size of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// Block size of SHA-1 in bytes (relevant for HMAC).
pub const BLOCK_LEN: usize = 64;

/// Incremental SHA-1 hasher.
///
/// ```rust
/// use ginja_codec::sha1::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(hex(&digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the standard initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash. May be called any number of times.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            }
        }
        // Absorb whole blocks straight from the input — no intermediate
        // stack copy per block.
        let mut blocks = rest.chunks_exact(BLOCK_LEN);
        for block in blocks.by_ref() {
            let block: &[u8; BLOCK_LEN] = block.try_into().expect("chunks_exact yields 64");
            self.process_block(block);
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Consumes the hasher and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Build the padding in place: 0x80, zeros, then the 64-bit
        // length — one block when the tail leaves >= 8 spare bytes after
        // the 0x80 marker, two otherwise.
        let mut block = self.buf;
        block[self.buf_len] = 0x80;
        if self.buf_len + 1 > BLOCK_LEN - 8 {
            block[self.buf_len + 1..].fill(0);
            self.process_block(&block);
            block.fill(0);
        } else {
            block[self.buf_len + 1..BLOCK_LEN - 8].fill(0);
        }
        block[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot convenience: SHA-1 of `data`.
///
/// ```rust
/// let d = ginja_codec::sha1::digest(b"");
/// assert_eq!(d[0], 0xda);
/// ```
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_repeated_block() {
        // RFC 3174 test 4: "0123456701234567..." x 80.
        let mut data = Vec::new();
        for _ in 0..80 {
            data.extend_from_slice(b"01234567");
        }
        assert_eq!(
            hex(&digest(&data)),
            "dea356a2cddd90c7a7ecedc5ebb563934f460452"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let one_shot = digest(&data);
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), one_shot, "split at {split}");
        }
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for b in data.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(
            hex(&h.finalize()),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn exact_block_boundary_lengths() {
        // Lengths straddling the 55/56-byte padding boundary and 64-byte blocks.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha1::new();
            h.update(&data);
            // Just verify it matches an independent two-part computation.
            let mut h2 = Sha1::new();
            h2.update(&data[..len / 2]);
            h2.update(&data[len / 2..]);
            assert_eq!(h.finalize(), h2.finalize(), "len {len}");
        }
    }
}
