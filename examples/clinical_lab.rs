//! The paper's Laboratory scenario (Table 2): a clinical laboratory's
//! database protected for well under a dollar a month.
//!
//! Drives a fixed-rate update stream (the lab processes "30 transactions
//! per minute … only 20% are updates" → 6 updates/minute) through a
//! protected database, meters actual cloud usage, and extrapolates the
//! measured usage to a month — next to the closed-form §7 model and the
//! VM-based alternative.
//!
//! ```sh
//! cargo run --release --example clinical_lab
//! ```

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{MemStore, MeteredStore, UsageMeter};
use ginja::core::{Ginja, GinjaConfig};
use ginja::cost::scenarios::laboratory;
use ginja::cost::{Ec2Pricing, S3Pricing};
use ginja::db::{Database, DbProfile};
use ginja::vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
use ginja::workload::UpdateWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Clinical laboratory scenario (paper Table 2)\n");

    // The lab's database: PostgreSQL profile, ~520-byte patient records.
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::postgres_small())?;
    db.create_table(1, 560)?;
    let mut load = UpdateWorkload::new(1, 5_000, 520, 42);
    load.apply(&db, 5_000)?; // initial patient data
    db.checkpoint()?;
    drop(db);
    println!(
        "• loaded the laboratory database ({} MB)",
        local.total_bytes() / 1_000_000
    );

    // One cloud synchronization per minute: with 6 updates/minute that
    // is B = 6 (Table 2's "1 sync/m" column).
    let config = GinjaConfig::builder()
        .batch(6)
        .safety(60)
        .batch_timeout(Duration::from_millis(100))
        .build()?;
    let metered = Arc::new(MeteredStore::new(MemStore::new()));
    let ginja = Ginja::boot(
        local.clone(),
        metered.clone(),
        Arc::new(PostgresProcessor::new()),
        config,
    )?;
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, DbProfile::postgres_small())?;
    metered.reset_counters();

    // Simulate one working day of updates: 6/minute over 8 hours =
    // 2 880 updates, with an hourly checkpoint.
    let mut stream = UpdateWorkload::new(1, 5_000, 520, 7);
    let updates_per_hour = 6 * 60;
    for _hour in 0..8 {
        stream.apply(&db, updates_per_hour)?;
        db.checkpoint()?;
    }
    ginja.sync(Duration::from_secs(30));
    let usage = metered.usage();
    ginja.shutdown();
    println!(
        "• one simulated working day: {} updates → {} PUTs, {:.1} MB uploaded, {:.1} MB stored",
        stream.applied(),
        usage.puts,
        usage.bytes_uploaded as f64 / 1e6,
        usage.stored_bytes as f64 / 1e6
    );

    // Extrapolate measured usage to a month (22 working days) at S3
    // prices, and put it next to the paper's closed-form numbers.
    let pricing = S3Pricing::may_2017();
    let puts_month = usage.puts as f64 * 22.0;
    let put_cost = puts_month * pricing.put_op;
    let storage_cost = usage.stored_bytes as f64 / 1e9 * pricing.storage_gb_month;
    println!("\nMeasured → monthly extrapolation:");
    println!("  PUT operations: {puts_month:.0} → ${put_cost:.3}");
    println!(
        "  storage:        {:.2} GB → ${storage_cost:.3}",
        usage.stored_bytes as f64 / 1e9
    );
    println!(
        "  total ≈ ${:.2}/month (this miniature lab database)",
        put_cost + storage_cost
    );

    let scenario = laboratory();
    let vm = scenario.vm_cost(&Ec2Pricing::may_2017());
    println!("\nPaper-scale laboratory (10 GB database, §7 model):");
    println!(
        "  Ginja, 1 sync/minute:  ${:.2}/month  (paper: $0.42)",
        scenario.ginja_cost(1.0)
    );
    println!(
        "  Ginja, 6 syncs/minute: ${:.2}/month  (paper: $1.50)",
        scenario.ginja_cost(6.0)
    );
    println!("  EC2 Pilot Light:       ${vm:.1}/month (paper: $93.4)");
    println!(
        "  → {:.0}×–{:.0}× cheaper (paper: 62×–222×)",
        vm / scenario.ginja_cost(6.0),
        vm / scenario.ginja_cost(1.0)
    );
    Ok(())
}
