#![warn(missing_docs)]
//! The DR sentinel: continuous auditing and self-healing for a Ginja
//! deployment.
//!
//! Ginja's value proposition is *recoverability*, yet nothing in the
//! base middleware ever re-checks that the objects in the cloud are
//! still present, uncorrupted, and sufficient to meet the configured
//! RPO/RTO — a backup that silently rots is worse than no DR at all.
//! This crate adds three cooperating components behind a live
//! [`ginja_core::Ginja`] instance:
//!
//! * the **scrubber** ([`scrub`]) lists the bucket, diffs it against
//!   the live `CloudView`, and MAC-verifies object payloads on a
//!   round-robin sample, classifying anomalies as *missing* (tracked
//!   but gone from the bucket), *corrupt* (payload fails the envelope
//!   HMAC/CRC), or *orphan* (in the bucket but untracked — e.g. the
//!   residue of a failed GC DELETE);
//! * the **rehearsal engine** ([`rehearse`]) periodically performs a
//!   full restore into a scratch in-memory file system and measures
//!   the *achieved* RTO (wall-clock restore time) and *achieved* RPO
//!   (committed updates that would be lost right now, checked against
//!   the Safety bound);
//! * the **repair loop** ([`Sentinel::run_cycle`]) re-uploads missing
//!   and corrupt objects from local state through the pipeline's own
//!   [`ginja_cloud::ResilientStore`] (sharing its retry policy and
//!   circuit breaker), deletes confirmed orphans, and raises the
//!   degraded flag in [`ginja_core::Exposure`] when damage cannot be
//!   healed.
//!
//! ```rust
//! use std::sync::Arc;
//! use std::time::Duration;
//! use ginja_cloud::MemStore;
//! use ginja_core::{Ginja, GinjaConfig};
//! use ginja_sentinel::Sentinel;
//! use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let local = Arc::new(MemFs::new());
//! let cloud = Arc::new(MemStore::new());
//! let config = GinjaConfig::builder().batch(1).safety(4).build()?;
//! let ginja = Ginja::boot(
//!     local.clone(),
//!     cloud.clone(),
//!     Arc::new(PostgresProcessor::new()),
//!     config,
//! )?;
//! let sentinel = Sentinel::new(&ginja);
//!
//! let fs = InterceptFs::new(local, Arc::new(ginja.clone()));
//! fs.write("pg_xlog/000000000000000000000000", 0, b"commit", true)?;
//! ginja.sync(Duration::from_secs(5));
//!
//! let cycle = sentinel.run_cycle()?;
//! assert!(cycle.scrub.anomalies.is_empty());
//! let rehearsal = sentinel.rehearse()?;
//! assert!(rehearsal.restorable());
//! assert!(ginja.stats().sentinel.last_rto > Duration::ZERO);
//! ginja.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod rehearse;
pub mod scrub;

mod sentinel;

pub use rehearse::{rehearse_bucket, RehearsalReport};
pub use scrub::{scrub_bucket, Anomaly, AnomalyKind, ScrubReport};
pub use sentinel::{CycleReport, RepairReport, Sentinel};
