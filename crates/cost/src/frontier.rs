//! The $1/month capacity frontier of Figure 1.
//!
//! Figure 1 plots, for an S3-based DR solution, the database size and
//! number of cloud synchronizations per hour that a fixed monthly
//! budget affords: `cost = size × C_Storage + syncs/month × C_PUT`.
//! Example points from §3: 4.3 GB at 4 syncs/minute (setup C), 20 GB at
//! 2 syncs/minute (setup B), 35 GB at one sync every 72 s (setup A).

use crate::pricing::S3Pricing;

/// Hours per 30-day month.
const HOURS_PER_MONTH: f64 = 30.0 * 24.0;

/// Monthly cost of the simple Figure 1 setup: storing `db_size_gb` and
/// uploading `syncs_per_hour` batches per hour.
pub fn monthly_cost_simple(db_size_gb: f64, syncs_per_hour: f64, pricing: &S3Pricing) -> f64 {
    db_size_gb * pricing.storage_gb_month + syncs_per_hour * HOURS_PER_MONTH * pricing.put_op
}

/// Largest database size affordable at `syncs_per_hour` under `budget`
/// dollars per month (the Figure 1 curve). Zero when the PUTs alone
/// exceed the budget.
pub fn max_db_size_gb(syncs_per_hour: f64, budget: f64, pricing: &S3Pricing) -> f64 {
    let put_cost = syncs_per_hour * HOURS_PER_MONTH * pricing.put_op;
    ((budget - put_cost) / pricing.storage_gb_month).max(0.0)
}

/// Samples the frontier at each of `syncs_per_hour`, returning
/// `(syncs/hour, max DB size GB)` pairs — the series Figure 1 plots.
pub fn budget_frontier(
    syncs_per_hour: impl IntoIterator<Item = f64>,
    budget: f64,
    pricing: &S3Pricing,
) -> Vec<(f64, f64)> {
    syncs_per_hour
        .into_iter()
        .map(|rate| (rate, max_db_size_gb(rate, budget, pricing)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pricing() -> S3Pricing {
        S3Pricing::may_2017()
    }

    #[test]
    fn setup_c_from_section_3() {
        // "4.3GB with four synchronizations per minute" → 240/hour.
        let cost = monthly_cost_simple(4.3, 240.0, &pricing());
        assert!((cost - 1.0).abs() < 0.05, "got {cost}");
    }

    #[test]
    fn setup_b_from_section_3() {
        // "a 20GB database with two synchronizations per minute".
        let cost = monthly_cost_simple(20.0, 120.0, &pricing());
        assert!((cost - 1.0).abs() < 0.15, "got {cost}");
    }

    #[test]
    fn setup_a_from_section_3() {
        // "a 35GB database synchronized once every 72 seconds" → 50/hour.
        let cost = monthly_cost_simple(35.0, 50.0, &pricing());
        assert!((cost - 1.0).abs() < 0.05, "got {cost}");
    }

    #[test]
    fn frontier_is_monotonically_decreasing() {
        let series = budget_frontier((0..=250).step_by(10).map(|x| x as f64), 1.0, &pricing());
        for pair in series.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "{pair:?}");
        }
        // Left end: ~$1 of pure storage ≈ 43 GB.
        assert!((series[0].1 - 43.47).abs() < 0.1);
    }

    #[test]
    fn budget_exhausted_by_puts_gives_zero_size() {
        // 280 syncs/hour ≈ $1.008 of PUTs alone.
        assert_eq!(max_db_size_gb(300.0, 1.0, &pricing()), 0.0);
    }

    #[test]
    fn below_frontier_is_below_budget() {
        let p = pricing();
        for rate in [10.0, 60.0, 120.0, 240.0] {
            let max = max_db_size_gb(rate, 1.0, &p);
            if max > 0.5 {
                assert!(monthly_cost_simple(max - 0.5, rate, &p) < 1.0);
            }
            assert!(monthly_cost_simple(max + 1.0, rate, &p) > 1.0);
        }
    }
}
