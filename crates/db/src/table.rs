//! Table metadata and the on-disk catalog.
//!
//! Rows are fixed-slot records addressed by a dense `u64` key:
//! `page = key / slots_per_page`, `slot = key % slots_per_page`. This
//! deterministic placement is what gives the checkpointers a realistic
//! dirty-page working set without a full B-tree implementation.

use std::collections::BTreeMap;

use ginja_vfs::FileSystem;

use crate::crc::crc32;
use crate::profile::ProfileKind;
use crate::DbError;

/// Per-slot overhead: used flag (1) + key (8) + value length (2).
pub const SLOT_OVERHEAD: usize = 11;

/// PostgreSQL catalog path (inside `base/`, so catalog writes classify
/// as data-file writes).
pub const PG_CATALOG_PATH: &str = "base/catalog";

/// MySQL catalog path (an `.ibd`, same classification property).
pub const MYSQL_CATALOG_PATH: &str = "catalog.ibd";

/// Static description of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMeta {
    /// Table identifier.
    pub id: u32,
    /// Record slot size in bytes (including [`SLOT_OVERHEAD`]).
    pub slot_size: u32,
}

impl TableMeta {
    /// Largest value this table can store.
    pub fn value_capacity(&self) -> usize {
        self.slot_size as usize - SLOT_OVERHEAD
    }

    /// Slots per page for `page_size`.
    pub fn slots_per_page(&self, page_size: usize) -> usize {
        (page_size - crate::page::PAGE_HEADER) / self.slot_size as usize
    }

    /// Data file path for this table under `kind`'s layout.
    pub fn file_path(&self, kind: ProfileKind) -> String {
        match kind {
            ProfileKind::Postgres => format!("base/{}", self.id),
            ProfileKind::MySql => format!("t{}.ibd", self.id),
        }
    }

    /// Page/slot coordinates of `key`.
    pub fn locate(&self, key: u64, page_size: usize) -> (u64, usize) {
        let spp = self.slots_per_page(page_size) as u64;
        (key / spp, (key % spp) as usize)
    }
}

/// The set of tables, persisted as a small catalog file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<u32, TableMeta>,
}

const MAGIC: [u8; 4] = *b"GCAT";

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a table.
    pub fn table(&self, id: u32) -> Option<&TableMeta> {
        self.tables.get(&id)
    }

    /// Iterates over all tables in id order.
    pub fn iter(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Adds a table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] if the id is taken.
    pub fn add(&mut self, meta: TableMeta) -> Result<(), DbError> {
        if self.tables.contains_key(&meta.id) {
            return Err(DbError::TableExists(meta.id));
        }
        self.tables.insert(meta.id, meta);
        Ok(())
    }

    /// Serializes the catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.tables.len() * 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for meta in self.tables.values() {
            out.extend_from_slice(&meta.id.to_le_bytes());
            out.extend_from_slice(&meta.slot_size.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a catalog file.
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, DbError> {
        let corrupt = |why: &str| DbError::Corrupt(format!("catalog: {why}"));
        if data.len() < 12 {
            return Err(corrupt("too short"));
        }
        if data[0..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let count = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
        let expected_len = 8 + count * 8 + 4;
        if data.len() != expected_len {
            return Err(corrupt("length mismatch"));
        }
        let stored_crc = u32::from_le_bytes(data[expected_len - 4..].try_into().unwrap());
        if crc32(&data[..expected_len - 4]) != stored_crc {
            return Err(corrupt("bad crc"));
        }
        let mut catalog = Catalog::new();
        for i in 0..count {
            let base = 8 + i * 8;
            let id = u32::from_le_bytes(data[base..base + 4].try_into().unwrap());
            let slot_size = u32::from_le_bytes(data[base + 4..base + 8].try_into().unwrap());
            catalog
                .add(TableMeta { id, slot_size })
                .map_err(|_| corrupt("duplicate table"))?;
        }
        Ok(catalog)
    }

    /// Catalog file path for `kind`.
    pub fn path(kind: ProfileKind) -> &'static str {
        match kind {
            ProfileKind::Postgres => PG_CATALOG_PATH,
            ProfileKind::MySql => MYSQL_CATALOG_PATH,
        }
    }

    /// Persists the catalog with a synchronous write.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn write(&self, fs: &dyn FileSystem, kind: ProfileKind) -> Result<(), DbError> {
        // Truncate first: the catalog can shrink (not today, but encode
        // length changes when tables are added and stale bytes past the
        // new end would corrupt decode).
        let path = Self::path(kind);
        let encoded = self.encode();
        if fs.exists(path) {
            fs.truncate(path, encoded.len() as u64)?;
        }
        fs.write(path, 0, &encoded, true)?;
        Ok(())
    }

    /// Loads the catalog for `kind`.
    ///
    /// # Errors
    ///
    /// [`DbError::RecoveryFailed`] when missing or invalid.
    pub fn read(fs: &dyn FileSystem, kind: ProfileKind) -> Result<Self, DbError> {
        let data = fs
            .read_all(Self::path(kind))
            .map_err(|e| DbError::RecoveryFailed(format!("no catalog: {e}")))?;
        Self::decode(&data).map_err(|e| DbError::RecoveryFailed(format!("catalog invalid: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_vfs::MemFs;

    #[test]
    fn meta_math() {
        let meta = TableMeta {
            id: 1,
            slot_size: 62,
        };
        assert_eq!(meta.value_capacity(), 51);
        // (512 - 16) / 62 = 8 slots per page.
        assert_eq!(meta.slots_per_page(512), 8);
        assert_eq!(meta.locate(0, 512), (0, 0));
        assert_eq!(meta.locate(7, 512), (0, 7));
        assert_eq!(meta.locate(8, 512), (1, 0));
        assert_eq!(meta.locate(17, 512), (2, 1));
    }

    #[test]
    fn file_paths_per_profile() {
        let meta = TableMeta {
            id: 42,
            slot_size: 64,
        };
        assert_eq!(meta.file_path(ProfileKind::Postgres), "base/42");
        assert_eq!(meta.file_path(ProfileKind::MySql), "t42.ibd");
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        c.add(TableMeta {
            id: 1,
            slot_size: 64,
        })
        .unwrap();
        c.add(TableMeta {
            id: 9,
            slot_size: 128,
        })
        .unwrap();
        let back = Catalog::decode(&c.encode()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.len(), 2);
        assert_eq!(back.table(9).unwrap().slot_size, 128);
        assert!(back.table(2).is_none());
    }

    #[test]
    fn empty_catalog_roundtrip() {
        let c = Catalog::new();
        assert!(Catalog::decode(&c.encode()).unwrap().is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.add(TableMeta {
            id: 1,
            slot_size: 64,
        })
        .unwrap();
        assert!(matches!(
            c.add(TableMeta {
                id: 1,
                slot_size: 32
            }),
            Err(DbError::TableExists(1))
        ));
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut c = Catalog::new();
        c.add(TableMeta {
            id: 1,
            slot_size: 64,
        })
        .unwrap();
        let enc = c.encode();
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x55;
            assert!(Catalog::decode(&bad).is_err(), "byte {i}");
        }
        assert!(Catalog::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn persist_and_load() {
        let fs = MemFs::new();
        let mut c = Catalog::new();
        c.add(TableMeta {
            id: 3,
            slot_size: 96,
        })
        .unwrap();
        c.write(&fs, ProfileKind::Postgres).unwrap();
        assert!(fs.exists(PG_CATALOG_PATH));
        assert_eq!(Catalog::read(&fs, ProfileKind::Postgres).unwrap(), c);

        c.write(&fs, ProfileKind::MySql).unwrap();
        assert_eq!(Catalog::read(&fs, ProfileKind::MySql).unwrap(), c);
    }

    #[test]
    fn rewrite_after_growth_still_valid() {
        let fs = MemFs::new();
        let mut c = Catalog::new();
        c.add(TableMeta {
            id: 1,
            slot_size: 64,
        })
        .unwrap();
        c.write(&fs, ProfileKind::Postgres).unwrap();
        c.add(TableMeta {
            id: 2,
            slot_size: 64,
        })
        .unwrap();
        c.write(&fs, ProfileKind::Postgres).unwrap();
        assert_eq!(Catalog::read(&fs, ProfileKind::Postgres).unwrap().len(), 2);
    }

    #[test]
    fn missing_catalog_is_recovery_failure() {
        let fs = MemFs::new();
        assert!(matches!(
            Catalog::read(&fs, ProfileKind::Postgres),
            Err(DbError::RecoveryFailed(_))
        ));
    }
}
