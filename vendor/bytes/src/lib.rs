//! Offline stand-in for the `bytes` crate. The workspace declares the
//! dependency but does not currently use its types; this stub provides
//! a minimal `Bytes` over `Arc<Vec<u8>>` so the dependency resolves.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::new(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}
