//! Property-based tests for the codec crate: round-trips over arbitrary
//! inputs and tamper-detection over arbitrary mutations.

use ginja_codec::{glz, varint, Codec, CodecConfig, CodecError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        let n = varint::write_u64(&mut buf, v);
        let (back, read) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(read, n);
    }

    #[test]
    fn varint_with_trailing_garbage(v in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut buf = Vec::new();
        let n = varint::write_u64(&mut buf, v);
        buf.extend_from_slice(&tail);
        let (back, read) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(read, n);
    }

    #[test]
    fn glz_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for level in [glz::Level::Fast, glz::Level::Default, glz::Level::Best] {
            let packed = glz::compress(&data, level);
            prop_assert_eq!(glz::decompress(&packed).unwrap(), data.clone());
        }
    }

    #[test]
    fn glz_roundtrip_low_entropy(
        seed in proptest::collection::vec(0u8..4, 1..64),
        repeats in 1usize..200,
    ) {
        // Highly repetitive input exercises long matches and RLE paths.
        let mut data = Vec::new();
        for _ in 0..repeats {
            data.extend_from_slice(&seed);
        }
        let packed = glz::compress(&data, glz::Level::Fast);
        prop_assert_eq!(glz::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn glz_decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // A tight output limit keeps hostile expansion cheap; correctness
        // (error, not panic/OOM) is what this property asserts.
        let _ = glz::decompress_with_limit(&garbage, 1 << 20);
    }

    #[test]
    fn codec_roundtrip_all_modes(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        comp in any::<bool>(),
        enc in any::<bool>(),
        name in "[A-Za-z0-9_/.]{1,40}",
    ) {
        let mut cfg = CodecConfig::new().compression(comp).kdf_iterations(1);
        if enc {
            cfg = cfg.password("prop-pw");
        }
        let codec = Codec::new(cfg);
        let sealed = codec.seal(&name, &data).unwrap();
        prop_assert_eq!(codec.open(&name, &sealed).unwrap(), data);
    }

    #[test]
    fn codec_detects_any_single_byte_tamper(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        flip_at_frac in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        let codec = Codec::new(CodecConfig::new().compression(true));
        let sealed = codec.seal("obj", &data).unwrap();
        let idx = ((sealed.len() - 1) as f64 * flip_at_frac) as usize;
        let mut bad = sealed.clone();
        bad[idx] ^= flip_bits;
        // Any mutation must be rejected — never silently decode wrong data.
        prop_assert!(codec.open("obj", &bad).is_err());
    }

    #[test]
    fn codec_open_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let codec = Codec::plain();
        let _ = codec.open("obj", &garbage);
    }

    #[test]
    fn glz_into_variants_byte_identical(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut packed = Vec::new();
        let mut unpacked = Vec::new();
        for level in [glz::Level::Fast, glz::Level::Default, glz::Level::Best] {
            glz::compress_into(&data, level, &mut packed);
            prop_assert_eq!(&packed, &glz::compress(&data, level));
            glz::decompress_into(&packed, glz::DEFAULT_MAX_OUTPUT, &mut unpacked).unwrap();
            prop_assert_eq!(&unpacked, &data);
        }
    }

    #[test]
    fn seal_into_byte_identical_to_seal(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        comp in any::<bool>(),
        enc in any::<bool>(),
        name in "[A-Za-z0-9_/.]{1,40}",
        rounds in 1usize..4,
    ) {
        // Two identically-constructed codecs: encryption nonces come from
        // an internal counter, so the reference and pooled paths must be
        // driven in lockstep to compare bytes.
        let build = || {
            let mut cfg = CodecConfig::new().compression(comp).kdf_iterations(1);
            if enc {
                cfg = cfg.password("prop-pw");
            }
            Codec::new(cfg)
        };
        let reference = build();
        let pooled = build();
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        for _ in 0..rounds {
            let expect = reference.seal(&name, &data).unwrap();
            pooled.seal_into(&name, &data, &mut sealed).unwrap();
            prop_assert_eq!(&sealed, &expect);
            // And the pooled open agrees with the allocating one.
            prop_assert_eq!(reference.open(&name, &expect).unwrap(), data.clone());
            pooled.open_into(&name, &sealed, &mut opened).unwrap();
            prop_assert_eq!(&opened, &data);
        }
    }

    #[test]
    fn open_into_rejects_any_single_byte_tamper(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        flip_at_frac in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        let codec = Codec::new(CodecConfig::new().compression(true));
        let sealed = codec.seal("obj", &data).unwrap();
        let idx = ((sealed.len() - 1) as f64 * flip_at_frac) as usize;
        let mut bad = sealed.clone();
        bad[idx] ^= flip_bits;
        let mut out = Vec::new();
        prop_assert!(codec.open_into("obj", &bad, &mut out).is_err());
    }

    #[test]
    fn codec_rejects_cross_name_replay(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        name_a in "[a-z]{1,10}",
        name_b in "[a-z]{1,10}",
    ) {
        prop_assume!(name_a != name_b);
        let codec = Codec::plain();
        let sealed = codec.seal(&name_a, &data).unwrap();
        prop_assert_eq!(codec.open(&name_b, &sealed), Err(CodecError::MacMismatch));
    }
}
