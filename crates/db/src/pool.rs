//! Buffer pool: in-memory table pages with dirty tracking.
//!
//! Every page carries its **recovery coordinates**: the LSN and WAL
//! block of the *first* modification since it was last flushed
//! (`rec_lsn`/`rec_block`, InnoDB's `oldest_modification`). The fuzzy
//! checkpointer advances the redo point to the minimum of these over all
//! dirty pages — exactly how InnoDB computes its checkpoint LSN.

use std::collections::HashMap;

use crate::page::Page;

/// A pooled page and its bookkeeping.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The page contents.
    pub page: Page,
    /// Whether the page has unflushed modifications.
    pub dirty: bool,
    /// LSN of the first modification since the last flush.
    pub rec_lsn: u64,
    /// WAL block of the first modification since the last flush.
    pub rec_block: u64,
}

/// Key of a pooled page: `(table id, page index)`.
pub type PageId = (u32, u64);

/// The buffer pool.
#[derive(Debug, Default)]
pub struct BufferPool {
    frames: HashMap<PageId, Frame>,
    /// Soft cap on clean frames (dirty frames are never evicted).
    clean_capacity: usize,
}

impl BufferPool {
    /// A pool that evicts clean pages beyond `clean_capacity` frames.
    pub fn new(clean_capacity: usize) -> Self {
        BufferPool {
            frames: HashMap::new(),
            clean_capacity,
        }
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of dirty frames.
    pub fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    /// Returns the frame for `id`, loading it with `load` on a miss.
    /// A loader error leaves the pool unchanged — an unreadable page
    /// must surface to the caller, not masquerade as an empty one.
    pub fn get_or_load<E>(
        &mut self,
        id: PageId,
        load: impl FnOnce() -> Result<Page, E>,
    ) -> Result<&mut Frame, E> {
        self.maybe_evict();
        match self.frames.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(v) => Ok(v.insert(Frame {
                page: load()?,
                dirty: false,
                rec_lsn: 0,
                rec_block: 0,
            })),
        }
    }

    /// Returns the frame for `id` if resident.
    pub fn get(&self, id: &PageId) -> Option<&Frame> {
        self.frames.get(id)
    }

    /// Marks `id` dirty, recording recovery coordinates on the first
    /// modification since the last flush.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not resident (callers must load first).
    pub fn mark_dirty(&mut self, id: PageId, lsn: u64, block: u64) {
        let frame = self
            .frames
            .get_mut(&id)
            .expect("mark_dirty on non-resident page");
        if !frame.dirty {
            frame.dirty = true;
            frame.rec_lsn = lsn;
            frame.rec_block = block;
        }
    }

    /// Marks `id` clean after a successful flush.
    pub fn mark_clean(&mut self, id: &PageId) {
        if let Some(frame) = self.frames.get_mut(id) {
            frame.dirty = false;
            frame.rec_lsn = 0;
            frame.rec_block = 0;
        }
    }

    /// All dirty page ids, ordered by `rec_block` then id (oldest first —
    /// the order the fuzzy checkpointer flushes in).
    pub fn dirty_ids_oldest_first(&self) -> Vec<PageId> {
        let mut ids: Vec<(u64, PageId)> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, f)| (f.rec_block, *id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    /// Minimum `(rec_block, rec_lsn)` over dirty frames, or `None` when
    /// everything is clean.
    pub fn oldest_dirty(&self) -> Option<(u64, u64)> {
        self.frames
            .values()
            .filter(|f| f.dirty)
            .map(|f| (f.rec_block, f.rec_lsn))
            .min()
    }

    /// Highest page index resident for `table` (used to size scans).
    pub fn max_page_index(&self, table: u32) -> Option<u64> {
        self.frames
            .keys()
            .filter(|(t, _)| *t == table)
            .map(|(_, p)| *p)
            .max()
    }

    /// Drops every frame (crash simulation: volatile state is lost).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    fn maybe_evict(&mut self) {
        if self.clean_capacity == 0 {
            return;
        }
        let clean = self.frames.len().saturating_sub(self.dirty_count());
        if clean <= self.clean_capacity {
            return;
        }
        let excess = clean - self.clean_capacity;
        let victims: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| !f.dirty)
            .map(|(id, _)| *id)
            .take(excess)
            .collect();
        for id in victims {
            self.frames.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufferPool {
        BufferPool::new(0) // no eviction
    }

    #[test]
    fn load_once() {
        let mut p = pool();
        let mut loads = 0;
        p.get_or_load((1, 0), || {
            loads += 1;
            Ok::<_, ()>(Page::empty(4))
        })
        .unwrap();
        p.get_or_load((1, 0), || {
            loads += 1;
            Ok::<_, ()>(Page::empty(4))
        })
        .unwrap();
        assert_eq!(loads, 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn dirty_tracking_first_modification_wins() {
        let mut p = pool();
        p.get_or_load((1, 0), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        p.mark_dirty((1, 0), 10, 2);
        p.mark_dirty((1, 0), 20, 5); // later mod must not move rec coords
        let f = p.get(&(1, 0)).unwrap();
        assert!(f.dirty);
        assert_eq!(f.rec_lsn, 10);
        assert_eq!(f.rec_block, 2);
    }

    #[test]
    fn clean_resets_coords() {
        let mut p = pool();
        p.get_or_load((1, 0), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        p.mark_dirty((1, 0), 10, 2);
        p.mark_clean(&(1, 0));
        assert_eq!(p.dirty_count(), 0);
        p.mark_dirty((1, 0), 30, 9);
        assert_eq!(p.get(&(1, 0)).unwrap().rec_lsn, 30);
    }

    #[test]
    fn oldest_first_ordering() {
        let mut p = pool();
        for (idx, block) in [(0u64, 7u64), (1, 3), (2, 5)] {
            p.get_or_load((1, idx), || Ok::<_, ()>(Page::empty(4)))
                .unwrap();
            p.mark_dirty((1, idx), block * 10, block);
        }
        assert_eq!(p.dirty_ids_oldest_first(), vec![(1, 1), (1, 2), (1, 0)]);
        assert_eq!(p.oldest_dirty(), Some((3, 30)));
    }

    #[test]
    fn oldest_dirty_none_when_clean() {
        let mut p = pool();
        p.get_or_load((1, 0), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        assert_eq!(p.oldest_dirty(), None);
    }

    #[test]
    fn eviction_spares_dirty_pages() {
        let mut p = BufferPool::new(2);
        p.get_or_load((1, 0), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        p.mark_dirty((1, 0), 1, 1);
        for i in 1..8u64 {
            p.get_or_load((1, i), || Ok::<_, ()>(Page::empty(4)))
                .unwrap();
        }
        assert!(p.get(&(1, 0)).is_some(), "dirty page evicted");
        assert!(p.get(&(1, 0)).unwrap().dirty);
        // Clean residents stay near the cap (the newest load lands after
        // eviction, so allow capacity + 1).
        let clean = p.len() - p.dirty_count();
        assert!(clean <= 3, "clean {clean}");
    }

    #[test]
    fn max_page_index_per_table() {
        let mut p = pool();
        p.get_or_load((1, 3), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        p.get_or_load((1, 7), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        p.get_or_load((2, 50), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        assert_eq!(p.max_page_index(1), Some(7));
        assert_eq!(p.max_page_index(2), Some(50));
        assert_eq!(p.max_page_index(3), None);
    }

    #[test]
    fn clear_drops_everything() {
        let mut p = pool();
        p.get_or_load((1, 0), || Ok::<_, ()>(Page::empty(4)))
            .unwrap();
        p.clear();
        assert!(p.is_empty());
    }
}
