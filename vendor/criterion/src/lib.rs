//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness subset this workspace's micro-benchmarks use
//! (`criterion_group!`/`criterion_main!`, `Criterion`, groups,
//! throughput annotation, `Bencher::iter`). Measurement is a simple
//! calibrated wall-clock loop reporting mean time per iteration and
//! throughput; there is no statistical analysis, plotting, or baseline
//! comparison.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then running as many
    /// iterations as fit in the configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: count how many iterations fit.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut calibration_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as u64 / calibration_iters.max(1);
        let target_iters = (self.measurement_time.as_nanos() as u64 / per_iter.max(1)).max(1);

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.result = Some(Measurement {
            mean: elapsed / target_iters as u32,
            iters: target_iters,
        });
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (retained for API compatibility;
    /// this stub times one merged sample).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{id}"), None, self.measurement_time, self.warm_up_time, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: format!("{name}"),
            throughput: None,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    /// Nominal sample count (unused by the stub's measurement loop).
    pub fn configured_sample_size(&self) -> usize {
        self.sample_size
    }
}

/// Group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
    }

    /// Runs a benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.measurement_time,
            self.warm_up_time,
            |b| f(b, input),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        measurement_time,
        warm_up_time,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(m) => {
            let per_iter = m.mean;
            let rate = match throughput {
                Some(Throughput::Bytes(bytes)) if per_iter.as_nanos() > 0 => {
                    let gib_s = bytes as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
                    format!("  {gib_s:>8.3} GiB/s")
                }
                Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
                    let elem_s = n as f64 / per_iter.as_secs_f64();
                    format!("  {elem_s:>10.0} elem/s")
                }
                _ => String::new(),
            };
            println!("{label:<44} {per_iter:>12.3?}/iter  ({} iters){rate}", m.iters);
        }
        None => println!("{label:<44} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("id", 64), &vec![0u8; 64], |b, data| {
            b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
