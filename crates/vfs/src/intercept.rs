use std::sync::Arc;

use crate::{FileSystem, FsError};

/// A file write observed by the interception layer.
///
/// This is the unit Ginja's Algorithm 2 receives: "When
/// write(WAL_segment, offset, content) is intercepted".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEvent {
    /// Virtual path of the file written. Shared (`Arc<str>`) so the
    /// intercept → commit-queue handoff clones a refcount, not a heap
    /// string — the DB-facing write path allocates nothing per record
    /// beyond the one event it must build.
    pub path: Arc<str>,
    /// Byte offset of the write.
    pub offset: u64,
    /// The written bytes.
    pub data: Arc<[u8]>,
    /// Whether the write was synchronous (`O_SYNC`/`fsync`); Table 1's
    /// event detection only fires on synchronous writes.
    pub sync: bool,
}

impl WriteEvent {
    /// Length of the written range.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the write carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// End offset (exclusive) of the written range.
    pub fn end(&self) -> u64 {
        self.offset + self.data.len() as u64
    }
}

/// Receiver of intercepted file operations — Ginja's core implements
/// this, taking the role the FUSE callbacks played in the prototype.
///
/// `on_write` is called *after* the write has been applied locally
/// (matching Algorithm 2: `writeLocally` precedes `commitQueue.put`) and
/// may block — that is exactly how Ginja applies back-pressure when the
/// Safety limit is violated.
pub trait IoProcessor: Send + Sync {
    /// Called after a local write completed.
    fn on_write(&self, event: &WriteEvent);

    /// Called after a file deletion.
    fn on_delete(&self, _path: &str) {}

    /// Called after a rename.
    fn on_rename(&self, _from: &str, _to: &str) {}
}

/// A no-op processor (useful to measure the interception overhead alone,
/// the "FUSE" baseline column of Figure 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProcessor;

impl IoProcessor for NullProcessor {
    fn on_write(&self, _event: &WriteEvent) {}
}

/// The FUSE stand-in: forwards every operation to an inner
/// [`FileSystem`] and reports mutations to an [`IoProcessor`].
///
/// ```rust
/// use std::sync::Arc;
/// use ginja_vfs::{FileSystem, InterceptFs, IoProcessor, MemFs, WriteEvent};
///
/// #[derive(Default)]
/// struct Counter(std::sync::atomic::AtomicUsize);
/// impl IoProcessor for Counter {
///     fn on_write(&self, _e: &WriteEvent) {
///         self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
///     }
/// }
///
/// # fn main() -> Result<(), ginja_vfs::FsError> {
/// let counter = Arc::new(Counter::default());
/// let fs = InterceptFs::new(MemFs::new(), counter.clone());
/// fs.write("pg_xlog/0001", 0, b"commit record", true)?;
/// assert_eq!(counter.0.load(std::sync::atomic::Ordering::SeqCst), 1);
/// # Ok(())
/// # }
/// ```
pub struct InterceptFs<F> {
    inner: F,
    processor: Arc<dyn IoProcessor>,
}

impl<F: std::fmt::Debug> std::fmt::Debug for InterceptFs<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterceptFs")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<F: FileSystem> InterceptFs<F> {
    /// Wraps `inner`, reporting to `processor`.
    pub fn new(inner: F, processor: Arc<dyn IoProcessor>) -> Self {
        InterceptFs { inner, processor }
    }

    /// The wrapped file system.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Swaps the processor (used when re-wiring after recovery).
    pub fn set_processor(&mut self, processor: Arc<dyn IoProcessor>) {
        self.processor = processor;
    }
}

impl<F: FileSystem> FileSystem for InterceptFs<F> {
    fn create(&self, path: &str) -> Result<(), FsError> {
        self.inner.create(path)
    }

    fn write(&self, path: &str, offset: u64, data: &[u8], sync: bool) -> Result<(), FsError> {
        // Algorithm 2 ordering: apply locally first, then hand to the
        // processor (which may block the caller for Safety enforcement).
        self.inner.write(path, offset, data, sync)?;
        let event = WriteEvent {
            path: Arc::from(path),
            offset,
            data: Arc::from(data),
            sync,
        };
        self.processor.on_write(&event);
        Ok(())
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        self.inner.read(path, offset, len)
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.inner.read_all(path)
    }

    fn len(&self, path: &str) -> Result<u64, FsError> {
        self.inner.len(path)
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError> {
        self.inner.truncate(path, len)
    }

    fn delete(&self, path: &str) -> Result<(), FsError> {
        self.inner.delete(path)?;
        self.processor.on_delete(path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        self.inner.rename(from, to)?;
        self.processor.on_rename(from, to);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Recorder {
        writes: Mutex<Vec<WriteEvent>>,
        deletes: Mutex<Vec<String>>,
        renames: Mutex<Vec<(String, String)>>,
    }

    impl IoProcessor for Recorder {
        fn on_write(&self, event: &WriteEvent) {
            self.writes.lock().push(event.clone());
        }
        fn on_delete(&self, path: &str) {
            self.deletes.lock().push(path.to_string());
        }
        fn on_rename(&self, from: &str, to: &str) {
            self.renames.lock().push((from.to_string(), to.to_string()));
        }
    }

    fn rig() -> (InterceptFs<MemFs>, Arc<Recorder>) {
        let rec = Arc::new(Recorder::default());
        (InterceptFs::new(MemFs::new(), rec.clone()), rec)
    }

    #[test]
    fn writes_forwarded_and_reported() {
        let (fs, rec) = rig();
        fs.write("wal/1", 8, b"data", true).unwrap();
        assert_eq!(fs.inner().read("wal/1", 8, 4).unwrap(), b"data");
        let writes = rec.writes.lock();
        assert_eq!(writes.len(), 1);
        assert_eq!(&*writes[0].path, "wal/1");
        assert_eq!(writes[0].offset, 8);
        assert_eq!(&writes[0].data[..], b"data");
        assert!(writes[0].sync);
        assert_eq!(writes[0].end(), 12);
        assert_eq!(writes[0].len(), 4);
    }

    #[test]
    fn local_write_happens_before_event() {
        // The processor must observe the data already durable locally.
        struct Check {
            fs: Arc<MemFs>,
        }
        impl IoProcessor for Check {
            fn on_write(&self, event: &WriteEvent) {
                let read = self
                    .fs
                    .read(&event.path, event.offset, event.len())
                    .unwrap();
                assert_eq!(read, &event.data[..]);
            }
        }
        let mem = Arc::new(MemFs::new());
        let fs = InterceptFs::new(mem.clone(), Arc::new(Check { fs: mem.clone() }));
        fs.write("f", 0, b"visible", true).unwrap();
    }

    #[test]
    fn failed_write_not_reported() {
        // DirFs with an invalid path fails; no event should be emitted.
        let rec = Arc::new(Recorder::default());
        let dir = crate::DirFs::open(
            std::env::temp_dir().join(format!("ginja-int-{}", std::process::id())),
        )
        .unwrap();
        let fs = InterceptFs::new(dir, rec.clone());
        assert!(fs.write("../bad", 0, b"x", false).is_err());
        assert!(rec.writes.lock().is_empty());
    }

    #[test]
    fn deletes_and_renames_reported() {
        let (fs, rec) = rig();
        fs.write("a", 0, b"1", false).unwrap();
        fs.rename("a", "b").unwrap();
        fs.delete("b").unwrap();
        assert_eq!(
            rec.renames.lock().as_slice(),
            &[("a".to_string(), "b".to_string())]
        );
        assert_eq!(rec.deletes.lock().as_slice(), &["b".to_string()]);
    }

    #[test]
    fn reads_not_intercepted() {
        let (fs, rec) = rig();
        fs.write("f", 0, b"abc", false).unwrap();
        let _ = fs.read("f", 0, 3).unwrap();
        let _ = fs.read_all("f").unwrap();
        let _ = fs.len("f").unwrap();
        let _ = fs.list("").unwrap();
        assert_eq!(rec.writes.lock().len(), 1);
    }

    #[test]
    fn null_processor_is_transparent() {
        let fs = InterceptFs::new(MemFs::new(), Arc::new(NullProcessor));
        fs.write("f", 0, b"x", true).unwrap();
        assert_eq!(fs.read_all("f").unwrap(), b"x");
    }
}
