use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use crate::{ObjectStore, StoreError};

/// An [`ObjectStore`] backed by a local directory.
///
/// Object names map to file paths under the root (Ginja names contain
/// `/`, which becomes directory nesting). Useful for development, for
/// air-gapped backups onto removable media, and for any remote target
/// that mounts as a file system (NFS, SSHFS, rclone mounts of real
/// cloud buckets) — the operator CLI uses it for `dir:` cloud URLs.
///
/// Writes go through a temp file + rename so a crashed `put` never
/// leaves a half-written object visible.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) an object store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the directory cannot be created,
    /// classified retryable/fatal by the underlying I/O error kind.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| StoreError::io(format_args!("create {}", root.display()), e))?;
        Ok(DirStore { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, name: &str) -> Result<PathBuf, StoreError> {
        if name.is_empty()
            || name
                .split('/')
                .any(|seg| seg == ".." || seg == "." || seg.is_empty())
        {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        Ok(self.root.join(name))
    }

    fn walk(dir: &Path, base: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                Self::walk(&path, base, out)?;
            } else if let Ok(rel) = path.strip_prefix(base) {
                let name = rel.to_string_lossy().replace('\\', "/");
                if !name.ends_with(".tmp") {
                    out.push(name);
                }
            }
        }
        Ok(())
    }
}

impl ObjectStore for DirStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let path = self.resolve(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| StoreError::io("mkdir", e))?;
        }
        // Atomic visibility: write aside, fsync, rename into place.
        let tmp = path.with_extension(format!(
            "{}.tmp",
            path.extension().and_then(|e| e.to_str()).unwrap_or("o")
        ));
        let write = || -> std::io::Result<()> {
            use std::io::Write;
            let mut file = fs::File::create(&tmp)?;
            file.write_all(data)?;
            file.sync_data()?;
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::io(format_args!("put {name}"), e)
        })
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.resolve(name)?;
        fs::read(&path).map_err(|e| {
            if e.kind() == ErrorKind::NotFound {
                StoreError::NotFound(name.to_string())
            } else {
                StoreError::io(format_args!("get {name}"), e)
            }
        })
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        let path = self.resolve(name)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(format_args!("delete {name}"), e)),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        Self::walk(&self.root, &self.root, &mut names).map_err(|e| StoreError::io("list", e))?;
        names.retain(|n| n.starts_with(prefix));
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DirStore {
        let dir = std::env::temp_dir()
            .join("ginja-dirstore-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DirStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip_with_nested_names() {
        let s = temp_store("rw");
        s.put("WAL/3_pg_xlog/0001_0_8192", b"bytes").unwrap();
        assert_eq!(s.get("WAL/3_pg_xlog/0001_0_8192").unwrap(), b"bytes");
    }

    #[test]
    fn overwrite_replaces() {
        let s = temp_store("ow");
        s.put("DB/0_dump_10", b"one").unwrap();
        s.put("DB/0_dump_10", b"two").unwrap();
        assert_eq!(s.get("DB/0_dump_10").unwrap(), b"two");
    }

    #[test]
    fn missing_object_not_found() {
        let s = temp_store("missing");
        assert!(matches!(s.get("nope"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn delete_idempotent() {
        let s = temp_store("del");
        s.put("a", b"1").unwrap();
        s.delete("a").unwrap();
        s.delete("a").unwrap();
        assert!(matches!(s.get("a"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn list_sorted_with_prefix_and_no_temp_files() {
        let s = temp_store("list");
        s.put("WAL/2_f_0_1", b"").unwrap();
        s.put("WAL/1_f_0_1", b"").unwrap();
        s.put("DB/0_dump_0", b"").unwrap();
        assert_eq!(s.list("WAL/").unwrap(), vec!["WAL/1_f_0_1", "WAL/2_f_0_1"]);
        assert_eq!(s.list("").unwrap().len(), 3);
    }

    #[test]
    fn hostile_names_rejected() {
        let s = temp_store("hostile");
        assert!(s.put("../escape", b"x").is_err());
        assert!(s.put("a//b", b"x").is_err());
        assert!(s.put("", b"x").is_err());
        assert!(s.get("./x").is_err());
    }
}
