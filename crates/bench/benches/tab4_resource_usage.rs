//! Table 4: database-server resource usage (CPU and memory) with and
//! without Ginja, for TPC-C under the 100/1000 configuration, with and
//! without compression and encryption.
//!
//! The paper samples an 8-core/32 GB server; here we sample this
//! process via `/proc` around each run. Absolute numbers depend on the
//! host; the *deltas* between configurations are the reproduction
//! target: Ginja adds a little CPU over FUSE, compression adds more CPU
//! than encryption, and none of it is prohibitive.

use std::time::{Duration, Instant};

use ginja_bench::rig::{template, BaselineKind, ProtectedRig, RigOptions};
use ginja_bench::sysres;
use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, sim_minutes, time_scale};
use ginja_codec::CodecConfig;
use ginja_core::GinjaConfig;
use ginja_db::ProfileKind;
use ginja_workload::TpccScale;

fn config(codec: CodecConfig) -> GinjaConfig {
    let scale = time_scale();
    GinjaConfig::builder()
        .batch(100)
        .safety(1000)
        .batch_timeout(Duration::from_secs_f64(5.0 * scale))
        .safety_timeout(Duration::from_secs_f64(30.0 * scale))
        .uploaders(5)
        .codec(codec)
        .build()
        .expect("valid config")
}

struct Row {
    label: &'static str,
    baseline: BaselineKind,
    codec: CodecConfig,
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            label: "Native FS",
            baseline: BaselineKind::Native,
            codec: CodecConfig::new(),
        },
        Row {
            label: "FUSE FS",
            baseline: BaselineKind::Fuse,
            codec: CodecConfig::new(),
        },
        Row {
            label: "100/1000",
            baseline: BaselineKind::Ginja,
            codec: CodecConfig::new(),
        },
        Row {
            label: "100/1000 Comp",
            baseline: BaselineKind::Ginja,
            codec: CodecConfig::new().compression(true),
        },
        Row {
            label: "100/1000 Crypt",
            baseline: BaselineKind::Ginja,
            codec: CodecConfig::new().password("tab4-password"),
        },
        Row {
            label: "100/1000 C+C",
            baseline: BaselineKind::Ginja,
            codec: CodecConfig::new()
                .compression(true)
                .password("tab4-password"),
        },
    ]
}

fn main() {
    println!(
        "time scale: {} | simulated minutes per run: {}",
        time_scale(),
        sim_minutes()
    );
    println!("(CPU is process utilization in cores; Δ columns are relative to Native FS)");

    for kind in [ProfileKind::Postgres, ProfileKind::MySql] {
        let (warehouses, name) = match kind {
            ProfileKind::Postgres => (1, "PostgreSQL"),
            ProfileKind::MySql => (2, "MySQL"),
        };
        println!("\n== Table 4 ({name}): server resource usage ==");
        let template_fs = template(kind, warehouses, TpccScale::bench(), 0x7B4);

        let mut t = Table::new(&[
            "configuration",
            "CPU (cores)",
            "ΔCPU vs native",
            "RSS MB",
            "ΔRSS MB",
            "seal CPU ms",
        ]);
        let mut native: Option<(f64, f64)> = None;
        for row in rows() {
            let mut options = match kind {
                ProfileKind::Postgres => RigOptions::postgres(config(row.codec.clone())),
                ProfileKind::MySql => RigOptions::mysql(config(row.codec.clone())),
            };
            options = options.baseline(row.baseline);
            let rig = ProtectedRig::build(&template_fs, options);

            let before = sysres::sample();
            let start = Instant::now();
            let _report = rig.run(run_wall_duration());
            let wall = start.elapsed();
            let after = sysres::sample();
            let (stats, _usage) = rig.finish();

            let cpu = sysres::cpu_utilization(&before, &after, wall);
            let rss_mb = after.rss_kb as f64 / 1024.0;
            let (base_cpu, base_rss) = *native.get_or_insert((cpu, rss_mb));
            let seal_ms = stats
                .map(|s| s.seal_time.as_secs_f64() * 1000.0)
                .unwrap_or(0.0);
            t.row(&[
                row.label.to_string(),
                fmt(cpu, 2),
                fmt(cpu - base_cpu, 2),
                fmt(rss_mb, 0),
                fmt(rss_mb - base_rss, 0),
                fmt(seal_ms, 1),
            ]);
        }
        println!();
        t.print();
        println!(
            "shape check ({name}): Ginja adds modest CPU; compression costs more CPU than \
             encryption (paper: +4.5% vs +1.5% CPU on an 8-core server)"
        );
    }
}
