#![warn(missing_docs)]
//! A miniature WAL-based transactional DBMS with PostgreSQL and
//! MySQL/InnoDB I/O profiles — the "protected system" of the Ginja
//! reproduction.
//!
//! Ginja (Middleware '17) integrates with databases purely at the file
//! system level, so what matters for a faithful reproduction is the
//! **on-disk behaviour** described in the paper's §4:
//!
//! * data durability via table files plus a write-ahead log split into
//!   segment files, with I/O at page granularity;
//! * on commit, "the only important I/O performed is a synchronous write
//!   to a WAL file segment";
//! * table pages stay in memory until a checkpoint writes them out —
//!   periodic full checkpoints for PostgreSQL (clog write → dirty pages
//!   → `pg_control`), opportunistic *fuzzy* checkpoints for InnoDB
//!   (page batches → checkpoint header at offset 512/1536 of
//!   `ib_logfile0`);
//! * after a crash, the DBMS rebuilds its state from the last
//!   checkpoint pointer plus the WAL (redo with the ARIES page-LSN
//!   test), discarding any uncommitted tail.
//!
//! [`Database`] implements all of that over any
//! [`ginja_vfs::FileSystem`], which is how Ginja gets to observe every
//! write (wrap the file system in a `ginja_vfs::InterceptFs`).
//!
//! ```rust
//! use std::sync::Arc;
//! use ginja_db::{Database, DbProfile};
//! use ginja_vfs::MemFs;
//!
//! # fn main() -> Result<(), ginja_db::DbError> {
//! let db = Database::create(Arc::new(MemFs::new()), DbProfile::postgres_small())?;
//! db.create_table(1, 64)?;
//! db.put(1, 7, b"hello".to_vec())?;
//!
//! // Crash: only the file system survives. Recovery replays the WAL.
//! let fs = db.crash();
//! let db = Database::open(fs, DbProfile::postgres_small())?;
//! assert_eq!(db.get(1, 7)?.unwrap(), b"hello");
//! # Ok(())
//! # }
//! ```

pub mod control;
pub mod crc;
pub mod page;
pub mod pool;
pub mod record;
pub mod table;
pub mod wal;

mod db;
mod error;
mod profile;

pub use db::{Database, DbStats, Transaction, PG_CLOG_PATH};
pub use error::DbError;
pub use profile::{DbProfile, IoDelay, ProfileKind};
