//! Process resource sampling for the Table 4 experiment (server CPU and
//! memory usage with and without Ginja), via `/proc` on Linux.

use std::time::Duration;

/// A point-in-time resource sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSample {
    /// Accumulated process CPU time (user + system).
    pub cpu: Duration,
    /// Resident set size in kilobytes.
    pub rss_kb: u64,
}

/// Samples the current process.
///
/// Returns zeros on platforms without `/proc` so that benches degrade
/// gracefully instead of failing.
pub fn sample() -> ResourceSample {
    ResourceSample {
        cpu: cpu_time().unwrap_or(Duration::ZERO),
        rss_kb: rss_kb().unwrap_or(0),
    }
}

fn cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The command name is parenthesized and may contain spaces; fields
    // utime/stime are the 12th and 13th after the closing paren.
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    let ticks_per_sec = 100.0; // CLK_TCK on all mainstream Linux configs
    Some(Duration::from_secs_f64(
        (utime + stime) as f64 / ticks_per_sec,
    ))
}

fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// CPU utilization (0.0–n_cores) between two samples over `wall` time.
pub fn cpu_utilization(before: &ResourceSample, after: &ResourceSample, wall: Duration) -> f64 {
    if wall.is_zero() {
        return 0.0;
    }
    after.cpu.saturating_sub(before.cpu).as_secs_f64() / wall.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_works_on_linux() {
        let s = sample();
        // On Linux both fields should be live; elsewhere they are zero.
        if std::path::Path::new("/proc/self/stat").exists() {
            assert!(s.rss_kb > 0);
        }
    }

    #[test]
    fn cpu_grows_with_work() {
        if !std::path::Path::new("/proc/self/stat").exists() {
            return;
        }
        let before = sample();
        // Burn some CPU deterministically.
        let mut acc = 0u64;
        for i in 0..60_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = sample();
        assert!(after.cpu >= before.cpu);
    }

    #[test]
    fn utilization_math() {
        let a = ResourceSample {
            cpu: Duration::from_millis(100),
            rss_kb: 1,
        };
        let b = ResourceSample {
            cpu: Duration::from_millis(600),
            rss_kb: 1,
        };
        let u = cpu_utilization(&a, &b, Duration::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(cpu_utilization(&a, &b, Duration::ZERO), 0.0);
    }
}
