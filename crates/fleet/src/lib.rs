#![warn(missing_docs)]
//! Multi-tenant fleet management for Ginja.
//!
//! The paper protects *one* database for a dollar a month. This crate
//! protects *N* of them for N dollars — without provisioning N of
//! everything. A [`Fleet`] owns many tenants, each a complete Ginja
//! deployment (its own database, its own `tenants/<name>/` prefix in
//! one shared bucket, its own B/TB and — immutably — its own S/TS),
//! multiplexed over shared infrastructure:
//!
//! * one **fair-share executor**: a weighted deficit-round-robin
//!   scheduler bounds the fleet's total concurrent cloud transfers and
//!   guarantees a starvation bound per tenant, so one tenant's bulk
//!   dump cannot blow another's commit latency;
//! * one **usage ledger** behind a single resilient store: exact
//!   fleet-wide metering, one retry policy, one circuit breaker;
//! * one **budget arbiter**: the fleet's monthly budget splits into
//!   per-tenant sub-budgets by weight, and each tenant's cost knobs
//!   are steered MIMD-style against its own metered spend — its
//!   Safety bound is never loosened;
//! * one **sentinel rotation**: round-robin offline scrubs across
//!   tenant prefixes on the shared store.
//!
//! ```rust
//! use std::sync::Arc;
//! use std::time::Duration;
//! use ginja_cloud::MemStore;
//! use ginja_core::GinjaConfig;
//! use ginja_db::DbProfile;
//! use ginja_fleet::{Fleet, FleetConfig, TenantSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = Fleet::new(Arc::new(MemStore::new()), FleetConfig::default());
//! let config = GinjaConfig::builder().batch(2).safety(16).build()?;
//! let a = fleet.attach(TenantSpec::new(
//!     "alpha",
//!     DbProfile::postgres_small(),
//!     config.clone(),
//! ))?;
//! a.db().create_table(1, 64)?;
//! a.db().put(1, 7, b"hello".to_vec())?;
//! assert!(fleet.sync_all(Duration::from_secs(10)));
//! let snap = fleet.snapshot();
//! assert!(snap.healthy());
//! assert!(snap.tenant("alpha").unwrap().stats.updates_intercepted >= 1);
//! fleet.shutdown();
//! # Ok(())
//! # }
//! ```

mod fleet;
mod snapshot;

pub use fleet::{Fleet, FleetConfig, FleetError, Tenant, TenantSpec};
pub use snapshot::{FleetSnapshot, TenantSnapshot};
