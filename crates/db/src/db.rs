//! The database engine: transactions, checkpoints, crash recovery.
//!
//! This is the "protected system" of the reproduction — a miniature
//! WAL-based transactional store whose *on-disk behaviour* matches what
//! Ginja needs to observe from PostgreSQL or MySQL/InnoDB (§4):
//!
//! * committing writes WAL blocks synchronously (one intercepted
//!   "update" per block write);
//! * table pages stay in the buffer pool until a checkpoint flushes
//!   them (periodic/full for PostgreSQL, fuzzy batches for InnoDB);
//! * a control record concludes every checkpoint and is where crash
//!   recovery starts its redo scan.

use std::sync::Arc;

use ginja_vfs::{FileSystem, FsError};
use parking_lot::Mutex;

use crate::control::ControlData;
use crate::page::Page;
use crate::pool::{BufferPool, PageId};
use crate::profile::{DbProfile, ProfileKind};
use crate::record::{WalOp, WalRecord};
use crate::table::{Catalog, TableMeta};
use crate::wal::{self, LogSpace, WalWriter, BLOCK_HEADER, FRAG_HEADER};
use crate::DbError;

/// PostgreSQL transaction-status file; writing it is the Table 1
/// "checkpoint begin" event.
pub const PG_CLOG_PATH: &str = "pg_clog/0000";

/// Operation counters exposed by [`Database::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Committed transactions.
    pub commits: u64,
    /// WAL records written (including commit markers).
    pub records_written: u64,
    /// Synchronous WAL block writes issued.
    pub wal_block_writes: u64,
    /// Full checkpoints completed.
    pub checkpoints: u64,
    /// Fuzzy checkpoint steps completed (MySQL profile).
    pub fuzzy_steps: u64,
    /// Table pages flushed by checkpoints.
    pub pages_flushed: u64,
    /// Checkpoints forced by circular-log pressure.
    pub forced_checkpoints: u64,
    /// Crash scans that found a torn tail block on disk, discarded it,
    /// and recovered its contents from the doublewrite journal (set by
    /// [`Database::open`]).
    pub torn_tails_truncated: u64,
}

struct Inner {
    catalog: Catalog,
    pool: BufferPool,
    wal: WalWriter,
    next_lsn: u64,
    redo_lsn: u64,
    redo_block: u64,
    ckpt_counter: u64,
    commits_since_ckpt: u64,
    stats: DbStats,
}

/// A miniature WAL-based transactional database.
///
/// All methods take `&self`; the engine is internally synchronized
/// (single-writer, as both emulated systems serialize WAL appends).
pub struct Database {
    fs: Arc<dyn FileSystem>,
    profile: DbProfile,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("profile", &self.profile.kind)
            .finish()
    }
}

/// One buffered row operation.
#[derive(Debug, Clone)]
enum TxnOp {
    Put {
        table: u32,
        key: u64,
        value: Vec<u8>,
    },
    Delete {
        table: u32,
        key: u64,
    },
}

/// A transaction: buffered operations committed atomically.
///
/// ```rust
/// # use std::sync::Arc;
/// # use ginja_db::{Database, DbProfile};
/// # use ginja_vfs::MemFs;
/// # fn main() -> Result<(), ginja_db::DbError> {
/// let db = Database::create(Arc::new(MemFs::new()), DbProfile::postgres_small())?;
/// db.create_table(1, 64)?;
/// let mut txn = db.begin();
/// txn.put(1, 10, b"row-a".to_vec());
/// txn.put(1, 11, b"row-b".to_vec());
/// txn.commit()?;
/// assert_eq!(db.get(1, 10)?.unwrap(), b"row-a");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Transaction<'db> {
    db: &'db Database,
    ops: Vec<TxnOp>,
}

impl<'db> Transaction<'db> {
    /// Buffers an insert/update.
    pub fn put(&mut self, table: u32, key: u64, value: Vec<u8>) -> &mut Self {
        self.ops.push(TxnOp::Put { table, key, value });
        self
    }

    /// Buffers a delete.
    pub fn delete(&mut self, table: u32, key: u64) -> &mut Self {
        self.ops.push(TxnOp::Delete { table, key });
        self
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits the buffered operations atomically.
    ///
    /// # Errors
    ///
    /// Validation errors ([`DbError::TableMissing`],
    /// [`DbError::ValueTooLarge`]) are returned before anything is
    /// logged; file-system failures propagate.
    pub fn commit(self) -> Result<(), DbError> {
        self.db.commit_ops(self.ops)
    }
}

impl Database {
    /// Initializes a fresh database in `fs` and opens it.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(fs: Arc<dyn FileSystem>, profile: DbProfile) -> Result<Self, DbError> {
        let space = Self::log_space(&profile);
        match profile.kind {
            ProfileKind::Postgres => {
                // Zero-initialized transaction-status page. Synced: the
                // freshly-created cluster must survive an immediate
                // power cut, or the first crash scan finds half a
                // database.
                fs.write(PG_CLOG_PATH, 0, &vec![0u8; profile.page_size], true)?;
            }
            ProfileKind::MySql => {
                // Preallocate the circular log pair, as InnoDB does. The
                // file headers live in the first 512 bytes; offsets
                // 512/1536 of ib_logfile0 are the checkpoint blocks.
                let LogSpace::Circular {
                    ref file0,
                    ref file1,
                    segment_size,
                } = space
                else {
                    unreachable!("mysql profile uses a circular space")
                };
                let mut header = vec![0u8; 512];
                header[..8].copy_from_slice(b"GNJIBLOG");
                fs.write(file0, 0, &header, true)?;
                fs.truncate(file0, segment_size)?;
                // Synced like file0: preallocation must be durable at
                // create time, before any power cut can intervene.
                fs.write(file1, 0, &header, true)?;
                fs.truncate(file1, segment_size)?;
            }
        }

        let catalog = Catalog::new();
        catalog.write(fs.as_ref(), profile.kind)?;
        let control = ControlData {
            redo_lsn: 1,
            redo_block: 0,
            next_lsn: 1,
            counter: 0,
        };
        control.write(fs.as_ref(), profile.kind)?;

        let inner = Inner {
            catalog,
            pool: BufferPool::new(Self::pool_capacity(&profile)),
            wal: WalWriter::new(space, profile.wal_block_size),
            next_lsn: 1,
            redo_lsn: 1,
            redo_block: 0,
            ckpt_counter: 0,
            commits_since_ckpt: 0,
            stats: DbStats::default(),
        };
        Ok(Database {
            fs,
            profile,
            inner: Mutex::new(inner),
        })
    }

    /// Opens an existing database, running crash recovery: read the
    /// control record, redo the WAL from the checkpoint, discard any
    /// uncommitted tail. This is the DBMS capability Ginja's recovery
    /// relies on — "the DBMS can rebuild its state using its
    /// crash-recovery capabilities" (§4).
    ///
    /// # Errors
    ///
    /// [`DbError::RecoveryFailed`] when the on-disk state is unusable.
    pub fn open(fs: Arc<dyn FileSystem>, profile: DbProfile) -> Result<Self, DbError> {
        let space = Self::log_space(&profile);
        let catalog = Catalog::read(fs.as_ref(), profile.kind)?;
        let control = ControlData::read(fs.as_ref(), profile.kind)?;
        let scan = wal::scan(
            fs.as_ref(),
            &space,
            profile.wal_block_size,
            control.redo_block,
        )?;

        let mut pool = BufferPool::new(Self::pool_capacity(&profile));
        let mut max_lsn = 0u64;
        let mut pending: Vec<WalRecord> = Vec::new();
        for record in scan.records {
            max_lsn = max_lsn.max(record.lsn);
            match record.op {
                WalOp::Commit => {
                    for rec in pending.drain(..) {
                        Self::redo_apply(
                            fs.as_ref(),
                            &profile,
                            &catalog,
                            &mut pool,
                            rec,
                            control.redo_block,
                        )?;
                    }
                }
                _ => pending.push(record),
            }
        }
        // `pending` now holds only uncommitted trailing operations:
        // dropped, exactly as real redo discards the torn tail.

        let inner = Inner {
            catalog,
            pool,
            wal: WalWriter::resume(
                space,
                profile.wal_block_size,
                scan.resume_block,
                scan.resume_payload,
            ),
            next_lsn: control.next_lsn.max(max_lsn + 1),
            redo_lsn: control.redo_lsn,
            redo_block: control.redo_block,
            ckpt_counter: control.counter,
            commits_since_ckpt: 0,
            stats: DbStats {
                torn_tails_truncated: scan.tail_salvaged as u64,
                ..DbStats::default()
            },
        };
        Ok(Database {
            fs,
            profile,
            inner: Mutex::new(inner),
        })
    }

    fn redo_apply(
        fs: &dyn FileSystem,
        profile: &DbProfile,
        catalog: &Catalog,
        pool: &mut BufferPool,
        record: WalRecord,
        redo_block: u64,
    ) -> Result<(), DbError> {
        let (table, key, value) = match record.op {
            WalOp::Put { table, key, value } => (table, key, Some(value)),
            WalOp::Delete { table, key } => (table, key, None),
            WalOp::Commit => unreachable!("commit markers handled by caller"),
        };
        let meta = *catalog
            .table(table)
            .ok_or_else(|| DbError::RecoveryFailed(format!("wal references table {table}")))?;
        let (page_idx, slot) = meta.locate(key, profile.page_size);
        let id: PageId = (table, page_idx);
        let frame = pool.get_or_load(id, || Self::load_page(fs, profile, &meta, page_idx))?;
        // ARIES redo test: apply only if the page has not seen this LSN.
        if record.lsn > frame.page.lsn {
            match value {
                Some(v) => frame.page.set_slot(slot, key, v),
                None => frame.page.clear_slot(slot),
            }
            frame.page.lsn = record.lsn;
            pool.mark_dirty(id, record.lsn, redo_block);
        }
        Ok(())
    }

    fn load_page(
        fs: &dyn FileSystem,
        profile: &DbProfile,
        meta: &TableMeta,
        page_idx: u64,
    ) -> Result<Page, DbError> {
        let path = meta.file_path(profile.kind);
        let offset = page_idx * profile.page_size as u64;
        match fs.read(&path, offset, profile.page_size) {
            Ok(bytes) => Ok(Page::from_bytes(&bytes, meta.slot_size as usize)
                .unwrap_or_else(|_| Page::empty(meta.slots_per_page(profile.page_size)))),
            // A page that was never written is legitimately empty; any
            // other failure (EIO, injected fault) must NOT be silently
            // treated as an empty page — that turns a disk error into
            // quiet data loss.
            Err(FsError::NotFound(_)) | Err(FsError::OutOfBounds { .. }) => {
                Ok(Page::empty(meta.slots_per_page(profile.page_size)))
            }
            Err(err) => Err(err.into()),
        }
    }

    fn log_space(profile: &DbProfile) -> LogSpace {
        match profile.kind {
            ProfileKind::Postgres => LogSpace::Segmented {
                prefix: "pg_xlog/".to_string(),
                segment_size: profile.wal_segment_size,
            },
            ProfileKind::MySql => LogSpace::Circular {
                file0: "ib_logfile0".to_string(),
                file1: "ib_logfile1".to_string(),
                segment_size: profile.wal_segment_size,
            },
        }
    }

    fn pool_capacity(profile: &DbProfile) -> usize {
        // Soft cap ~64 MiB of clean pages.
        (64 << 20) / profile.page_size
    }

    /// The file system this database writes through.
    pub fn fs(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }

    /// The configured profile.
    pub fn profile(&self) -> &DbProfile {
        &self.profile
    }

    /// Registers a new table with the given slot size.
    ///
    /// DDL is made durable immediately: the catalog write is followed by
    /// a full checkpoint, so the schema change forms a complete
    /// checkpoint-begin → checkpoint-end pair at the file-system level —
    /// a DR middleware observing the I/O replicates the new catalog
    /// right away instead of holding it until the next data checkpoint.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] for duplicate ids; slot-size bounds are
    /// validated against the profile's page size.
    pub fn create_table(&self, id: u32, slot_size: usize) -> Result<(), DbError> {
        if slot_size <= crate::table::SLOT_OVERHEAD
            || slot_size > self.profile.page_size - crate::page::PAGE_HEADER
        {
            return Err(DbError::Corrupt(format!("invalid slot size {slot_size}")));
        }
        let mut inner = self.inner.lock();
        inner.catalog.add(TableMeta {
            id,
            slot_size: slot_size as u32,
        })?;
        inner.catalog.write(self.fs.as_ref(), self.profile.kind)?;
        self.full_checkpoint(&mut inner)?;
        Ok(())
    }

    /// Starts a transaction.
    pub fn begin(&self) -> Transaction<'_> {
        Transaction {
            db: self,
            ops: Vec::new(),
        }
    }

    /// Single-operation convenience: `put` in its own transaction.
    ///
    /// # Errors
    ///
    /// As [`Transaction::commit`].
    pub fn put(&self, table: u32, key: u64, value: Vec<u8>) -> Result<(), DbError> {
        let mut txn = self.begin();
        txn.put(table, key, value);
        txn.commit()
    }

    /// Single-operation convenience: `delete` in its own transaction.
    ///
    /// # Errors
    ///
    /// As [`Transaction::commit`].
    pub fn delete(&self, table: u32, key: u64) -> Result<(), DbError> {
        let mut txn = self.begin();
        txn.delete(table, key);
        txn.commit()
    }

    /// Reads the current value of `key` in `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::TableMissing`] if the table does not exist.
    pub fn get(&self, table: u32, key: u64) -> Result<Option<Vec<u8>>, DbError> {
        let mut inner = self.inner.lock();
        let meta = *inner
            .catalog
            .table(table)
            .ok_or(DbError::TableMissing(table))?;
        let (page_idx, slot) = meta.locate(key, self.profile.page_size);
        let fs = self.fs.clone();
        let profile = self.profile.clone();
        let frame = inner.pool.get_or_load((table, page_idx), || {
            Self::load_page(fs.as_ref(), &profile, &meta, page_idx)
        })?;
        Ok(frame
            .page
            .slot(slot)
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v.clone()))
    }

    fn commit_ops(&self, ops: Vec<TxnOp>) -> Result<(), DbError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        // Validate before logging anything.
        let mut encoded_len = 0usize;
        for op in &ops {
            let (table, value_len) = match op {
                TxnOp::Put { table, value, .. } => (*table, value.len()),
                TxnOp::Delete { table, .. } => (*table, 0),
            };
            let meta = inner
                .catalog
                .table(table)
                .ok_or(DbError::TableMissing(table))?;
            if value_len > meta.value_capacity() {
                return Err(DbError::ValueTooLarge {
                    table,
                    len: value_len,
                    cap: meta.value_capacity(),
                });
            }
            encoded_len += 32 + value_len;
        }

        // Circular-log pressure: never let an append overwrite blocks
        // recovery still needs — force a checkpoint first (InnoDB's
        // behaviour when the redo log fills up).
        let block_size = self.profile.wal_block_size;
        if let Some(capacity) = inner.wal.space().capacity_blocks(block_size) {
            let payload_per_block = (block_size - BLOCK_HEADER - FRAG_HEADER) as u64;
            let txn_blocks = (encoded_len as u64 / payload_per_block) + 2;
            let used = inner.wal.current_block() - inner.redo_block;
            if used + txn_blocks + 1 >= capacity {
                self.full_checkpoint(inner)?;
                inner.stats.forced_checkpoints += 1;
            }
        }

        // Log all operations plus the commit marker, then flush once
        // (group commit: one fsync per transaction).
        let base_block = inner.wal.current_block();
        let mut logged: Vec<(u64, TxnOp)> = Vec::with_capacity(ops.len());
        for op in ops {
            let lsn = inner.next_lsn;
            inner.next_lsn += 1;
            let wal_op = match &op {
                TxnOp::Put { table, key, value } => WalOp::Put {
                    table: *table,
                    key: *key,
                    value: value.clone(),
                },
                TxnOp::Delete { table, key } => WalOp::Delete {
                    table: *table,
                    key: *key,
                },
            };
            inner.wal.append(&WalRecord { lsn, op: wal_op });
            logged.push((lsn, op));
        }
        let commit_lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.wal.append(&WalRecord {
            lsn: commit_lsn,
            op: WalOp::Commit,
        });

        let writes = inner.wal.flush(self.fs.as_ref())?;
        inner.stats.wal_block_writes += writes as u64;
        self.profile.io_delay.delay_commit_flush();

        // Apply to the buffer pool.
        for (lsn, op) in logged {
            let (table, key, value) = match op {
                TxnOp::Put { table, key, value } => (table, key, Some(value)),
                TxnOp::Delete { table, key } => (table, key, None),
            };
            let meta = *inner.catalog.table(table).expect("validated above");
            let (page_idx, slot) = meta.locate(key, self.profile.page_size);
            let id: PageId = (table, page_idx);
            let fs = self.fs.clone();
            let profile = self.profile.clone();
            let frame = inner.pool.get_or_load(id, || {
                Self::load_page(fs.as_ref(), &profile, &meta, page_idx)
            })?;
            match value {
                Some(v) => frame.page.set_slot(slot, key, v),
                None => frame.page.clear_slot(slot),
            }
            frame.page.lsn = lsn;
            inner.pool.mark_dirty(id, lsn, base_block);
        }

        inner.stats.commits += 1;
        inner.stats.records_written += inner.next_lsn - commit_lsn + 1;
        inner.commits_since_ckpt += 1;

        // Automatic checkpointing.
        if let Some(every) = self.profile.checkpoint_every_commits {
            if inner.commits_since_ckpt >= every {
                inner.commits_since_ckpt = 0;
                match self.profile.kind {
                    ProfileKind::Postgres => self.full_checkpoint(inner)?,
                    ProfileKind::MySql => {
                        self.fuzzy_step(inner)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Flushes all dirty pages and writes a control record — a full
    /// (sharp) checkpoint. For PostgreSQL this is the normal checkpoint;
    /// for MySQL it models the pressure-forced sharp checkpoint.
    fn full_checkpoint(&self, inner: &mut Inner) -> Result<(), DbError> {
        if self.profile.kind == ProfileKind::Postgres {
            self.write_clog(inner)?;
        }
        let dirty = inner.pool.dirty_ids_oldest_first();
        let flushed = dirty.len();
        for id in dirty {
            self.flush_page(inner, id)?;
        }
        self.profile.io_delay.delay_page_flush(flushed);

        inner.redo_block = inner.wal.current_block();
        inner.redo_lsn = inner.next_lsn;
        inner.ckpt_counter += 1;
        let control = ControlData {
            redo_lsn: inner.redo_lsn,
            redo_block: inner.redo_block,
            next_lsn: inner.next_lsn,
            counter: inner.ckpt_counter,
        };
        control.write(self.fs.as_ref(), self.profile.kind)?;

        if self.profile.kind == ProfileKind::Postgres {
            inner.wal.space().clone().delete_segments_before(
                self.fs.as_ref(),
                inner.redo_block,
                self.profile.wal_block_size,
            )?;
        }

        inner.stats.checkpoints += 1;
        inner.stats.pages_flushed += flushed as u64;
        Ok(())
    }

    /// One fuzzy checkpoint step (MySQL profile): flush a small batch of
    /// the oldest dirty pages, advance the checkpoint header. Returns
    /// whether dirty pages remain.
    fn fuzzy_step(&self, inner: &mut Inner) -> Result<bool, DbError> {
        let batch: Vec<PageId> = inner
            .pool
            .dirty_ids_oldest_first()
            .into_iter()
            .take(self.profile.fuzzy_batch_pages)
            .collect();
        let flushed = batch.len();
        for id in batch {
            self.flush_page(inner, id)?;
        }
        self.profile.io_delay.delay_page_flush(flushed);

        let (redo_block, redo_lsn) = inner
            .pool
            .oldest_dirty()
            .unwrap_or((inner.wal.current_block(), inner.next_lsn));
        inner.redo_block = redo_block;
        inner.redo_lsn = redo_lsn;
        inner.ckpt_counter += 1;
        let control = ControlData {
            redo_lsn,
            redo_block,
            next_lsn: inner.next_lsn,
            counter: inner.ckpt_counter,
        };
        control.write(self.fs.as_ref(), self.profile.kind)?;

        inner.stats.fuzzy_steps += 1;
        inner.stats.pages_flushed += flushed as u64;
        Ok(inner.pool.dirty_count() > 0)
    }

    fn write_clog(&self, inner: &Inner) -> Result<(), DbError> {
        // A page of transaction-status bits; content is a stamp of the
        // current commit count (enough for the I/O pattern).
        let mut page = vec![0u8; self.profile.page_size];
        page[..8].copy_from_slice(&inner.stats.commits.to_le_bytes());
        self.fs.write(PG_CLOG_PATH, 0, &page, true)?;
        Ok(())
    }

    fn flush_page(&self, inner: &mut Inner, id: PageId) -> Result<(), DbError> {
        let (table, page_idx) = id;
        let meta = *inner
            .catalog
            .table(table)
            .expect("dirty page of unknown table");
        let Some(frame) = inner.pool.get(&id) else {
            return Ok(());
        };
        let bytes = frame
            .page
            .to_bytes(self.profile.page_size, meta.slot_size as usize);
        let path = meta.file_path(self.profile.kind);
        self.fs.write(
            &path,
            page_idx * self.profile.page_size as u64,
            &bytes,
            true,
        )?;
        inner.pool.mark_clean(&id);
        Ok(())
    }

    /// Runs a full checkpoint (both profiles).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        self.full_checkpoint(&mut inner)
    }

    /// Runs one checkpoint step: a full checkpoint for PostgreSQL, a
    /// fuzzy batch for MySQL. Returns whether dirty pages remain.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn checkpoint_step(&self) -> Result<bool, DbError> {
        let mut inner = self.inner.lock();
        match self.profile.kind {
            ProfileKind::Postgres => {
                self.full_checkpoint(&mut inner)?;
                Ok(false)
            }
            ProfileKind::MySql => self.fuzzy_step(&mut inner),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        stats.wal_block_writes = inner.wal.blocks_written();
        stats
    }

    /// Number of dirty pages in the buffer pool.
    pub fn dirty_pages(&self) -> usize {
        self.inner.lock().pool.dirty_count()
    }

    /// Total size in bytes of the database (non-WAL) files on disk.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn db_size_bytes(&self) -> Result<u64, DbError> {
        let inner = self.inner.lock();
        let mut total = 0u64;
        let mut paths = vec![Catalog::path(self.profile.kind).to_string()];
        for meta in inner.catalog.iter() {
            paths.push(meta.file_path(self.profile.kind));
        }
        if self.profile.kind == ProfileKind::Postgres {
            paths.push(PG_CLOG_PATH.to_string());
            paths.push(crate::control::PG_CONTROL_PATH.to_string());
        }
        for path in paths {
            if let Ok(len) = self.fs.len(&path) {
                total += len;
            }
        }
        Ok(total)
    }

    /// Ids of all tables, ascending.
    pub fn tables(&self) -> Vec<u32> {
        self.inner.lock().catalog.iter().map(|m| m.id).collect()
    }

    /// Number of live rows in `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::TableMissing`] if the table does not exist.
    pub fn row_count(&self, table: u32) -> Result<u64, DbError> {
        Ok(self.dump_table(table)?.len() as u64)
    }

    /// All rows of `table`, sorted by key — for test verification.
    ///
    /// # Errors
    ///
    /// [`DbError::TableMissing`] if the table does not exist.
    pub fn dump_table(&self, table: u32) -> Result<Vec<(u64, Vec<u8>)>, DbError> {
        let mut inner = self.inner.lock();
        let meta = *inner
            .catalog
            .table(table)
            .ok_or(DbError::TableMissing(table))?;
        let path = meta.file_path(self.profile.kind);
        let disk_pages = self
            .fs
            .len(&path)
            .map(|len| len.div_ceil(self.profile.page_size as u64))
            .unwrap_or(0);
        let pool_pages = inner.pool.max_page_index(table).map_or(0, |p| p + 1);
        let total_pages = disk_pages.max(pool_pages);

        let mut rows = Vec::new();
        for page_idx in 0..total_pages {
            let fs = self.fs.clone();
            let profile = self.profile.clone();
            let frame = inner.pool.get_or_load((table, page_idx), || {
                Self::load_page(fs.as_ref(), &profile, &meta, page_idx)
            })?;
            for (key, value) in frame.page.iter() {
                rows.push((*key, value.clone()));
            }
        }
        rows.sort_by_key(|(k, _)| *k);
        Ok(rows)
    }

    /// Simulates a crash: volatile state (buffer pool, WAL tail buffer)
    /// is dropped; only what reached the file system survives. Returns
    /// the file system for a subsequent [`Database::open`].
    pub fn crash(self) -> Arc<dyn FileSystem> {
        self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_vfs::MemFs;

    fn fresh(profile: DbProfile) -> Database {
        let db = Database::create(Arc::new(MemFs::new()), profile).unwrap();
        db.create_table(1, 64).unwrap();
        db
    }

    fn val(i: u64) -> Vec<u8> {
        format!("value-{i:06}").into_bytes()
    }

    #[test]
    fn put_get_roundtrip_both_profiles() {
        for profile in [DbProfile::postgres_small(), DbProfile::mysql_small()] {
            let db = fresh(profile);
            db.put(1, 5, val(5)).unwrap();
            assert_eq!(db.get(1, 5).unwrap().unwrap(), val(5));
            assert_eq!(db.get(1, 6).unwrap(), None);
        }
    }

    #[test]
    fn overwrite_and_delete() {
        let db = fresh(DbProfile::postgres_small());
        db.put(1, 5, val(1)).unwrap();
        db.put(1, 5, val(2)).unwrap();
        assert_eq!(db.get(1, 5).unwrap().unwrap(), val(2));
        db.delete(1, 5).unwrap();
        assert_eq!(db.get(1, 5).unwrap(), None);
    }

    #[test]
    fn multi_op_transaction_atomic() {
        let db = fresh(DbProfile::postgres_small());
        let mut txn = db.begin();
        txn.put(1, 1, val(1)).put(1, 2, val(2)).delete(1, 99);
        assert_eq!(txn.len(), 3);
        txn.commit().unwrap();
        assert_eq!(db.get(1, 1).unwrap().unwrap(), val(1));
        assert_eq!(db.stats().commits, 1);
    }

    #[test]
    fn empty_transaction_is_noop() {
        let db = fresh(DbProfile::postgres_small());
        db.begin().commit().unwrap();
        assert_eq!(db.stats().commits, 0);
        assert_eq!(db.stats().wal_block_writes, 0);
    }

    #[test]
    fn missing_table_rejected() {
        let db = fresh(DbProfile::postgres_small());
        assert!(matches!(
            db.put(9, 1, val(1)),
            Err(DbError::TableMissing(9))
        ));
        assert!(matches!(db.get(9, 1), Err(DbError::TableMissing(9))));
    }

    #[test]
    fn oversized_value_rejected_before_logging() {
        let db = fresh(DbProfile::postgres_small());
        let blocks_before = db.stats().wal_block_writes;
        assert!(matches!(
            db.put(1, 1, vec![0u8; 100]),
            Err(DbError::ValueTooLarge { .. })
        ));
        assert_eq!(db.stats().wal_block_writes, blocks_before);
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = fresh(DbProfile::postgres_small());
        assert!(matches!(
            db.create_table(1, 64),
            Err(DbError::TableExists(1))
        ));
    }

    #[test]
    fn invalid_slot_size_rejected() {
        let db = fresh(DbProfile::postgres_small());
        assert!(db.create_table(2, 4).is_err());
        assert!(db.create_table(2, 100_000).is_err());
    }

    #[test]
    fn crash_without_checkpoint_recovers_committed_data() {
        for profile in [DbProfile::postgres_small(), DbProfile::mysql_small()] {
            let db = fresh(profile.clone());
            for i in 0..50 {
                db.put(1, i, val(i)).unwrap();
            }
            let fs = db.crash();
            let db = Database::open(fs, profile).unwrap();
            for i in 0..50 {
                assert_eq!(db.get(1, i).unwrap().unwrap(), val(i), "key {i}");
            }
        }
    }

    #[test]
    fn crash_after_checkpoint_recovers() {
        for profile in [DbProfile::postgres_small(), DbProfile::mysql_small()] {
            let db = fresh(profile.clone());
            for i in 0..30 {
                db.put(1, i, val(i)).unwrap();
            }
            db.checkpoint().unwrap();
            for i in 30..60 {
                db.put(1, i, val(i)).unwrap();
            }
            let fs = db.crash();
            let db = Database::open(fs, profile).unwrap();
            for i in 0..60 {
                assert_eq!(db.get(1, i).unwrap().unwrap(), val(i), "key {i}");
            }
        }
    }

    #[test]
    fn recovery_is_idempotent() {
        let profile = DbProfile::postgres_small();
        let db = fresh(profile.clone());
        for i in 0..20 {
            db.put(1, i, val(i)).unwrap();
        }
        let fs = db.crash();
        let db = Database::open(fs, profile.clone()).unwrap();
        let fs = db.crash();
        let db = Database::open(fs, profile).unwrap();
        for i in 0..20 {
            assert_eq!(db.get(1, i).unwrap().unwrap(), val(i));
        }
    }

    #[test]
    fn updates_after_recovery_work() {
        let profile = DbProfile::mysql_small();
        let db = fresh(profile.clone());
        db.put(1, 1, val(1)).unwrap();
        let fs = db.crash();
        let db = Database::open(fs, profile.clone()).unwrap();
        db.put(1, 2, val(2)).unwrap();
        db.put(1, 1, val(100)).unwrap();
        let fs = db.crash();
        let db = Database::open(fs, profile).unwrap();
        assert_eq!(db.get(1, 1).unwrap().unwrap(), val(100));
        assert_eq!(db.get(1, 2).unwrap().unwrap(), val(2));
    }

    #[test]
    fn checkpoint_cleans_dirty_pages() {
        let db = fresh(DbProfile::postgres_small());
        for i in 0..20 {
            db.put(1, i * 10, val(i)).unwrap();
        }
        assert!(db.dirty_pages() > 0);
        db.checkpoint().unwrap();
        assert_eq!(db.dirty_pages(), 0);
        assert!(db.stats().pages_flushed > 0);
    }

    #[test]
    fn fuzzy_steps_drain_gradually() {
        let mut profile = DbProfile::mysql_small();
        profile.fuzzy_batch_pages = 2;
        let db = Database::create(Arc::new(MemFs::new()), profile).unwrap();
        db.create_table(1, 64).unwrap();
        // Touch many distinct pages.
        for i in 0..20 {
            db.put(1, i * 1000, val(i)).unwrap();
        }
        let initial_dirty = db.dirty_pages();
        assert!(initial_dirty >= 10);
        let more = db.checkpoint_step().unwrap();
        assert!(more);
        assert_eq!(db.dirty_pages(), initial_dirty - 2);
        // Drain fully.
        while db.checkpoint_step().unwrap() {}
        assert_eq!(db.dirty_pages(), 0);
        assert!(db.stats().fuzzy_steps >= 10);
    }

    #[test]
    fn auto_checkpoint_by_commit_count() {
        let profile = DbProfile::postgres_small().with_checkpoint_every(10);
        let db = Database::create(Arc::new(MemFs::new()), profile).unwrap();
        db.create_table(1, 64).unwrap(); // DDL itself checkpoints once
        for i in 0..25 {
            db.put(1, i, val(i)).unwrap();
        }
        assert_eq!(db.stats().checkpoints, 3);
    }

    #[test]
    fn circular_log_pressure_forces_checkpoint() {
        // 64 kB circular pair with 512-byte blocks: fills quickly.
        let mut profile = DbProfile::mysql_small();
        profile.wal_segment_size = 64 * 1024;
        let db = Database::create(Arc::new(MemFs::new()), profile.clone()).unwrap();
        db.create_table(1, 64).unwrap();
        for i in 0..3000 {
            db.put(1, i % 100, val(i)).unwrap();
        }
        assert!(db.stats().forced_checkpoints > 0);
        // And the data survives a crash despite the wraps.
        let fs = db.crash();
        let db = Database::open(fs, profile).unwrap();
        assert_eq!(db.get(1, 42).unwrap().unwrap(), val(2942));
    }

    #[test]
    fn pg_old_segments_deleted_after_checkpoint() {
        let mut profile = DbProfile::postgres_small();
        profile.wal_segment_size = 16 * 1024;
        let db = Database::create(Arc::new(MemFs::new()), profile).unwrap();
        db.create_table(1, 64).unwrap();
        for i in 0..2000 {
            db.put(1, i % 50, val(i)).unwrap();
        }
        let fs = db.fs().clone();
        let segs_before = fs.list("pg_xlog/").unwrap().len();
        db.checkpoint().unwrap();
        let segs_after = fs.list("pg_xlog/").unwrap().len();
        assert!(segs_after < segs_before, "{segs_before} -> {segs_after}");
    }

    #[test]
    fn dump_table_merges_disk_and_pool() {
        let db = fresh(DbProfile::postgres_small());
        for i in 0..10 {
            db.put(1, i, val(i)).unwrap();
        }
        db.checkpoint().unwrap();
        for i in 10..15 {
            db.put(1, i, val(i)).unwrap();
        }
        let rows = db.dump_table(1).unwrap();
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[0], (0, val(0)));
        assert_eq!(rows[14], (14, val(14)));
    }

    #[test]
    fn db_size_grows_with_checkpointed_data() {
        let db = fresh(DbProfile::postgres_small());
        let before = db.db_size_bytes().unwrap();
        for i in 0..100 {
            db.put(1, i, val(i)).unwrap();
        }
        db.checkpoint().unwrap();
        let after = db.db_size_bytes().unwrap();
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn stats_track_activity() {
        let db = fresh(DbProfile::postgres_small());
        db.put(1, 1, val(1)).unwrap();
        db.put(1, 2, val(2)).unwrap();
        let s = db.stats();
        assert_eq!(s.commits, 2);
        assert!(s.wal_block_writes >= 2);
        assert!(s.records_written >= 4);
    }

    #[test]
    fn tables_and_row_count() {
        let db = fresh(DbProfile::postgres_small());
        db.create_table(9, 64).unwrap();
        assert_eq!(db.tables(), vec![1, 9]);
        assert_eq!(db.row_count(1).unwrap(), 0);
        db.put(1, 3, val(3)).unwrap();
        db.put(1, 4, val(4)).unwrap();
        db.delete(1, 3).unwrap();
        assert_eq!(db.row_count(1).unwrap(), 1);
        assert!(matches!(db.row_count(7), Err(DbError::TableMissing(7))));
    }

    #[test]
    fn values_at_capacity_accepted() {
        let db = fresh(DbProfile::postgres_small());
        let cap = 64 - crate::table::SLOT_OVERHEAD;
        db.put(1, 1, vec![7u8; cap]).unwrap();
        assert_eq!(db.get(1, 1).unwrap().unwrap().len(), cap);
    }

    #[test]
    fn uncommitted_tail_discarded_on_recovery() {
        // Write a valid committed txn, then hand-append a put record
        // without a commit marker; recovery must drop it.
        let profile = DbProfile::postgres_small();
        let db = fresh(profile.clone());
        db.put(1, 1, val(1)).unwrap();
        let fs = db.crash();

        // Forge an uncommitted record at the log tail.
        {
            let space = Database::log_space(&profile);
            let scan = wal::scan(fs.as_ref(), &space, profile.wal_block_size, 0).unwrap();
            let mut w = WalWriter::resume(
                space,
                profile.wal_block_size,
                scan.resume_block,
                scan.resume_payload,
            );
            w.append(&WalRecord {
                lsn: 999,
                op: WalOp::Put {
                    table: 1,
                    key: 77,
                    value: val(77),
                },
            });
            w.flush(fs.as_ref()).unwrap();
        }

        let db = Database::open(fs, profile).unwrap();
        assert_eq!(db.get(1, 1).unwrap().unwrap(), val(1));
        assert_eq!(db.get(1, 77).unwrap(), None, "uncommitted record applied");
    }
}
