//! Cost planner: the paper's §7 model as a small CLI.
//!
//! ```sh
//! cargo run --example cost_planner -- [db_size_gb] [updates_per_minute] [batch]
//! # defaults:                          10           100                 100
//! ```
//!
//! Prints the monthly cost breakdown, the $1 budget frontier (Figure 1),
//! and the comparison against a VM-based Pilot Light.

use ginja::cost::{Budget, Ec2Pricing, GinjaCostModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let db_size_gb: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0);
    let updates_per_minute: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100.0);
    let batch: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    let mut model = GinjaCostModel::paper_fig4(updates_per_minute, batch);
    model.db_size_gb = db_size_gb;

    println!("Ginja DR cost plan (Amazon S3, May-2017 prices)");
    println!("  database size:      {db_size_gb} GB");
    println!("  workload:           {updates_per_minute} updates/minute");
    println!("  batch (B):          {batch} updates per cloud synchronization");
    println!();
    println!("Monthly cost breakdown (paper §7.1):");
    println!(
        "  C_DB_Storage  = ${:>8.3}   (dumps + incremental checkpoints)",
        model.c_db_storage()
    );
    println!(
        "  C_DB_PUT      = ${:>8.3}   (checkpoint uploads)",
        model.c_db_put()
    );
    println!(
        "  C_WAL_Storage = ${:>8.3}   (live WAL objects)",
        model.c_wal_storage()
    );
    println!(
        "  C_WAL_PUT     = ${:>8.3}   (commit uploads)",
        model.c_wal_put()
    );
    println!("  ─ C_Total     = ${:>8.3} per month", model.total());
    println!();
    println!(
        "Recovery (disaster) cost: ${:.3} — free if recovering into the same region",
        model.recovery_cost()
    );

    let vm = Ec2Pricing::may_2017().laboratory_vm_month(db_size_gb);
    println!();
    println!("VM-based Pilot Light alternative: ${vm:.1}/month (m3.medium + VPN + EBS)");
    println!("→ Ginja is {:.0}× cheaper", vm / model.total());

    println!();
    println!("$1/month capacity frontier (Figure 1):");
    println!("  syncs/hour   max DB size");
    for (rate, size) in Budget::new(1.0).frontier([25.0, 50.0, 100.0, 150.0, 200.0, 250.0]) {
        println!("  {rate:>10.0}   {size:>8.1} GB");
    }
}
