//! A thread-local pool of byte buffers for the seal/open hot paths.
//!
//! Every `Codec::seal` historically allocated fresh buffers at each of
//! the compress → encrypt → envelope stages; under a steady upload
//! stream that is three allocations (and three frees) per object. The
//! pool lets each stage borrow a previously-used `Vec<u8>` — warm in
//! cache and already sized from the last object of similar shape — and
//! return it when done.
//!
//! Lifetime rules (documented here because misuse is silent):
//!
//! * Buffers are **per thread**: a `take`n buffer must be `recycle`d on
//!   the same thread that took it. Crossing threads is safe (it is just
//!   a `Vec<u8>`) but moves the capacity to the other thread's pool.
//! * A `take`n buffer arrives **cleared** (`len == 0`) but with whatever
//!   capacity its previous life left behind. Never assume contents.
//! * The pool keeps at most [`MAX_POOLED`] buffers and drops buffers
//!   whose capacity exceeds [`MAX_POOLED_CAPACITY`], so one pathological
//!   object cannot pin gigabytes in every uploader thread forever.
//! * Dropping a buffer instead of recycling it is always correct —
//!   merely a missed reuse, counted as a future miss.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum buffers parked per thread.
pub const MAX_POOLED: usize = 8;

/// Buffers with more capacity than this are dropped on recycle rather
/// than parked (64 MiB — triple Ginja's 20 MiB object cap).
pub const MAX_POOLED_CAPACITY: usize = 64 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Takes a cleared buffer from this thread's pool, or a fresh one.
pub fn take() -> Vec<u8> {
    POOL.with(|pool| match pool.borrow_mut().pop() {
        Some(buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
    })
}

/// Returns a buffer to this thread's pool (cleared; dropped if the pool
/// is full or the buffer is oversized).
pub fn recycle(mut buf: Vec<u8>) {
    if buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    buf.clear();
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

/// Global (process-wide) counts of pool hits and misses since start —
/// the observability hook the codec micro-benchmarks report. A miss is
/// an allocation the pool could not avoid.
pub fn counters() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        // Drain whatever earlier tests on this thread parked.
        while {
            let drained = POOL.with(|p| p.borrow_mut().pop().is_some());
            drained
        } {}

        let mut buf = take();
        buf.extend_from_slice(&[1, 2, 3]);
        buf.reserve(4096);
        let cap = buf.capacity();
        recycle(buf);
        let buf = take();
        assert!(buf.is_empty(), "recycled buffers arrive cleared");
        assert_eq!(buf.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn pool_is_bounded() {
        let taken: Vec<Vec<u8>> = (0..MAX_POOLED * 2).map(|_| take()).collect();
        for buf in taken {
            recycle(buf);
        }
        let parked = POOL.with(|p| p.borrow().len());
        assert!(parked <= MAX_POOLED);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let huge = Vec::with_capacity(MAX_POOLED_CAPACITY + 1);
        recycle(huge);
        let parked_huge = POOL.with(|p| {
            p.borrow()
                .iter()
                .any(|b| b.capacity() > MAX_POOLED_CAPACITY)
        });
        assert!(!parked_huge);
    }

    #[test]
    fn counters_move() {
        let (h0, m0) = counters();
        recycle(take());
        let _hit = take();
        let (h1, m1) = counters();
        assert!(h1 + m1 > h0 + m0);
    }
}
