//! Quickstart: protect a database with Ginja, lose the primary site,
//! recover everything from cloud object storage.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::MemStore;
use ginja::core::{recover_into, Ginja, GinjaConfig};
use ginja::db::{Database, DbProfile};
use ginja::vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "primary site": a PostgreSQL-profile database on local storage.
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::postgres_small())?;
    db.create_table(1, 64)?;
    println!("• created a PostgreSQL-profile database with one table");

    // The "secondary site": a cloud object store (here in-memory; any
    // ObjectStore implementation works — S3, Azure Blob, ...).
    let cloud = Arc::new(MemStore::new());

    // Ginja's two knobs: upload every 4 updates (B), never let more
    // than 32 updates be unconfirmed (S = max data loss in a disaster).
    let config = GinjaConfig::builder()
        .batch(4)
        .safety(32)
        .batch_timeout(Duration::from_millis(50))
        .build()?;

    // Boot: upload the current state, then run the DBMS over the
    // intercepted file system. From here on every commit is replicated.
    drop(db);
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )?;
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, DbProfile::postgres_small())?;
    println!(
        "• ginja booted: initial dump + WAL segments uploaded ({} objects)",
        cloud.len()
    );

    for i in 0..100u64 {
        db.put(1, i, format!("customer-record-{i}").into_bytes())?;
    }
    ginja.sync(Duration::from_secs(10));
    let stats = ginja.stats();
    println!(
        "• committed 100 transactions — {} updates intercepted, {} WAL objects uploaded",
        stats.updates_intercepted, stats.wal_objects_uploaded
    );
    ginja.shutdown();

    // ☄️  Disaster: the primary site is destroyed. `local` is gone; the
    // only surviving copy of the database is in the cloud.
    drop(db);
    drop(local);
    println!("• DISASTER — primary site lost; recovering from the cloud alone");

    let rebuilt = Arc::new(MemFs::new());
    let report = recover_into(rebuilt.as_ref(), cloud.as_ref(), &config)?;
    println!(
        "• recovery: dump ts {}, {} checkpoints, {} WAL objects, {} bytes downloaded",
        report.dump_ts,
        report.checkpoints_applied,
        report.wal_objects_applied,
        report.bytes_downloaded
    );

    // The DBMS restarts over the rebuilt files and runs its own crash
    // recovery (WAL redo) — exactly as after a power failure.
    let db = Database::open(rebuilt, DbProfile::postgres_small())?;
    for i in 0..100u64 {
        let value = db.get(1, i)?.expect("row must survive the disaster");
        assert_eq!(value, format!("customer-record-{i}").into_bytes());
    }
    println!("• all 100 rows recovered ✔");
    Ok(())
}
