#![warn(missing_docs)]
//! Object-storage abstraction and simulated cloud backends for Ginja.
//!
//! The paper (§5) restricts Ginja to the lowest-common-denominator cloud
//! storage interface — "storage clouds provide REST interfaces containing
//! only a few basic operations (PUT, GET, LIST, and DELETE)" — so that any
//! provider (S3, Azure Blob Storage, Google Storage, Rackspace Files) can
//! be used. [`ObjectStore`] is that interface.
//!
//! Backends provided here:
//!
//! * [`MemStore`] — in-memory reference backend.
//! * [`LatencyStore`] — wraps any store with a WAN latency model
//!   (`base + bytes/bandwidth`, calibrated against the paper's Table 3).
//! * [`FaultStore`] — programmable fault injection for crash-consistency
//!   and disaster tests.
//! * [`MeteredStore`] — operation/byte accounting feeding the §7 cost
//!   model and the Table 3 experiment.
//! * [`ReplicatedStore`] — cloud-of-clouds replication (the prototype
//!   "supports the replication of objects in multiple clouds, for
//!   tolerating provider-scale failures", §6).
//!
//! A production deployment would add one more implementation backed by a
//! real provider SDK; nothing in Ginja's core depends on anything beyond
//! the four operations.
//!
//! ```rust
//! use ginja_cloud::{MemStore, ObjectStore};
//!
//! # fn main() -> Result<(), ginja_cloud::StoreError> {
//! let store = MemStore::new();
//! store.put("WAL/0_seg1_0", b"bytes")?;
//! assert_eq!(store.get("WAL/0_seg1_0")?, b"bytes");
//! assert_eq!(store.list("WAL/")?, vec!["WAL/0_seg1_0".to_string()]);
//! store.delete("WAL/0_seg1_0")?;
//! # Ok(())
//! # }
//! ```

mod delta;
mod dir;
mod erasure;
mod error;
mod fault;
pub mod gf256;
mod latency;
mod mem;
mod metered;
mod prefix;
mod replicated;
mod resilient;
mod store;
mod usage;

pub use delta::{DeltaLister, ListingDelta};
pub use dir::DirStore;
pub use erasure::{decode as erasure_decode, encode as erasure_encode, ErasureStore};
pub use error::StoreError;
pub use fault::{FaultKind, FaultPlan, FaultStore, OpKind};
pub use latency::{LatencyModel, LatencyStore};
pub use mem::MemStore;
pub use metered::MeteredStore;
pub use prefix::PrefixStore;
pub use replicated::ReplicatedStore;
pub use resilient::{BreakerState, ResilienceSnapshot, ResilientStore, RetryConfig};
pub use store::ObjectStore;
pub use usage::{
    CloudUsage, PutSample, UsageLedger, UsageMeter, UsageRates, DEFAULT_PUT_SAMPLE_CAPACITY,
};
