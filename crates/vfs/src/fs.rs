use crate::FsError;

/// The file operations a DBMS performs on its data directory.
///
/// Paths are flat `/`-separated strings relative to the data directory
/// (e.g. `pg_xlog/000000010000000000000001` or `ibdata1`), matching how
/// the FUSE prototype saw the database's files.
///
/// Semantics intentionally mirror POSIX pwrite/pread:
///
/// * `write` at an offset past the end zero-fills the gap (sparse file);
/// * `read` of a range extending past the end is an error
///   ([`FsError::OutOfBounds`]) so that page-size bugs surface loudly;
/// * `sync` on `write` models `O_SYNC`/`fsync` — the signal Table 1's
///   event detection keys on.
pub trait FileSystem: Send + Sync {
    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if the path is taken.
    fn create(&self, path: &str) -> Result<(), FsError>;

    /// Writes `data` at `offset`, creating the file if absent and
    /// zero-filling any gap. `sync` marks a synchronous (durable) write.
    ///
    /// # Errors
    ///
    /// [`FsError::Io`] on backend failure.
    fn write(&self, path: &str, offset: u64, data: &[u8], sync: bool) -> Result<(), FsError>;

    /// Reads exactly `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or [`FsError::OutOfBounds`].
    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError>;

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError>;

    /// Returns the file length in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    fn len(&self, path: &str) -> Result<u64, FsError>;

    /// Truncates (or extends with zeros) the file to `len` bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError>;

    /// Deletes the file. Deleting a missing file is not an error.
    ///
    /// # Errors
    ///
    /// [`FsError::Io`] on backend failure.
    fn delete(&self, path: &str) -> Result<(), FsError>;

    /// Renames a file (used by WAL segment recycling).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if `from` is absent.
    fn rename(&self, from: &str, to: &str) -> Result<(), FsError>;

    /// Lists all paths starting with `prefix`, sorted.
    ///
    /// # Errors
    ///
    /// [`FsError::Io`] on backend failure.
    fn list(&self, prefix: &str) -> Result<Vec<String>, FsError>;

    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool {
        self.len(path).is_ok()
    }

    /// Deletes every file (used to simulate a disaster destroying the
    /// primary site).
    ///
    /// # Errors
    ///
    /// [`FsError::Io`] on backend failure.
    fn wipe(&self) -> Result<(), FsError> {
        for path in self.list("")? {
            self.delete(&path)?;
        }
        Ok(())
    }
}

impl<T: FileSystem + ?Sized> FileSystem for std::sync::Arc<T> {
    fn create(&self, path: &str) -> Result<(), FsError> {
        (**self).create(path)
    }
    fn write(&self, path: &str, offset: u64, data: &[u8], sync: bool) -> Result<(), FsError> {
        (**self).write(path, offset, data, sync)
    }
    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        (**self).read(path, offset, len)
    }
    fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError> {
        (**self).read_all(path)
    }
    fn len(&self, path: &str) -> Result<u64, FsError> {
        (**self).len(path)
    }
    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError> {
        (**self).truncate(path, len)
    }
    fn delete(&self, path: &str) -> Result<(), FsError> {
        (**self).delete(path)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        (**self).rename(from, to)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        (**self).list(prefix)
    }
    fn exists(&self, path: &str) -> bool {
        (**self).exists(path)
    }
    fn wipe(&self) -> Result<(), FsError> {
        (**self).wipe()
    }
}
