//! Outage endurance: the bounded upload ring, the coalescing checkpoint
//! queue, the spill-record codec, and the Healthy → Degraded → Enduring
//! → Shedding policy state machine.
//!
//! The paper's safety argument ("lose at most S acked updates") quietly
//! assumes the cloud returns before local state overwhelms the host.
//! Before this module, every pipeline stage rode an unbounded channel:
//! a multi-hour outage grew RAM without bound — checkpoint jobs are the
//! worst offenders, each carrying whole-database dumps — until the OOM
//! killer delivered a worse disaster than the one being insured
//! against. The pieces here bound every stage:
//!
//! * [`UploadRing`] — a bounded in-memory ring between the aggregator
//!   and the uploaders. When full, the aggregator spills overflow jobs
//!   to a durable [`ginja_vfs::SpillQueue`] instead of blocking or
//!   growing.
//! * [`CkptQueue`] — a bounded checkpoint queue that *coalesces* under
//!   pressure: checkpoint jobs are mergeable by construction (the
//!   checkpointer already merges timestamp collisions), so at capacity
//!   the newest queued job absorbs the incoming one.
//! * [`OutagePolicy`] — the pure state machine deciding when the
//!   pipeline is merely degraded, enduring a real outage (escalated
//!   knobs: B/TB widened toward S, dumps and scrub paused), or — at the
//!   configured spill ceiling — shedding, surfaced loudly through
//!   `Exposure::fatal`.
//!
//! Spilled-but-unuploaded WAL never leaves the commit queue (the DBMS
//! is never acked for it), so the at-most-S contract is untouched; the
//! spill merely moves the *waiting room* from RAM to disk.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::bundle::FileRange;
use crate::names::{DbObjectKind, WalObjectName};

/// An upload job for one WAL object.
pub(crate) struct UploadJob {
    pub(crate) batch_id: u64,
    pub(crate) name: WalObjectName,
    pub(crate) raw: Vec<u8>,
}

/// A checkpoint ready to become a DB object.
pub(crate) struct CkptJob {
    pub(crate) ts: u64,
    pub(crate) kind: DbObjectKind,
    pub(crate) entries: Vec<FileRange>,
}

/// Where the pipeline stands relative to a cloud outage — the
/// operator-facing summary of backlog pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutageState {
    /// The cloud is reachable and nothing has spilled.
    #[default]
    Healthy,
    /// Pressure detected (breaker open or a spill backlog exists) but
    /// not yet long or deep enough to call an outage.
    Degraded,
    /// A real outage: backlog has reached disk, or pressure has
    /// persisted past the configured threshold. Knobs are escalated —
    /// B/TB widened toward S, dumps deferred, sentinel scrub paused.
    Enduring,
    /// The spill backlog reached the configured disk ceiling. Incoming
    /// batches now block behind the ring (the DBMS saturates at the
    /// Safety limit), and the condition is surfaced through
    /// `Exposure::fatal` — loud, never silent.
    Shedding,
}

impl OutageState {
    /// Stable integer encoding (for lock-free publication in an atomic).
    pub(crate) fn as_u64(self) -> u64 {
        match self {
            OutageState::Healthy => 0,
            OutageState::Degraded => 1,
            OutageState::Enduring => 2,
            OutageState::Shedding => 3,
        }
    }

    /// Inverse of [`OutageState::as_u64`]; unknown values read Healthy.
    pub(crate) fn from_u64(v: u64) -> Self {
        match v {
            1 => OutageState::Degraded,
            2 => OutageState::Enduring,
            3 => OutageState::Shedding,
            _ => OutageState::Healthy,
        }
    }
}

/// One observation fed to [`OutagePolicy::tick`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OutageObservation {
    /// Whether the resilience layer's circuit breaker is open.
    pub breaker_open: bool,
    /// Live records in the spill queue.
    pub spill_records: u64,
    /// Live payload bytes in the spill queue.
    pub spill_bytes: u64,
}

/// The outage state machine, pure and clock-injected for testability:
/// callers feed observations and a time, transitions come out.
#[derive(Debug)]
pub struct OutagePolicy {
    state: OutageState,
    /// When the current pressure episode began (set on leaving Healthy).
    pressured_since: Option<Instant>,
    /// Sustained-pressure threshold for Degraded → Enduring.
    enduring_after: Duration,
    /// Spill-bytes ceiling for Enduring → Shedding.
    spill_ceiling: u64,
}

impl OutagePolicy {
    /// A policy in the Healthy state.
    pub fn new(enduring_after: Duration, spill_ceiling: u64) -> Self {
        OutagePolicy {
            state: OutageState::Healthy,
            pressured_since: None,
            enduring_after,
            spill_ceiling,
        }
    }

    /// The current state.
    pub fn state(&self) -> OutageState {
        self.state
    }

    /// Advances the machine with one observation at time `now`;
    /// returns the (possibly unchanged) state.
    ///
    /// Pressure is `breaker_open || spill_records > 0`. A full ring
    /// alone is deliberately *not* pressure: a healthy burst can fill
    /// the ring momentarily, and when it does the aggregator spills
    /// immediately, so any sustained condition shows up as spill
    /// records within one batch. Spill with a *closed* breaker is only
    /// Degraded at first — a CPU- or width-bound burst on a healthy
    /// cloud overflows the ring too, and treating every such burst as
    /// an outage would thrash the knobs (and the outage counters) on
    /// busy fleets. It escalates to Enduring when the breaker opens as
    /// well, or when the pressure simply persists past
    /// `enduring_after`.
    pub fn tick(&mut self, obs: &OutageObservation, now: Instant) -> OutageState {
        let pressure = obs.breaker_open || obs.spill_records > 0;
        let outage = obs.breaker_open && obs.spill_records > 0;
        self.state = match self.state {
            OutageState::Healthy => {
                if pressure {
                    self.pressured_since = Some(now);
                    // Backlog on disk with the cloud failing: an
                    // outage, not a blip — skip straight past Degraded.
                    if obs.spill_bytes >= self.spill_ceiling {
                        OutageState::Shedding
                    } else if outage {
                        OutageState::Enduring
                    } else {
                        OutageState::Degraded
                    }
                } else {
                    OutageState::Healthy
                }
            }
            OutageState::Degraded => {
                if !pressure {
                    self.pressured_since = None;
                    OutageState::Healthy
                } else if obs.spill_bytes >= self.spill_ceiling {
                    OutageState::Shedding
                } else if outage
                    || self
                        .pressured_since
                        .is_some_and(|since| now.duration_since(since) >= self.enduring_after)
                {
                    OutageState::Enduring
                } else {
                    OutageState::Degraded
                }
            }
            OutageState::Enduring => {
                if obs.spill_records == 0 && !obs.breaker_open {
                    // Catch-up finished and the cloud answers again.
                    self.pressured_since = None;
                    OutageState::Healthy
                } else if obs.spill_bytes >= self.spill_ceiling {
                    OutageState::Shedding
                } else {
                    OutageState::Enduring
                }
            }
            OutageState::Shedding => {
                if obs.spill_bytes < self.spill_ceiling {
                    if obs.spill_records == 0 && !obs.breaker_open {
                        self.pressured_since = None;
                        OutageState::Healthy
                    } else {
                        OutageState::Enduring
                    }
                } else {
                    OutageState::Shedding
                }
            }
        };
        self.state
    }
}

struct RingInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC ring between the aggregator and the uploader pool —
/// the replacement for the old unbounded upload channel. Capacity is in
/// items; a parallel byte gauge tracks payload RAM for observability.
pub(crate) struct UploadRing<T> {
    inner: Mutex<RingInner<T>>,
    /// Signalled when an item is pushed or the ring closes.
    not_empty: Condvar,
    /// Signalled when an item is popped or the ring closes.
    not_full: Condvar,
    capacity: usize,
    bytes: AtomicU64,
}

impl<T> UploadRing<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        UploadRing {
            inner: Mutex::new(RingInner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            bytes: AtomicU64::new(0),
        }
    }

    /// Non-blocking push; hands the item back when the ring is full so
    /// the caller can spill it instead. `Err` with the item also means
    /// closed (the caller is draining down anyway).
    pub(crate) fn try_push(&self, item: T, bytes: usize) -> Result<(), T> {
        let mut inner = self.inner.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space. Returns `false` when the ring
    /// closed before the item could be enqueued (the item is dropped —
    /// only ever on shutdown, when protection has ended).
    pub(crate) fn push(&self, item: T, bytes: usize) -> bool {
        let mut inner = self.inner.lock();
        while !inner.closed && inner.items.len() >= self.capacity {
            self.not_full.wait(&mut inner);
        }
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.not_empty.notify_one();
        true
    }

    /// Blocking pop: `None` only once the ring is closed *and* drained,
    /// so shutdown never strands queued work.
    pub(crate) fn pop(&self, bytes_of: impl Fn(&T) -> usize) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.bytes
                    .fetch_sub(bytes_of(&item) as u64, Ordering::Relaxed);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    pub(crate) fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

/// What [`CkptQueue::push`] did with the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CkptPush {
    /// Enqueued as its own job.
    Queued,
    /// Absorbed into the newest queued job (the queue was at capacity).
    /// The caller must drop its pending-jobs increment: two logical
    /// checkpoints will complete as one.
    Coalesced,
    /// The queue is closed (shutdown); the job was dropped.
    Closed,
}

/// A bounded checkpoint queue — the replacement for the old unbounded
/// checkpoint channel, whose jobs each carry up to a whole database of
/// page images. At capacity the incoming job is merged into the newest
/// queued one: entries concatenate (later entries win at apply time,
/// exactly the order the checkpointer's own ts-collision merge uses),
/// the timestamp takes the max, and Dump-ness is sticky. This is the
/// same merge recovery itself performs, just earlier and in RAM.
pub(crate) struct CkptQueue {
    inner: Mutex<RingInner<CkptJob>>,
    not_empty: Condvar,
    capacity: usize,
}

impl CkptQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        CkptQueue {
            inner: Mutex::new(RingInner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn push(&self, job: CkptJob) -> CkptPush {
        let mut inner = self.inner.lock();
        if inner.closed {
            return CkptPush::Closed;
        }
        if inner.items.len() >= self.capacity {
            let newest = inner
                .items
                .back_mut()
                .expect("capacity >= 1, so a full queue has a back");
            newest.entries.extend(job.entries);
            newest.ts = newest.ts.max(job.ts);
            if job.kind == DbObjectKind::Dump {
                newest.kind = DbObjectKind::Dump;
            }
            return CkptPush::Coalesced;
        }
        inner.items.push_back(job);
        self.not_empty.notify_one();
        CkptPush::Queued
    }

    /// Blocking pop: `None` only once closed *and* drained.
    pub(crate) fn pop(&self) -> Option<CkptJob> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    pub(crate) fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().items.len()
    }
}

/// Serializes an [`UploadJob`] into a spill-queue payload. The payload
/// rides inside a `SpillQueue` record, which already carries a length
/// and checksum; this layer only needs an unambiguous field layout.
pub(crate) fn encode_spill_record(job: &UploadJob) -> Vec<u8> {
    let file = job.name.file.as_bytes();
    let mut out = Vec::with_capacity(32 + file.len() + job.raw.len());
    out.extend_from_slice(&job.batch_id.to_le_bytes());
    out.extend_from_slice(&job.name.ts.to_le_bytes());
    out.extend_from_slice(&job.name.offset.to_le_bytes());
    out.extend_from_slice(&(file.len() as u32).to_le_bytes());
    out.extend_from_slice(file);
    out.extend_from_slice(&job.raw);
    out
}

/// Inverse of [`encode_spill_record`]. `None` on a malformed payload —
/// possible only through external tampering, since the spill queue's
/// checksum already rejects torn records.
pub(crate) fn decode_spill_record(payload: &[u8]) -> Option<UploadJob> {
    if payload.len() < 28 {
        return None;
    }
    let batch_id = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let ts = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let offset = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let file_len = u32::from_le_bytes(payload[24..28].try_into().ok()?) as usize;
    let raw_start = 28usize.checked_add(file_len)?;
    if payload.len() < raw_start {
        return None;
    }
    let file = String::from_utf8(payload[28..raw_start].to_vec()).ok()?;
    let raw = payload[raw_start..].to_vec();
    let len = raw.len() as u64;
    Some(UploadJob {
        batch_id,
        name: WalObjectName {
            ts,
            file,
            offset,
            len,
        },
        raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(breaker_open: bool, spill_records: u64, spill_bytes: u64) -> OutageObservation {
        OutageObservation {
            breaker_open,
            spill_records,
            spill_bytes,
        }
    }

    #[test]
    fn healthy_stays_healthy_without_pressure() {
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        let t0 = Instant::now();
        assert_eq!(p.tick(&obs(false, 0, 0), t0), OutageState::Healthy);
        assert_eq!(
            p.tick(&obs(false, 0, 0), t0 + Duration::from_secs(3600)),
            OutageState::Healthy
        );
    }

    #[test]
    fn breaker_blip_degrades_then_recovers() {
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        let t0 = Instant::now();
        assert_eq!(p.tick(&obs(true, 0, 0), t0), OutageState::Degraded);
        assert_eq!(
            p.tick(&obs(false, 0, 0), t0 + Duration::from_secs(1)),
            OutageState::Healthy
        );
    }

    #[test]
    fn sustained_breaker_pressure_becomes_enduring() {
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        let t0 = Instant::now();
        p.tick(&obs(true, 0, 0), t0);
        assert_eq!(
            p.tick(&obs(true, 0, 0), t0 + Duration::from_secs(29)),
            OutageState::Degraded
        );
        assert_eq!(
            p.tick(&obs(true, 0, 0), t0 + Duration::from_secs(30)),
            OutageState::Enduring
        );
    }

    #[test]
    fn spill_under_open_breaker_escalates_immediately() {
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        let t0 = Instant::now();
        p.tick(&obs(true, 0, 0), t0);
        assert_eq!(
            p.tick(&obs(true, 3, 300), t0 + Duration::from_millis(1)),
            OutageState::Enduring
        );
        // Straight from Healthy too: breaker open with backlog on disk
        // on the very first tick.
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        assert_eq!(p.tick(&obs(true, 1, 10), t0), OutageState::Enduring);
    }

    #[test]
    fn healthy_cloud_burst_spill_is_only_degraded_until_sustained() {
        // Ring overflow on a *healthy* cloud (closed breaker) is a
        // burst, not an outage: Degraded, and back to Healthy the
        // moment catch-up empties the spill...
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        let t0 = Instant::now();
        assert_eq!(p.tick(&obs(false, 4, 400), t0), OutageState::Degraded);
        assert_eq!(
            p.tick(&obs(false, 0, 0), t0 + Duration::from_secs(1)),
            OutageState::Healthy
        );
        // ...but sustained past `enduring_after`, it is endurance even
        // with the breaker closed (the cloud answers, too slowly).
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        p.tick(&obs(false, 4, 400), t0);
        assert_eq!(
            p.tick(&obs(false, 4, 400), t0 + Duration::from_secs(29)),
            OutageState::Degraded
        );
        assert_eq!(
            p.tick(&obs(false, 4, 400), t0 + Duration::from_secs(30)),
            OutageState::Enduring
        );
    }

    #[test]
    fn ceiling_sheds_and_draining_unsheds() {
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1000);
        let t0 = Instant::now();
        p.tick(&obs(true, 5, 500), t0);
        assert_eq!(p.state(), OutageState::Enduring);
        assert_eq!(
            p.tick(&obs(true, 10, 1000), t0 + Duration::from_secs(1)),
            OutageState::Shedding
        );
        // Catch-up drains below the ceiling: back to Enduring...
        assert_eq!(
            p.tick(&obs(false, 4, 400), t0 + Duration::from_secs(2)),
            OutageState::Enduring
        );
        // ...and fully drained with a closed breaker: Healthy.
        assert_eq!(
            p.tick(&obs(false, 0, 0), t0 + Duration::from_secs(3)),
            OutageState::Healthy
        );
    }

    #[test]
    fn enduring_holds_while_spill_drains_breaker_closed() {
        // Cloud is back (breaker closed) but the spill still has
        // records: stay Enduring until catch-up finishes.
        let mut p = OutagePolicy::new(Duration::from_secs(30), 1 << 30);
        let t0 = Instant::now();
        p.tick(&obs(true, 8, 800), t0);
        assert_eq!(p.state(), OutageState::Enduring);
        assert_eq!(
            p.tick(&obs(false, 2, 200), t0 + Duration::from_secs(1)),
            OutageState::Enduring
        );
        assert_eq!(
            p.tick(&obs(false, 0, 0), t0 + Duration::from_secs(2)),
            OutageState::Healthy
        );
    }

    #[test]
    fn state_u64_roundtrip() {
        for s in [
            OutageState::Healthy,
            OutageState::Degraded,
            OutageState::Enduring,
            OutageState::Shedding,
        ] {
            assert_eq!(OutageState::from_u64(s.as_u64()), s);
        }
        assert_eq!(OutageState::from_u64(99), OutageState::Healthy);
    }

    #[test]
    fn ring_try_push_hands_back_on_full() {
        let ring: UploadRing<u32> = UploadRing::new(2);
        assert!(ring.try_push(1, 10).is_ok());
        assert!(ring.try_push(2, 20).is_ok());
        assert_eq!(ring.try_push(3, 30), Err(3));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.bytes(), 30);
        assert_eq!(ring.pop(|_| 10), Some(1));
        assert_eq!(ring.bytes(), 20);
        assert!(ring.try_push(3, 30).is_ok());
    }

    #[test]
    fn ring_blocking_push_waits_for_space() {
        let ring: std::sync::Arc<UploadRing<u32>> = std::sync::Arc::new(UploadRing::new(1));
        assert!(ring.push(1, 0));
        let r = ring.clone();
        let pusher = std::thread::spawn(move || r.push(2, 0));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pusher.is_finished(), "push must block on a full ring");
        assert_eq!(ring.pop(|_| 0), Some(1));
        assert!(pusher.join().unwrap());
        assert_eq!(ring.pop(|_| 0), Some(2));
    }

    #[test]
    fn ring_close_drains_then_ends() {
        let ring: UploadRing<u32> = UploadRing::new(4);
        ring.try_push(1, 0).unwrap();
        ring.try_push(2, 0).unwrap();
        ring.close();
        assert!(!ring.push(3, 0), "push after close is refused");
        assert_eq!(ring.pop(|_| 0), Some(1));
        assert_eq!(ring.pop(|_| 0), Some(2));
        assert_eq!(ring.pop(|_| 0), None);
    }

    fn ckpt(ts: u64, kind: DbObjectKind, tag: u8) -> CkptJob {
        CkptJob {
            ts,
            kind,
            entries: vec![FileRange {
                path: format!("file-{tag}"),
                offset: 0,
                data: vec![tag],
            }],
        }
    }

    #[test]
    fn ckpt_queue_coalesces_at_capacity() {
        let q = CkptQueue::new(2);
        assert_eq!(
            q.push(ckpt(1, DbObjectKind::Checkpoint, 1)),
            CkptPush::Queued
        );
        assert_eq!(
            q.push(ckpt(2, DbObjectKind::Checkpoint, 2)),
            CkptPush::Queued
        );
        assert_eq!(q.push(ckpt(3, DbObjectKind::Dump, 3)), CkptPush::Coalesced);
        assert_eq!(
            q.push(ckpt(4, DbObjectKind::Checkpoint, 4)),
            CkptPush::Coalesced
        );
        assert_eq!(q.len(), 2);

        let first = q.pop().unwrap();
        assert_eq!(first.ts, 1);
        assert_eq!(first.entries.len(), 1);

        // The newest job absorbed both overflow jobs: max ts, sticky
        // Dump, entries in arrival order (later wins at apply time).
        let merged = q.pop().unwrap();
        assert_eq!(merged.ts, 4);
        assert_eq!(merged.kind, DbObjectKind::Dump);
        let tags: Vec<u8> = merged.entries.iter().map(|e| e.data[0]).collect();
        assert_eq!(tags, [2, 3, 4]);
    }

    #[test]
    fn ckpt_queue_close_drains_then_ends() {
        let q = CkptQueue::new(4);
        q.push(ckpt(1, DbObjectKind::Checkpoint, 1));
        q.close();
        assert_eq!(
            q.push(ckpt(2, DbObjectKind::Checkpoint, 2)),
            CkptPush::Closed
        );
        assert_eq!(q.pop().unwrap().ts, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn spill_record_roundtrip() {
        let job = UploadJob {
            batch_id: 42,
            name: WalObjectName {
                ts: 7,
                file: "pg_xlog/000000000000000A".into(),
                offset: 8192,
                len: 5,
            },
            raw: b"hello".to_vec(),
        };
        let decoded = decode_spill_record(&encode_spill_record(&job)).unwrap();
        assert_eq!(decoded.batch_id, 42);
        assert_eq!(decoded.name, job.name);
        assert_eq!(decoded.raw, b"hello");
    }

    #[test]
    fn spill_record_rejects_malformed() {
        assert!(decode_spill_record(b"short").is_none());
        let job = UploadJob {
            batch_id: 1,
            name: WalObjectName {
                ts: 1,
                file: "f".into(),
                offset: 0,
                len: 0,
            },
            raw: Vec::new(),
        };
        let mut bytes = encode_spill_record(&job);
        // Claim a file length past the end of the payload.
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_spill_record(&bytes).is_none());
    }

    #[test]
    fn spill_record_empty_raw_roundtrip() {
        let job = UploadJob {
            batch_id: 0,
            name: WalObjectName {
                ts: 1,
                file: "wal".into(),
                offset: 100,
                len: 0,
            },
            raw: Vec::new(),
        };
        let decoded = decode_spill_record(&encode_spill_record(&job)).unwrap();
        assert_eq!(decoded.name.offset, 100);
        assert!(decoded.raw.is_empty());
    }
}
