//! Restore rehearsal: prove — on a schedule, not after the disaster —
//! that the cloud state actually restores, and measure what the
//! recovery objectives *achieved* are, not just what was configured.
//!
//! A rehearsal is §5.4's backup verification run end-to-end: download
//! and MAC-verify every object, rebuild the database files into a
//! scratch in-memory file system, and clock it. The wall-clock rebuild
//! time is the achieved **RTO** (what an operator would wait through
//! today); the committed-but-unconfirmed update count at rehearsal time
//! is the achieved **RPO** (what a disaster *right now* would lose),
//! which the Safety parameter `S` promises to bound.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_cloud::ObjectStore;
use ginja_core::{verify_backup_in_memory, GinjaConfig, GinjaError, VerifyReport};
use ginja_vfs::MemFs;

/// The outcome of one restore rehearsal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RehearsalReport {
    /// The underlying verification: per-object MAC results and the
    /// rebuild report (when every object verified).
    pub verify: VerifyReport,
    /// Achieved RTO: wall-clock time of the verify-everything-and-
    /// rebuild pass.
    pub rto: Duration,
    /// Achieved RPO in updates: committed updates a disaster at
    /// rehearsal time would lose. `None` when rehearsing a bucket
    /// offline (no live pipeline to ask).
    pub rpo_updates: Option<usize>,
    /// Whether the achieved RPO respects the configured Safety bound
    /// `S`. `None` offline.
    pub rpo_within_bound: Option<bool>,
}

impl RehearsalReport {
    /// Whether the rehearsal proved the cloud restorable: every object
    /// verified and the rebuild succeeded.
    pub fn restorable(&self) -> bool {
        self.verify.is_ok()
    }
}

/// Rehearses a restore from `cloud` into a fresh scratch [`MemFs`],
/// returning the report and the rebuilt file system (start a DBMS over
/// it for the paper's validations 2–3). This is the offline form used
/// by `ginja-cli drill`; a live [`crate::Sentinel`] wraps it to add the
/// RPO measurement and record the timings in the pipeline's stats.
///
/// # Errors
///
/// Cloud listing failures propagate; a corrupt object or failed rebuild
/// is reported, not errored — discovering it is the point.
pub fn rehearse_bucket(
    cloud: &dyn ObjectStore,
    config: &GinjaConfig,
) -> Result<(RehearsalReport, Arc<MemFs>), GinjaError> {
    let start = Instant::now();
    let (verify, scratch) = verify_backup_in_memory(cloud, config)?;
    let rto = start.elapsed();
    Ok((
        RehearsalReport {
            verify,
            rto,
            rpo_updates: None,
            rpo_within_bound: None,
        },
        scratch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_cloud::MemStore;
    use ginja_codec::Codec;
    use ginja_core::DbObjectKind;

    fn config() -> GinjaConfig {
        GinjaConfig::builder().build().unwrap()
    }

    fn seed_dump(cloud: &MemStore, config: &GinjaConfig) {
        let codec = Codec::new(config.codec.clone());
        let bytes = ginja_core::bundle::encode(&[ginja_core::bundle::FileRange {
            path: "base/1".into(),
            offset: 0,
            data: b"table-data".to_vec(),
        }]);
        let name = ginja_core::DbObjectName {
            ts: 0,
            kind: DbObjectKind::Dump,
            size: bytes.len() as u64,
            part: 0,
            parts: 1,
        };
        let sealed = codec.seal(&name.to_name(), &bytes).unwrap();
        cloud.put(&name.to_name(), &sealed).unwrap();
    }

    #[test]
    fn rehearsal_restores_and_clocks() {
        let cloud = MemStore::new();
        let config = config();
        seed_dump(&cloud, &config);
        let (report, scratch) = rehearse_bucket(&cloud, &config).unwrap();
        assert!(report.restorable());
        assert!(report.rto > Duration::ZERO);
        assert_eq!(report.rpo_updates, None);
        use ginja_vfs::FileSystem;
        assert_eq!(scratch.read_all("base/1").unwrap(), b"table-data");
    }

    #[test]
    fn empty_bucket_rehearsal_is_not_restorable() {
        let (report, _) = rehearse_bucket(&MemStore::new(), &config()).unwrap();
        assert!(!report.restorable());
    }
}
