//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`/`prop_oneof!`, `any::<T>()`, range and
//! tuple strategies, `Just`, `prop_map`, `collection::vec`, and string
//! strategies of the form `"[charset]{m,n}"`. Generation is
//! deterministic (seeded from the test's module path and name) and
//! there is no shrinking: a failing case panics with its case number so
//! it can be reproduced by rerunning the same test binary.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is discarded.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic generator used for all strategy sampling
    /// (xoshiro256++ core, seeded from the test's fully-qualified name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds a generator from an arbitrary string (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = hash;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform sample from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking:
    /// `generate` directly produces a sample.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    // Shared references delegate, letting strategies be reused.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of strategies, as built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, option) in &self.options {
                if pick < *weight as u64 {
                    return option.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Values generable by [`any`](crate::arbitrary::any).
    pub trait Arbitrary: Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy for an [`Arbitrary`] type.
    pub struct ArbitraryStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T> ArbitraryStrategy<T> {
        pub fn new() -> Self {
            ArbitraryStrategy { _marker: PhantomData }
        }
    }

    impl<T> Default for ArbitraryStrategy<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// Numeric types samplable from range strategies.
    pub trait SampleInRange: Copy + PartialOrd {
        fn sample(rng: &mut TestRng, low: Self, high: Self, inclusive: bool) -> Self;
    }

    macro_rules! impl_sample_in_range_int {
        ($($t:ty),*) => {$(
            impl SampleInRange for $t {
                fn sample(rng: &mut TestRng, low: Self, high: Self, inclusive: bool) -> Self {
                    let span = (high as i128 - low as i128) as u128
                        + if inclusive { 1 } else { 0 };
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    let offset = (rng.next_u64() as u128) % span;
                    (low as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    impl_sample_in_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleInRange for f64 {
        fn sample(rng: &mut TestRng, low: Self, high: Self, _inclusive: bool) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + (high - low) * unit
        }
    }

    impl<T: SampleInRange> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::sample(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleInRange> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (low, high) = (*self.start(), *self.end());
            assert!(low <= high, "empty range strategy");
            T::sample(rng, low, high, true)
        }
    }

    // String strategies from regex-like literals of the shape
    // "[charset]{m,n}" (e.g. "[a-z]{1,12}", "[ -~]{0,60}").
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_charset_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[charset]{m,n}` / `[charset]{m}` into (alphabet, m, n).
    fn parse_charset_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let exact = counts.trim().parse().ok()?;
                (exact, exact)
            }
        };
        if min > max {
            return None;
        }
        Some((alphabet, min, max))
    }

    macro_rules! impl_strategy_for_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::{Arbitrary, ArbitraryStrategy};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Each `fn` becomes a `#[test]` that runs
/// `config.cases` generated cases; a failing assertion panics with the
/// case number (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let run = move || -> ::std::result::Result<
                                (),
                                $crate::test_runner::Rejected,
                            > {
                                $body
                                ::std::result::Result::Ok(())
                            };
                            let _ = run();
                        }),
                    );
                    if let ::std::result::Result::Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic seed; \
                             rerun this test to reproduce)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_generates_within_charset() {
        let mut rng = TestRng::for_test("string_pattern");
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let p = Strategy::generate(&"[ -~]{0,60}", &mut rng);
            assert!(p.len() <= 60);
            assert!(p.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    #[test]
    fn oneof_respects_zero_paths() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![
            3 => (0u8..4).prop_map(|v| v as u32),
            1 => Just(99u32),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 4 || v == 99);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_args(
            data in crate::collection::vec(any::<u8>(), 0..32),
            k in 1usize..6,
            name in "[a-z]{1,10}",
        ) {
            prop_assert!(data.len() < 32);
            prop_assert!((1..6).contains(&k));
            prop_assert!(!name.is_empty());
        }

        #[test]
        fn assume_discards_cases(v in any::<u64>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }
}
