//! A durable spill-to-disk overflow queue for pipeline backlog.
//!
//! During a prolonged cloud outage the upload pipeline cannot drain; its
//! in-memory ring fills, and without a pressure valve the process grows
//! without bound until the OOM killer delivers a worse disaster than the
//! one Ginja insures against. `SpillQueue` is that valve: a strict-FIFO
//! queue of opaque records persisted one-per-file on the local
//! [`FileSystem`], so backlog moves from RAM to the same durable tier the
//! WAL already lives on.
//!
//! Durability contract (matching [`crate::JournaledFs`]'s ext4-ordered
//! model): every record is written in a single `write(sync = true)` call,
//! which promotes the whole file to the durable tier before `push`
//! returns, and metadata operations (create/delete) are journaled. A
//! record is therefore crash-safe the moment `push` returns, and acked
//! records stay deleted. A crash *during* a push can leave a torn record
//! on disk; each record carries a length + checksum header so recovery
//! detects the tear, discards that record, and keeps everything else.
//! Discarding a torn record is safe by construction: its `push` never
//! returned, so the producer never released the in-memory copy it was
//! spilling.
//!
//! Record files are named by a zero-padded monotone sequence number under
//! a caller-chosen directory prefix, so lexical listing order (what
//! [`FileSystem::list`] guarantees) *is* FIFO order and recovery is a
//! single list-and-validate pass.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{FileSystem, FsError};

/// Magic prefix of every spill record (`"GSP1"`).
const MAGIC: u32 = 0x4753_5031;

/// Header: magic (4) + payload length (4) + FNV-1a checksum (8).
const HEADER: usize = 16;

/// FNV-1a 64-bit — cheap, dependency-free tear detection. The threat is a
/// sector-prefix tear from a power cut, not an adversary; the codec layer
/// above authenticates payload content.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug, Default)]
struct SpillState {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Live records: sequence number → payload length in bytes.
    records: BTreeMap<u64, u64>,
}

/// A durable FIFO of opaque records, one file per record, under a
/// directory prefix on a local [`FileSystem`].
///
/// Producers [`push`](Self::push); a consumer [`front`](Self::front)s the
/// oldest record, uploads it, and [`ack`](Self::ack)s to delete it. The
/// queue never drops a pushed record on its own — bounding is the
/// caller's policy, informed by the [`len`](Self::len) and
/// [`bytes`](Self::bytes) gauges.
pub struct SpillQueue {
    fs: Arc<dyn FileSystem>,
    dir: String,
    state: Mutex<SpillState>,
    /// Live record count, readable without the lock.
    len: AtomicU64,
    /// Live payload bytes, readable without the lock.
    bytes: AtomicU64,
    /// Records pushed over this instance's lifetime.
    pushed: AtomicU64,
    /// Records acked (deleted) over this instance's lifetime.
    acked: AtomicU64,
    /// Torn records discarded during recovery.
    torn_discarded: u64,
}

impl std::fmt::Debug for SpillQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillQueue")
            .field("dir", &self.dir)
            .field("len", &self.len())
            .field("bytes", &self.bytes())
            .finish_non_exhaustive()
    }
}

impl SpillQueue {
    /// Opens (or creates) the queue under `dir`, recovering any records a
    /// previous incarnation left behind. Torn records — a crash mid-push —
    /// fail their checksum and are deleted; everything intact is retained
    /// in sequence order.
    ///
    /// # Errors
    ///
    /// Backend listing/read failures.
    pub fn open(fs: Arc<dyn FileSystem>, dir: &str) -> Result<Self, FsError> {
        let dir = dir.trim_end_matches('/').to_string();
        let prefix = format!("{dir}/");
        let mut records = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut bytes = 0u64;
        let mut torn = 0u64;
        for path in fs.list(&prefix)? {
            let Some(seq) = path
                .strip_prefix(&prefix)
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue; // foreign file under our prefix: not ours to touch
            };
            next_seq = next_seq.max(seq + 1);
            match Self::validate(&*fs, &path) {
                Some(len) => {
                    bytes += len;
                    records.insert(seq, len);
                }
                None => {
                    // Torn mid-push: the push never returned, the producer
                    // still holds the data. Discard, count, move on.
                    fs.delete(&path)?;
                    torn += 1;
                }
            }
        }
        Ok(SpillQueue {
            fs,
            dir,
            len: AtomicU64::new(records.len() as u64),
            bytes: AtomicU64::new(bytes),
            state: Mutex::new(SpillState { next_seq, records }),
            pushed: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            torn_discarded: torn,
        })
    }

    /// Checks a record file's header and checksum; returns the payload
    /// length if intact.
    fn validate(fs: &dyn FileSystem, path: &str) -> Option<u64> {
        let data = fs.read_all(path).ok()?;
        if data.len() < HEADER {
            return None;
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(data[8..16].try_into().unwrap());
        if magic != MAGIC || data.len() != HEADER + len {
            return None;
        }
        (fnv1a(&data[HEADER..]) == sum).then_some(len as u64)
    }

    fn path_of(&self, seq: u64) -> String {
        // 20 digits holds all of u64: lexical order == numeric order.
        format!("{}/{seq:020}", self.dir)
    }

    /// Appends a record, durable before return. Returns its sequence
    /// number.
    ///
    /// # Errors
    ///
    /// Backend write failures; the record is not enqueued on error.
    pub fn push(&self, payload: &[u8]) -> Result<u64, FsError> {
        let mut record = Vec::with_capacity(HEADER + payload.len());
        record.extend_from_slice(&MAGIC.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a(payload).to_le_bytes());
        record.extend_from_slice(payload);

        let mut state = self.state.lock();
        let seq = state.next_seq;
        let path = self.path_of(seq);
        self.fs.write(&path, 0, &record, true)?;
        state.next_seq += 1;
        state.records.insert(seq, payload.len() as u64);
        self.len.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// The oldest record, without removing it: `(sequence, payload)`.
    /// `None` when empty.
    ///
    /// # Errors
    ///
    /// Backend read failures.
    pub fn front(&self) -> Result<Option<(u64, Vec<u8>)>, FsError> {
        let seq = {
            let state = self.state.lock();
            match state.records.keys().next() {
                Some(&seq) => seq,
                None => return Ok(None),
            }
        };
        let data = self.fs.read_all(&self.path_of(seq))?;
        Ok(Some((seq, data[HEADER..].to_vec())))
    }

    /// Deletes an uploaded record. Acking an unknown sequence is a no-op
    /// (idempotent, like deleting a missing file).
    ///
    /// # Errors
    ///
    /// Backend delete failures; the record stays queued on error.
    pub fn ack(&self, seq: u64) -> Result<(), FsError> {
        let mut state = self.state.lock();
        let Some(len) = state.records.get(&seq).copied() else {
            return Ok(());
        };
        self.fs.delete(&self.path_of(seq))?;
        state.records.remove(&seq);
        self.len.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(len, Ordering::Relaxed);
        self.acked.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes across live records (headers excluded).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Records pushed since this instance opened.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Records acked since this instance opened.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Torn records discarded when this instance opened.
    pub fn torn_discarded(&self) -> u64 {
        self.torn_discarded
    }

    /// Deletes every live record without acking it — for Boot, which
    /// starts a fresh protection history: records spilled under a
    /// previous history must not leak into the new bucket.
    ///
    /// # Errors
    ///
    /// Backend delete failures; already-deleted records are skipped.
    pub fn clear(&self) -> Result<(), FsError> {
        let mut state = self.state.lock();
        let seqs: Vec<u64> = state.records.keys().copied().collect();
        for seq in seqs {
            self.fs.delete(&self.path_of(seq))?;
            let len = state.records.remove(&seq).unwrap_or(0);
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.bytes.fetch_sub(len, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JournaledFs, MemFs};

    const DIR: &str = ".ginja_spill";

    #[test]
    fn fifo_push_front_ack() {
        let fs = Arc::new(MemFs::new());
        let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.front().unwrap(), None);

        let s0 = q.push(b"alpha").unwrap();
        let s1 = q.push(b"beta").unwrap();
        let s2 = q.push(b"gamma").unwrap();
        assert!(s0 < s1 && s1 < s2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.bytes(), 5 + 4 + 5);

        let (seq, payload) = q.front().unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (s0, b"alpha".as_slice()));
        q.ack(seq).unwrap();
        let (seq, payload) = q.front().unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (s1, b"beta".as_slice()));
        q.ack(seq).unwrap();
        q.ack(seq).unwrap(); // idempotent
        let (seq, payload) = q.front().unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (s2, b"gamma".as_slice()));
        q.ack(seq).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        assert_eq!((q.pushed(), q.acked()), (3, 3));
    }

    #[test]
    fn survives_reopen_in_order() {
        let fs = Arc::new(MemFs::new());
        {
            let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
            for i in 0..5u32 {
                q.push(format!("record-{i}").as_bytes()).unwrap();
            }
            let (front, _) = q.front().unwrap().unwrap();
            q.ack(front).unwrap();
        }
        let q = SpillQueue::open(fs as Arc<dyn FileSystem>, DIR).unwrap();
        assert_eq!(q.len(), 4);
        let mut drained = Vec::new();
        while let Some((seq, payload)) = q.front().unwrap() {
            drained.push(String::from_utf8(payload).unwrap());
            q.ack(seq).unwrap();
        }
        assert_eq!(drained, ["record-1", "record-2", "record-3", "record-4"]);
        // Sequence numbering resumes past everything ever seen.
        assert!(q.push(b"new").unwrap() >= 5);
    }

    #[test]
    fn synced_records_survive_power_cut() {
        let journaled = Arc::new(JournaledFs::new());
        {
            let q = SpillQueue::open(journaled.clone() as Arc<dyn FileSystem>, DIR).unwrap();
            q.push(b"durable-one").unwrap();
            q.push(b"durable-two").unwrap();
        }
        journaled.power_cut();
        let q = SpillQueue::open(journaled as Arc<dyn FileSystem>, DIR).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.torn_discarded(), 0);
        let (seq, payload) = q.front().unwrap().unwrap();
        assert_eq!(payload, b"durable-one");
        q.ack(seq).unwrap();
        assert_eq!(q.front().unwrap().unwrap().1, b"durable-two");
    }

    #[test]
    fn acks_stay_deleted_across_power_cut() {
        let journaled = Arc::new(JournaledFs::new());
        let q = SpillQueue::open(journaled.clone() as Arc<dyn FileSystem>, DIR).unwrap();
        let seq = q.push(b"uploaded").unwrap();
        q.push(b"pending").unwrap();
        q.ack(seq).unwrap();
        journaled.power_cut();
        let q = SpillQueue::open(journaled as Arc<dyn FileSystem>, DIR).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.front().unwrap().unwrap().1, b"pending");
    }

    #[test]
    fn torn_record_is_discarded_and_counted() {
        let fs = Arc::new(MemFs::new());
        let record_path;
        {
            let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
            q.push(b"intact").unwrap();
            let seq = q.push(b"to-be-torn-by-a-crash").unwrap();
            record_path = format!("{DIR}/{seq:020}");
        }
        // Simulate a sector-prefix tear of the second record's file.
        let len = fs.len(&record_path).unwrap();
        fs.truncate(&record_path, len / 2).unwrap();

        let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.torn_discarded(), 1);
        assert_eq!(q.front().unwrap().unwrap().1, b"intact");
        assert!(!fs.exists(&record_path), "torn record deleted");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let fs = Arc::new(MemFs::new());
        let record_path;
        {
            let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
            let seq = q.push(b"will-flip-a-bit").unwrap();
            record_path = format!("{DIR}/{seq:020}");
        }
        let mut data = fs.read_all(&record_path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x80;
        fs.write(&record_path, 0, &data, true).unwrap();

        let q = SpillQueue::open(fs as Arc<dyn FileSystem>, DIR).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.torn_discarded(), 1);
    }

    #[test]
    fn clear_deletes_all_records() {
        let fs = Arc::new(MemFs::new());
        let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
        q.push(b"one").unwrap();
        q.push(b"two").unwrap();
        q.clear().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        assert_eq!(fs.list(&format!("{DIR}/")).unwrap().len(), 0);
        // The sequence counter is untouched: new pushes stay ordered.
        assert!(q.push(b"three").unwrap() >= 2);
    }

    #[test]
    fn foreign_files_under_the_prefix_are_ignored() {
        let fs = Arc::new(MemFs::new());
        fs.write(&format!("{DIR}/README"), 0, b"not a record", true)
            .unwrap();
        let q = SpillQueue::open(fs.clone() as Arc<dyn FileSystem>, DIR).unwrap();
        assert!(q.is_empty());
        q.push(b"real").unwrap();
        assert_eq!(q.len(), 1);
        assert!(fs.exists(&format!("{DIR}/README")), "foreign file kept");
    }
}
