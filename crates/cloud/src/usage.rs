//! The unified usage-metering surface: [`UsageMeter`] + [`UsageLedger`].
//!
//! Historically every consumer that wanted cloud-op accounting had to
//! reach into the concrete [`crate::MeteredStore`] wrapper — which the
//! live pipeline never used, so boot, uploader, checkpointer, GC and
//! sentinel traffic was invisible to the §7 cost model. This module
//! inverts that: a [`UsageLedger`] is a shared, thread-safe set of
//! counters that *any* layer can record into, and [`UsageMeter`] is the
//! one read API shared by benches, stats, and the cost governor.
//!
//! [`crate::MeteredStore`] and [`crate::ResilientStore`] both record into
//! a ledger; the latter means every operation Ginja issues lands in a
//! single ledger without extra decorators.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Default capacity of the PUT-sample ring kept by a [`UsageLedger`].
///
/// Bounded so a month-long run cannot grow the buffer without limit;
/// once full, the oldest sample is evicted and
/// [`UsageMeter::dropped_put_samples`] is incremented.
pub const DEFAULT_PUT_SAMPLE_CAPACITY: usize = 8192;

/// One recorded PUT: payload size and observed end-to-end latency.
///
/// The per-configuration averages of these samples are exactly what the
/// paper's Table 3 reports ("Num. PUTs", "Object Size", "PUT latency").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PutSample {
    /// Uploaded object size in bytes.
    pub bytes: u64,
    /// Wall-clock latency of the PUT (includes simulated WAN time when
    /// stacked over a [`crate::LatencyStore`]).
    pub latency: Duration,
}

/// A snapshot of accumulated cloud usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CloudUsage {
    /// Successful PUT operations.
    pub puts: u64,
    /// Successful GET operations.
    pub gets: u64,
    /// Successful DELETE operations.
    pub deletes: u64,
    /// Successful LIST operations.
    pub lists: u64,
    /// Failed operations of any kind.
    pub failures: u64,
    /// Total bytes uploaded by successful PUTs.
    pub bytes_uploaded: u64,
    /// Total bytes downloaded by successful GETs.
    pub bytes_downloaded: u64,
    /// Bytes currently stored (sum of live object sizes).
    pub stored_bytes: u64,
    /// High-water mark of `stored_bytes`.
    pub peak_stored_bytes: u64,
}

impl CloudUsage {
    /// Average uploaded object size, or 0 when nothing was uploaded.
    pub fn avg_put_size(&self) -> u64 {
        self.bytes_uploaded.checked_div(self.puts).unwrap_or(0)
    }
}

/// Windowed operation rates derived from successive ledger observations.
///
/// Produced by [`UsageLedger::observe_rates`]; the cost governor feeds
/// these into its month-end spend projection.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageRates {
    /// Wall-clock span the rates were measured over.
    pub span: Duration,
    /// Successful PUTs per minute.
    pub puts_per_min: f64,
    /// Successful GETs per minute.
    pub gets_per_min: f64,
    /// Successful DELETEs per minute.
    pub deletes_per_min: f64,
    /// Uploaded bytes per minute.
    pub upload_bytes_per_min: f64,
}

/// The single read API over metered cloud accounting.
///
/// Implemented by [`UsageLedger`] itself, by [`crate::MeteredStore`]
/// (which delegates to its ledger) and by [`crate::ResilientStore`], so
/// benches, stats, and the governor all consume exactly one interface
/// instead of reaching into concrete wrappers.
pub trait UsageMeter {
    /// Current usage snapshot.
    fn usage(&self) -> CloudUsage;

    /// The retained PUT samples (most recent first-in order, cloned).
    ///
    /// The ring is bounded; consult [`UsageMeter::dropped_put_samples`]
    /// for how many older samples were evicted.
    fn put_samples(&self) -> Vec<PutSample>;

    /// How many PUT samples were evicted because the ring was full.
    fn dropped_put_samples(&self) -> u64;

    /// Mean PUT latency over the retained samples, or zero when empty.
    fn mean_put_latency(&self) -> Duration {
        let samples = self.put_samples();
        if samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = samples.iter().map(|s| s.latency).sum();
        total / samples.len() as u32
    }

    /// Resets counters, samples, and the measurement epoch
    /// (stored-size tracking is kept, as the objects remain in the
    /// backend).
    fn reset_counters(&self);

    /// Wall-clock time since the ledger was created or last reset.
    fn elapsed(&self) -> Duration;
}

/// Bounded ring of PUT samples with an eviction counter.
#[derive(Debug)]
struct SampleRing {
    samples: VecDeque<PutSample>,
    capacity: usize,
    dropped: u64,
}

impl SampleRing {
    fn new(capacity: usize) -> Self {
        SampleRing {
            samples: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, sample: PutSample) {
        if self.samples.len() >= self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }
}

/// Monotonic counters sampled by the rate window.
#[derive(Debug, Clone, Copy)]
struct RateCounts {
    puts: u64,
    gets: u64,
    deletes: u64,
    bytes_uploaded: u64,
}

/// Ring of timestamped counter observations for windowed rates.
#[derive(Debug)]
struct RateWindow {
    observations: VecDeque<(Instant, RateCounts)>,
}

const MAX_RATE_OBSERVATIONS: usize = 128;

/// Shared, thread-safe cloud-usage accounting.
///
/// Cheap atomic counters plus a name → size map (so live stored bytes
/// work over any backend), a bounded [`PutSample`] ring, and a windowed
/// rate tracker. Clone the `Arc` and hand it to every layer that issues
/// cloud operations — all of them land in one ledger.
///
/// ```rust
/// use std::sync::Arc;
/// use ginja_cloud::{UsageLedger, UsageMeter};
/// use std::time::Duration;
///
/// let ledger = Arc::new(UsageLedger::new());
/// ledger.record_put("a", 100, Duration::from_millis(3));
/// ledger.record_get(100);
/// let usage = ledger.usage();
/// assert_eq!((usage.puts, usage.gets, usage.stored_bytes), (1, 1, 100));
/// ```
#[derive(Debug)]
pub struct UsageLedger {
    puts: AtomicU64,
    gets: AtomicU64,
    deletes: AtomicU64,
    lists: AtomicU64,
    failures: AtomicU64,
    bytes_uploaded: AtomicU64,
    bytes_downloaded: AtomicU64,
    stored_bytes: AtomicU64,
    peak_stored_bytes: AtomicU64,
    sizes: Mutex<HashMap<String, u64>>,
    ring: Mutex<SampleRing>,
    window: Mutex<RateWindow>,
    epoch: Mutex<Instant>,
}

impl Default for UsageLedger {
    fn default() -> Self {
        UsageLedger::new()
    }
}

impl UsageLedger {
    /// A fresh ledger with the default PUT-sample capacity.
    pub fn new() -> Self {
        UsageLedger::with_sample_capacity(DEFAULT_PUT_SAMPLE_CAPACITY)
    }

    /// A fresh ledger retaining at most `capacity` PUT samples.
    pub fn with_sample_capacity(capacity: usize) -> Self {
        UsageLedger {
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            lists: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            bytes_uploaded: AtomicU64::new(0),
            bytes_downloaded: AtomicU64::new(0),
            stored_bytes: AtomicU64::new(0),
            peak_stored_bytes: AtomicU64::new(0),
            sizes: Mutex::new(HashMap::new()),
            ring: Mutex::new(SampleRing::new(capacity.max(1))),
            window: Mutex::new(RateWindow {
                observations: VecDeque::new(),
            }),
            epoch: Mutex::new(Instant::now()),
        }
    }

    /// Records one successful PUT of `bytes` for object `name`.
    pub fn record_put(&self, name: &str, bytes: u64, latency: Duration) {
        self.puts.fetch_add(1, Ordering::SeqCst);
        self.bytes_uploaded.fetch_add(bytes, Ordering::SeqCst);
        self.update_stored(name, Some(bytes));
        self.ring.lock().push(PutSample { bytes, latency });
    }

    /// Records one successful GET that downloaded `bytes`.
    pub fn record_get(&self, bytes: u64) {
        self.gets.fetch_add(1, Ordering::SeqCst);
        self.bytes_downloaded.fetch_add(bytes, Ordering::SeqCst);
    }

    /// Records one successful DELETE of object `name`.
    pub fn record_delete(&self, name: &str) {
        self.deletes.fetch_add(1, Ordering::SeqCst);
        self.update_stored(name, None);
    }

    /// Records one successful LIST.
    pub fn record_list(&self) {
        self.lists.fetch_add(1, Ordering::SeqCst);
    }

    /// Records one failed operation of any kind.
    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::SeqCst);
    }

    /// Takes a rate observation and returns the operation rates over
    /// (roughly) the trailing `window`.
    ///
    /// Self-driving: each call records the current counters, so a
    /// caller polling periodically (the governor) gets rates over its
    /// own polling horizon with no background thread. Before a full
    /// window has elapsed, rates since the epoch are returned.
    pub fn observe_rates(&self, window: Duration) -> UsageRates {
        let now = Instant::now();
        let current = RateCounts {
            puts: self.puts.load(Ordering::SeqCst),
            gets: self.gets.load(Ordering::SeqCst),
            deletes: self.deletes.load(Ordering::SeqCst),
            bytes_uploaded: self.bytes_uploaded.load(Ordering::SeqCst),
        };
        let mut tracker = self.window.lock();
        tracker.observations.push_back((now, current));
        if tracker.observations.len() > MAX_RATE_OBSERVATIONS {
            tracker.observations.pop_front();
        }
        // Keep exactly one anchor at-or-beyond the window boundary.
        while tracker.observations.len() > 2
            && now.duration_since(tracker.observations[1].0) >= window
        {
            tracker.observations.pop_front();
        }
        let (anchor_time, anchor) = tracker.observations[0];
        let span = now.duration_since(anchor_time);
        let span = if span.is_zero() {
            // First observation: fall back to rates since the epoch.
            now.duration_since(*self.epoch.lock())
        } else {
            span
        };
        let minutes = span.as_secs_f64() / 60.0;
        if minutes <= 0.0 {
            return UsageRates::default();
        }
        UsageRates {
            span,
            puts_per_min: (current.puts - anchor.puts) as f64 / minutes,
            gets_per_min: (current.gets - anchor.gets) as f64 / minutes,
            deletes_per_min: (current.deletes - anchor.deletes) as f64 / minutes,
            upload_bytes_per_min: (current.bytes_uploaded - anchor.bytes_uploaded) as f64 / minutes,
        }
    }

    fn update_stored(&self, name: &str, new_size: Option<u64>) {
        let mut sizes = self.sizes.lock();
        let old = match new_size {
            Some(size) => sizes.insert(name.to_string(), size),
            None => sizes.remove(name),
        };
        let old = old.unwrap_or(0);
        let new = new_size.unwrap_or(0);
        let stored = if new >= old {
            self.stored_bytes.fetch_add(new - old, Ordering::SeqCst) + (new - old)
        } else {
            self.stored_bytes.fetch_sub(old - new, Ordering::SeqCst) - (old - new)
        };
        self.peak_stored_bytes.fetch_max(stored, Ordering::SeqCst);
    }
}

impl UsageMeter for UsageLedger {
    fn usage(&self) -> CloudUsage {
        CloudUsage {
            puts: self.puts.load(Ordering::SeqCst),
            gets: self.gets.load(Ordering::SeqCst),
            deletes: self.deletes.load(Ordering::SeqCst),
            lists: self.lists.load(Ordering::SeqCst),
            failures: self.failures.load(Ordering::SeqCst),
            bytes_uploaded: self.bytes_uploaded.load(Ordering::SeqCst),
            bytes_downloaded: self.bytes_downloaded.load(Ordering::SeqCst),
            stored_bytes: self.stored_bytes.load(Ordering::SeqCst),
            peak_stored_bytes: self.peak_stored_bytes.load(Ordering::SeqCst),
        }
    }

    fn put_samples(&self) -> Vec<PutSample> {
        self.ring.lock().samples.iter().copied().collect()
    }

    fn dropped_put_samples(&self) -> u64 {
        self.ring.lock().dropped
    }

    fn reset_counters(&self) {
        self.puts.store(0, Ordering::SeqCst);
        self.gets.store(0, Ordering::SeqCst);
        self.deletes.store(0, Ordering::SeqCst);
        self.lists.store(0, Ordering::SeqCst);
        self.failures.store(0, Ordering::SeqCst);
        self.bytes_uploaded.store(0, Ordering::SeqCst);
        self.bytes_downloaded.store(0, Ordering::SeqCst);
        {
            let mut ring = self.ring.lock();
            ring.samples.clear();
            ring.dropped = 0;
        }
        self.window.lock().observations.clear();
        *self.epoch.lock() = Instant::now();
        let stored = self.stored_bytes.load(Ordering::SeqCst);
        self.peak_stored_bytes.store(stored, Ordering::SeqCst);
    }

    fn elapsed(&self) -> Duration {
        self.epoch.lock().elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_records_ops() {
        let ledger = UsageLedger::new();
        ledger.record_put("a", 100, Duration::from_millis(1));
        ledger.record_put("b", 50, Duration::from_millis(3));
        ledger.record_get(100);
        ledger.record_list();
        ledger.record_delete("b");
        ledger.record_failure();
        let u = ledger.usage();
        assert_eq!(u.puts, 2);
        assert_eq!(u.gets, 1);
        assert_eq!(u.lists, 1);
        assert_eq!(u.deletes, 1);
        assert_eq!(u.failures, 1);
        assert_eq!(u.bytes_uploaded, 150);
        assert_eq!(u.bytes_downloaded, 100);
        assert_eq!(u.stored_bytes, 100);
        assert_eq!(u.peak_stored_bytes, 150);
    }

    #[test]
    fn sample_ring_caps_and_counts_drops() {
        let ledger = UsageLedger::with_sample_capacity(4);
        for i in 0..10 {
            ledger.record_put(&format!("o{i}"), i, Duration::from_micros(i));
        }
        let samples = ledger.put_samples();
        assert_eq!(samples.len(), 4);
        assert_eq!(ledger.dropped_put_samples(), 6);
        // The ring keeps the most recent samples.
        assert_eq!(samples[0].bytes, 6);
        assert_eq!(samples[3].bytes, 9);
    }

    #[test]
    fn reset_clears_drops_and_epoch() {
        let ledger = UsageLedger::with_sample_capacity(2);
        ledger.record_put("a", 1, Duration::ZERO);
        ledger.record_put("b", 1, Duration::ZERO);
        ledger.record_put("c", 1, Duration::ZERO);
        assert_eq!(ledger.dropped_put_samples(), 1);
        ledger.reset_counters();
        assert_eq!(ledger.dropped_put_samples(), 0);
        assert!(ledger.put_samples().is_empty());
        assert_eq!(ledger.usage().puts, 0);
        // Stored bytes survive a reset: the objects are still there.
        assert_eq!(ledger.usage().stored_bytes, 3);
        assert!(ledger.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn mean_latency_zero_when_empty() {
        let ledger = UsageLedger::new();
        assert_eq!(ledger.mean_put_latency(), Duration::ZERO);
    }

    #[test]
    fn windowed_rates_reflect_traffic() {
        let ledger = UsageLedger::new();
        let window = Duration::from_millis(200);
        ledger.observe_rates(window);
        for i in 0..30 {
            ledger.record_put(&format!("o{i}"), 1000, Duration::ZERO);
        }
        std::thread::sleep(Duration::from_millis(30));
        let rates = ledger.observe_rates(window);
        assert!(rates.puts_per_min > 0.0, "rates: {rates:?}");
        assert!(rates.upload_bytes_per_min >= 1000.0 * rates.puts_per_min * 0.99);
    }

    #[test]
    fn rates_zero_before_time_passes() {
        let ledger = UsageLedger::new();
        let rates = ledger.observe_rates(Duration::from_secs(60));
        // No panic, rates finite.
        assert!(rates.puts_per_min >= 0.0);
    }

    #[test]
    fn concurrent_recording_consistent() {
        use std::sync::Arc;
        let ledger = Arc::new(UsageLedger::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let ledger = ledger.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    ledger.record_put(&format!("o-{t}-{i}"), 10, Duration::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let u = ledger.usage();
        assert_eq!(u.puts, 200);
        assert_eq!(u.bytes_uploaded, 2000);
        assert_eq!(u.stored_bytes, 2000);
    }
}
