//! Multi-terminal TPC-C driver reporting the paper's two throughput
//! metrics: Tpm-C (newOrder transactions per minute, "while the DBMS is
//! also processing other types of transactions") and Tpm-Total.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_db::Database;

use crate::tpcc::{Tpcc, TpccScale, TxnKind};

/// Result of one driver run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Total transactions executed.
    pub total_txns: u64,
    /// newOrder transactions executed.
    pub new_order_txns: u64,
    /// Wall-clock duration of the measured window.
    pub duration: Duration,
    /// Transactions that failed (should be zero).
    pub errors: u64,
}

impl RunReport {
    /// Total transactions per minute.
    pub fn tpm_total(&self) -> f64 {
        self.total_txns as f64 * 60.0 / self.duration.as_secs_f64().max(1e-9)
    }

    /// newOrder transactions per minute (Tpm-C).
    pub fn tpm_c(&self) -> f64 {
        self.new_order_txns as f64 * 60.0 / self.duration.as_secs_f64().max(1e-9)
    }
}

/// Runs `terminals` concurrent TPC-C terminals against `db` for
/// `duration` (schema and population must already be loaded).
///
/// Each terminal executes the standard mix back-to-back (no think
/// time), exactly like the paper's five-minute BenchmarkSQL runs.
pub fn run_tpcc(
    db: &Arc<Database>,
    warehouses: u64,
    terminals: u64,
    duration: Duration,
    seed: u64,
    scale: TpccScale,
) -> RunReport {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let new_orders = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut handles = Vec::new();
    for terminal in 0..terminals {
        let db = db.clone();
        let stop = stop.clone();
        let total = total.clone();
        let new_orders = new_orders.clone();
        let errors = errors.clone();
        handles.push(std::thread::spawn(move || {
            let mut tpcc = Tpcc::for_terminal(warehouses, seed, scale, terminal, terminals);
            while !stop.load(Ordering::Relaxed) {
                match tpcc.run_transaction(&db) {
                    Ok(kind) => {
                        total.fetch_add(1, Ordering::Relaxed);
                        if kind == TxnKind::NewOrder {
                            new_orders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        let _ = handle.join();
    }

    RunReport {
        total_txns: total.load(Ordering::Relaxed),
        new_order_txns: new_orders.load(Ordering::Relaxed),
        duration: start.elapsed(),
        errors: errors.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_db::DbProfile;
    use ginja_vfs::MemFs;

    #[test]
    fn driver_runs_and_reports() {
        let db = Arc::new(
            Database::create(Arc::new(MemFs::new()), DbProfile::postgres_small()).unwrap(),
        );
        let mut loader = Tpcc::new(1, 11, TpccScale::tiny());
        loader.create_schema(&db).unwrap();
        loader.load(&db).unwrap();

        let report = run_tpcc(&db, 1, 3, Duration::from_millis(300), 11, TpccScale::tiny());
        assert!(report.total_txns > 10, "{report:?}");
        assert_eq!(report.errors, 0);
        assert!(report.tpm_total() > 0.0);
        assert!(report.tpm_c() > 0.0);
        assert!(report.tpm_c() < report.tpm_total());
        // Mix sanity: newOrder should be near 45 % of the total.
        let frac = report.new_order_txns as f64 / report.total_txns as f64;
        assert!((0.25..0.65).contains(&frac), "newOrder fraction {frac}");
    }

    #[test]
    fn report_math() {
        let report = RunReport {
            total_txns: 600,
            new_order_txns: 270,
            duration: Duration::from_secs(60),
            errors: 0,
        };
        assert!((report.tpm_total() - 600.0).abs() < 1e-6);
        assert!((report.tpm_c() - 270.0).abs() < 1e-6);
    }
}
