//! Cloud price sheets used by the paper (May 2017).

/// Amazon S3 (standard storage) prices, $.
///
/// "In May 2017, Amazon S3 standard storage costs are $0.023 per
/// GB/month, $0.005 per 1000 file uploads, and free upload bandwidth and
/// delete operations" (§3). Downloads (relevant for recovery, §7.3) are
/// "almost 4× higher than the cost of storing it for a month".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct S3Pricing {
    /// Storage, $ per GB-month.
    pub storage_gb_month: f64,
    /// PUT/LIST requests, $ per single operation.
    pub put_op: f64,
    /// GET requests, $ per single operation.
    pub get_op: f64,
    /// Egress (download) bandwidth, $ per GB.
    pub egress_gb: f64,
}

impl S3Pricing {
    /// The May-2017 price sheet the paper uses.
    pub fn may_2017() -> Self {
        S3Pricing {
            storage_gb_month: 0.023,
            put_op: 0.005 / 1000.0,
            get_op: 0.0004 / 1000.0,
            egress_gb: 0.09,
        }
    }
}

impl Default for S3Pricing {
    fn default() -> Self {
        Self::may_2017()
    }
}

/// EC2-based Pilot-Light DR prices (the Table 2 comparison).
///
/// The paper's alternative keeps a warm database replica in a cloud VM:
/// instance + VPN connection + provisioned-IOPS EBS volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ec2Pricing {
    /// m3.medium (Linux), $ per month — "the cheapest EC2 VM indicated
    /// for small to mid-size databases", $48.24/month in May 2017 (§3).
    pub m3_medium_month: f64,
    /// m3.large (Linux), $ per month.
    pub m3_large_month: f64,
    /// VPN connection, $ per month.
    pub vpn_month: f64,
    /// Provisioned-IOPS EBS, $ per IOPS-month.
    pub ebs_iops_month: f64,
    /// EBS storage, $ per GB-month.
    pub ebs_gb_month: f64,
}

impl Ec2Pricing {
    /// The May-2017 price sheet.
    pub fn may_2017() -> Self {
        Ec2Pricing {
            m3_medium_month: 48.24,
            m3_large_month: 96.48,
            vpn_month: 36.0,
            ebs_iops_month: 0.065,
            ebs_gb_month: 0.125,
        }
    }

    /// Table 2's "m3.medium + VPN + EBS 100IOS" laboratory setup.
    pub fn laboratory_vm_month(&self, db_size_gb: f64) -> f64 {
        self.m3_medium_month
            + self.vpn_month
            + 100.0 * self.ebs_iops_month
            + db_size_gb * self.ebs_gb_month
    }

    /// Table 2's "m3.large + VPN + EBS 500IOS" hospital setup.
    pub fn hospital_vm_month(&self, db_size_gb: f64) -> f64 {
        self.m3_large_month
            + self.vpn_month
            + 500.0 * self.ebs_iops_month
            + db_size_gb * self.ebs_gb_month
    }
}

impl Default for Ec2Pricing {
    fn default() -> Self {
        Self::may_2017()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s3_constants_match_paper() {
        let p = S3Pricing::may_2017();
        assert!((p.storage_gb_month - 0.023).abs() < 1e-12);
        assert!((p.put_op - 5e-6).abs() < 1e-12);
        // §7.3: downloading one GB ≈ 4× the cost of storing it a month.
        assert!((p.egress_gb / p.storage_gb_month - 3.91).abs() < 0.2);
    }

    #[test]
    fn ec2_laboratory_setup_near_paper_value() {
        // Table 2: "m3.medium + VPN + EBS 100IOS = $93.4" for 10 GB.
        let total = Ec2Pricing::may_2017().laboratory_vm_month(10.0);
        assert!((total - 93.4).abs() < 3.0, "got {total}");
    }

    #[test]
    fn ec2_hospital_setup_near_paper_value() {
        // Table 2: "m3.large + VPN + EBS 500IOS = $291.5" for 1 TB.
        let total = Ec2Pricing::may_2017().hospital_vm_month(1000.0);
        assert!((total - 291.5).abs() < 10.0, "got {total}");
    }

    #[test]
    fn m3_medium_monthly_rate_from_paper() {
        // "the cheapest VM indicated for databases in Amazon EC2
        // (m3.medium with Linux) costs $48.24/month in May 2017" (§7.2).
        assert!((Ec2Pricing::may_2017().m3_medium_month - 48.24).abs() < 1e-9);
    }
}
