use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::{ObjectStore, StoreError};

/// One recorded PUT: payload size and observed end-to-end latency.
///
/// The per-configuration averages of these samples are exactly what the
/// paper's Table 3 reports ("Num. PUTs", "Object Size", "PUT latency").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PutSample {
    /// Uploaded object size in bytes.
    pub bytes: u64,
    /// Wall-clock latency of the PUT (includes simulated WAN time when
    /// stacked over a [`crate::LatencyStore`]).
    pub latency: Duration,
}

/// A snapshot of accumulated cloud usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CloudUsage {
    /// Successful PUT operations.
    pub puts: u64,
    /// Successful GET operations.
    pub gets: u64,
    /// Successful DELETE operations.
    pub deletes: u64,
    /// Successful LIST operations.
    pub lists: u64,
    /// Failed operations of any kind.
    pub failures: u64,
    /// Total bytes uploaded by successful PUTs.
    pub bytes_uploaded: u64,
    /// Total bytes downloaded by successful GETs.
    pub bytes_downloaded: u64,
    /// Bytes currently stored (sum of live object sizes).
    pub stored_bytes: u64,
    /// High-water mark of `stored_bytes`.
    pub peak_stored_bytes: u64,
}

impl CloudUsage {
    /// Average uploaded object size, or 0 when nothing was uploaded.
    pub fn avg_put_size(&self) -> u64 {
        self.bytes_uploaded.checked_div(self.puts).unwrap_or(0)
    }
}

/// An [`ObjectStore`] decorator that meters every operation.
///
/// Tracks operation counts, transferred bytes, live stored bytes (it
/// maintains its own name → size map so it works over any backend), and
/// a full list of [`PutSample`]s for latency statistics.
///
/// ```rust
/// use ginja_cloud::{MemStore, MeteredStore, ObjectStore};
///
/// # fn main() -> Result<(), ginja_cloud::StoreError> {
/// let store = MeteredStore::new(MemStore::new());
/// store.put("a", &[0u8; 100])?;
/// store.put("b", &[0u8; 50])?;
/// store.delete("b")?;
/// let usage = store.usage();
/// assert_eq!((usage.puts, usage.deletes), (2, 1));
/// assert_eq!(usage.stored_bytes, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MeteredStore<S> {
    inner: S,
    puts: AtomicU64,
    gets: AtomicU64,
    deletes: AtomicU64,
    lists: AtomicU64,
    failures: AtomicU64,
    bytes_uploaded: AtomicU64,
    bytes_downloaded: AtomicU64,
    stored_bytes: AtomicU64,
    peak_stored_bytes: AtomicU64,
    sizes: Mutex<HashMap<String, u64>>,
    put_samples: Mutex<Vec<PutSample>>,
}

impl<S: ObjectStore> MeteredStore<S> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: S) -> Self {
        MeteredStore {
            inner,
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            lists: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            bytes_uploaded: AtomicU64::new(0),
            bytes_downloaded: AtomicU64::new(0),
            stored_bytes: AtomicU64::new(0),
            peak_stored_bytes: AtomicU64::new(0),
            sizes: Mutex::new(HashMap::new()),
            put_samples: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Current usage snapshot.
    pub fn usage(&self) -> CloudUsage {
        CloudUsage {
            puts: self.puts.load(Ordering::SeqCst),
            gets: self.gets.load(Ordering::SeqCst),
            deletes: self.deletes.load(Ordering::SeqCst),
            lists: self.lists.load(Ordering::SeqCst),
            failures: self.failures.load(Ordering::SeqCst),
            bytes_uploaded: self.bytes_uploaded.load(Ordering::SeqCst),
            bytes_downloaded: self.bytes_downloaded.load(Ordering::SeqCst),
            stored_bytes: self.stored_bytes.load(Ordering::SeqCst),
            peak_stored_bytes: self.peak_stored_bytes.load(Ordering::SeqCst),
        }
    }

    /// All PUT samples recorded so far (cloned).
    pub fn put_samples(&self) -> Vec<PutSample> {
        self.put_samples.lock().clone()
    }

    /// Mean PUT latency, or zero when no PUT succeeded.
    pub fn mean_put_latency(&self) -> Duration {
        let samples = self.put_samples.lock();
        if samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = samples.iter().map(|s| s.latency).sum();
        total / samples.len() as u32
    }

    /// Resets all counters and samples (stored-size tracking is kept, as
    /// the objects are still in the backend).
    pub fn reset_counters(&self) {
        self.puts.store(0, Ordering::SeqCst);
        self.gets.store(0, Ordering::SeqCst);
        self.deletes.store(0, Ordering::SeqCst);
        self.lists.store(0, Ordering::SeqCst);
        self.failures.store(0, Ordering::SeqCst);
        self.bytes_uploaded.store(0, Ordering::SeqCst);
        self.bytes_downloaded.store(0, Ordering::SeqCst);
        self.put_samples.lock().clear();
        let stored = self.stored_bytes.load(Ordering::SeqCst);
        self.peak_stored_bytes.store(stored, Ordering::SeqCst);
    }

    fn note_failure(&self) {
        self.failures.fetch_add(1, Ordering::SeqCst);
    }

    fn update_stored(&self, name: &str, new_size: Option<u64>) {
        let mut sizes = self.sizes.lock();
        let old = match new_size {
            Some(size) => sizes.insert(name.to_string(), size),
            None => sizes.remove(name),
        };
        let old = old.unwrap_or(0);
        let new = new_size.unwrap_or(0);
        let stored = if new >= old {
            self.stored_bytes.fetch_add(new - old, Ordering::SeqCst) + (new - old)
        } else {
            self.stored_bytes.fetch_sub(old - new, Ordering::SeqCst) - (old - new)
        };
        self.peak_stored_bytes.fetch_max(stored, Ordering::SeqCst);
    }
}

impl<S: ObjectStore> ObjectStore for MeteredStore<S> {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let start = Instant::now();
        match self.inner.put(name, data) {
            Ok(()) => {
                let latency = start.elapsed();
                self.puts.fetch_add(1, Ordering::SeqCst);
                self.bytes_uploaded
                    .fetch_add(data.len() as u64, Ordering::SeqCst);
                self.update_stored(name, Some(data.len() as u64));
                self.put_samples.lock().push(PutSample {
                    bytes: data.len() as u64,
                    latency,
                });
                Ok(())
            }
            Err(e) => {
                self.note_failure();
                Err(e)
            }
        }
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        match self.inner.get(name) {
            Ok(data) => {
                self.gets.fetch_add(1, Ordering::SeqCst);
                self.bytes_downloaded
                    .fetch_add(data.len() as u64, Ordering::SeqCst);
                Ok(data)
            }
            Err(e) => {
                self.note_failure();
                Err(e)
            }
        }
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        match self.inner.delete(name) {
            Ok(()) => {
                self.deletes.fetch_add(1, Ordering::SeqCst);
                self.update_stored(name, None);
                Ok(())
            }
            Err(e) => {
                self.note_failure();
                Err(e)
            }
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        match self.inner.list(prefix) {
            Ok(names) => {
                self.lists.fetch_add(1, Ordering::SeqCst);
                Ok(names)
            }
            Err(e) => {
                self.note_failure();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultStore, MemStore, OpKind};
    use std::sync::Arc;

    #[test]
    fn counts_successful_ops() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 100]).unwrap();
        store.put("b", &[0u8; 50]).unwrap();
        store.get("a").unwrap();
        store.list("").unwrap();
        store.delete("b").unwrap();
        let u = store.usage();
        assert_eq!(u.puts, 2);
        assert_eq!(u.gets, 1);
        assert_eq!(u.lists, 1);
        assert_eq!(u.deletes, 1);
        assert_eq!(u.failures, 0);
        assert_eq!(u.bytes_uploaded, 150);
        assert_eq!(u.bytes_downloaded, 100);
    }

    #[test]
    fn stored_bytes_follow_puts_and_deletes() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 100]).unwrap();
        assert_eq!(store.usage().stored_bytes, 100);
        store.put("a", &[0u8; 40]).unwrap(); // overwrite shrinks
        assert_eq!(store.usage().stored_bytes, 40);
        store.put("b", &[0u8; 60]).unwrap();
        assert_eq!(store.usage().stored_bytes, 100);
        store.delete("a").unwrap();
        assert_eq!(store.usage().stored_bytes, 60);
        assert_eq!(store.usage().peak_stored_bytes, 100);
    }

    #[test]
    fn failures_counted_not_metered() {
        let plan = Arc::new(FaultPlan::new());
        let store = MeteredStore::new(FaultStore::new(MemStore::new(), plan.clone()));
        plan.fail_next(OpKind::Put, 1);
        assert!(store.put("a", &[0u8; 10]).is_err());
        let u = store.usage();
        assert_eq!(u.puts, 0);
        assert_eq!(u.failures, 1);
        assert_eq!(u.bytes_uploaded, 0);
        assert_eq!(u.stored_bytes, 0);
    }

    #[test]
    fn put_samples_recorded() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 123]).unwrap();
        store.put("b", &[0u8; 456]).unwrap();
        let samples = store.put_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].bytes, 123);
        assert_eq!(samples[1].bytes, 456);
        assert_eq!(store.usage().avg_put_size(), (123 + 456) / 2);
    }

    #[test]
    fn mean_latency_zero_when_empty() {
        let store = MeteredStore::new(MemStore::new());
        assert_eq!(store.mean_put_latency(), Duration::ZERO);
    }

    #[test]
    fn reset_keeps_stored_bytes() {
        let store = MeteredStore::new(MemStore::new());
        store.put("a", &[0u8; 100]).unwrap();
        store.reset_counters();
        let u = store.usage();
        assert_eq!(u.puts, 0);
        assert_eq!(u.stored_bytes, 100);
        assert_eq!(u.peak_stored_bytes, 100);
    }

    #[test]
    fn delete_missing_does_not_underflow() {
        let store = MeteredStore::new(MemStore::new());
        store.delete("never-existed").unwrap();
        assert_eq!(store.usage().stored_bytes, 0);
    }

    #[test]
    fn concurrent_metering_consistent() {
        let store = Arc::new(MeteredStore::new(MemStore::new()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    store.put(&format!("o-{t}-{i}"), &[1u8; 10]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let u = store.usage();
        assert_eq!(u.puts, 200);
        assert_eq!(u.bytes_uploaded, 2000);
        assert_eq!(u.stored_bytes, 2000);
    }
}
