//! Fixed-rate update streams for the §7 cost experiments ("W –
//! updates per minute").

use ginja_db::{Database, DbError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic stream of single-row updates at a notional rate.
///
/// The cost model is closed-form, so this generator is used to *measure*
/// cloud usage for a given number of updates rather than to wait real
/// minutes: [`UpdateWorkload::apply`] executes `n` updates back-to-back
/// and the caller attributes them to whatever simulated time span the
/// experiment calls for.
#[derive(Debug)]
pub struct UpdateWorkload {
    table: u32,
    key_space: u64,
    record_len: usize,
    rng: StdRng,
    applied: u64,
}

impl UpdateWorkload {
    /// A stream updating `key_space` hot rows of `table` with
    /// `record_len`-byte payloads.
    pub fn new(table: u32, key_space: u64, record_len: usize, seed: u64) -> Self {
        assert!(key_space > 0, "key space must be positive");
        UpdateWorkload {
            table,
            key_space,
            record_len,
            rng: StdRng::seed_from_u64(seed),
            applied: 0,
        }
    }

    /// Number of updates applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Applies `n` updates.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`].
    pub fn apply(&mut self, db: &Database, n: u64) -> Result<(), DbError> {
        for _ in 0..n {
            let key = self.rng.gen_range(0..self.key_space);
            let value = self.next_record(key);
            db.put(self.table, key, value)?;
            self.applied += 1;
        }
        Ok(())
    }

    fn next_record(&mut self, key: u64) -> Vec<u8> {
        let mut row = format!("upd:{key:010}:{:010}|", self.applied).into_bytes();
        while row.len() < self.record_len {
            row.push(self.rng.gen_range(b'a'..=b'z'));
            row.extend_from_slice(b"_field_");
        }
        row.truncate(self.record_len);
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_db::DbProfile;
    use ginja_vfs::MemFs;
    use std::sync::Arc;

    fn db() -> Database {
        let db = Database::create(Arc::new(MemFs::new()), DbProfile::postgres_small()).unwrap();
        db.create_table(1, 128).unwrap();
        db
    }

    #[test]
    fn applies_exactly_n() {
        let db = db();
        let mut w = UpdateWorkload::new(1, 50, 80, 9);
        w.apply(&db, 200).unwrap();
        assert_eq!(w.applied(), 200);
        assert_eq!(db.stats().commits, 200);
    }

    #[test]
    fn records_have_requested_size() {
        let db = db();
        let mut w = UpdateWorkload::new(1, 10, 100, 9);
        w.apply(&db, 20).unwrap();
        let mut found = 0;
        for key in 0..10 {
            if let Some(v) = db.get(1, key).unwrap() {
                assert_eq!(v.len(), 100);
                found += 1;
            }
        }
        assert!(found > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let db_a = db();
        let db_b = db();
        let mut a = UpdateWorkload::new(1, 10, 60, 4);
        let mut b = UpdateWorkload::new(1, 10, 60, 4);
        a.apply(&db_a, 50).unwrap();
        b.apply(&db_b, 50).unwrap();
        for key in 0..10 {
            assert_eq!(db_a.get(1, key).unwrap(), db_b.get(1, key).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn zero_key_space_rejected() {
        let _ = UpdateWorkload::new(1, 0, 10, 0);
    }
}
