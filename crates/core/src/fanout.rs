//! A bounded fan-out executor for the seal/PUT/GET hot paths.
//!
//! The uploader pool in `ginja.rs` already established the discipline this
//! module generalises: a fixed number of worker threads drain a queue of
//! independent jobs while a single consumer restores order. `FanoutExecutor`
//! packages that shape so the checkpointer, recovery, reboot resync, the
//! archiver and the sentinel repair path can all share it instead of each
//! growing a private thread pool.
//!
//! Two guarantees matter to every caller:
//!
//! * **In-order delivery.** `run_ordered` hands results to the consumer in
//!   exactly the input order, no matter how workers interleave. Completed
//!   out-of-order results park in a reorder buffer until their turn. This is
//!   what lets the checkpointer register a checkpoint in the cloud view only
//!   after *all* of its parts are durable, and lets recovery apply WAL
//!   objects in timestamp order while fetching them concurrently.
//! * **Abort on first error.** The first failure (from a worker or from the
//!   consumer) flips an abort flag; workers stop claiming new jobs, in-flight
//!   jobs finish and are discarded, and the earliest error in input order is
//!   returned. Callers therefore never observe a "later" success after a
//!   reported failure.
//!
//! Workers are spawned per wave with `std::thread::scope`, so job closures
//! may borrow non-`'static` state (`&dyn ObjectStore`, `&Codec`, local
//! buffers). A wave with one job — or an executor of width 1 — runs inline
//! on the caller's thread with zero spawns, keeping the serial path exactly
//! as cheap as it was before this module existed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Shared, bounded fan-out executor. Cheap to keep around for the lifetime
/// of a pipeline: it holds no threads while idle, only the configured width
/// and a pair of usage counters.
#[derive(Debug)]
pub struct FanoutExecutor {
    width: usize,
    waves: AtomicU64,
    jobs: AtomicU64,
}

impl FanoutExecutor {
    /// An executor that runs at most `width` jobs concurrently. A width of
    /// zero is clamped to one (serial).
    pub fn new(width: usize) -> Self {
        Self {
            width: width.max(1),
            waves: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    /// Maximum number of jobs in flight at once.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of waves (calls to `run_ordered`/`run_collect`) executed.
    pub fn waves(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Total jobs executed across all waves.
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Run `jobs` concurrently (bounded by `width`), delivering each result
    /// to `consume` strictly in input order. Returns the first error in
    /// input order, from either `work` or `consume`; on error no further
    /// results are delivered.
    pub fn run_ordered<T, R, E>(
        &self,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
        mut consume: impl FnMut(usize, R) -> Result<(), E>,
    ) -> Result<(), E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        let n = jobs.len();
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(n as u64, Ordering::Relaxed);

        // Serial fast path: nothing to overlap, so skip thread setup and run
        // on the caller's thread. Semantics are identical by construction.
        if self.width == 1 || n <= 1 {
            for (idx, job) in jobs.into_iter().enumerate() {
                consume(idx, work(idx, job)?)?;
            }
            return Ok(());
        }

        let slots: Vec<parking_lot::Mutex<Option<T>>> = jobs
            .into_iter()
            .map(|j| parking_lot::Mutex::new(Some(j)))
            .collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, Result<R, E>)>();
        let workers = self.width.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let slots = &slots;
                let next = &next;
                let abort = &abort;
                let work = &work;
                scope.spawn(move || {
                    loop {
                        if abort.load(Ordering::Acquire) {
                            return;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= slots.len() {
                            return;
                        }
                        // The claim above is the only writer of this slot,
                        // so the job is always present.
                        let job = slots[idx].lock().take().expect("job claimed twice");
                        let result = work(idx, job);
                        if result.is_err() {
                            abort.store(true, Ordering::Release);
                        }
                        if tx.send((idx, result)).is_err() {
                            // Consumer bailed; nothing left to report to.
                            return;
                        }
                    }
                });
            }
            drop(tx);

            // Reorder buffer: claimed indices always form a contiguous
            // prefix [0, k), and every claimed index sends exactly one
            // message, so waiting for `expect` either yields it or the
            // channel closes because workers aborted before claiming it.
            let mut parked: BTreeMap<usize, Result<R, E>> = BTreeMap::new();
            let mut expect = 0usize;
            let mut first_err: Option<(usize, E)> = None;
            while expect < n {
                let (idx, result) = match parked.remove(&expect) {
                    Some(r) => (expect, r),
                    None => match rx.recv() {
                        Ok(msg) => msg,
                        // Channel closed: workers aborted before claiming
                        // `expect`. The error that caused the abort is
                        // already parked or recorded.
                        Err(_) => break,
                    },
                };
                if idx != expect {
                    parked.insert(idx, result);
                    continue;
                }
                expect += 1;
                match result {
                    Ok(value) => {
                        if first_err.is_some() {
                            continue; // discard successes after a failure
                        }
                        if let Err(e) = consume(idx, value) {
                            abort.store(true, Ordering::Release);
                            first_err = Some((idx, e));
                        }
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some((idx, e));
                        }
                    }
                }
            }
            // Pick the earliest error in input order: a worker error at a
            // lower index may still be parked if the consumer failed first.
            drop(rx);
            for (idx, result) in parked {
                if let Err(e) = result {
                    match &first_err {
                        Some((at, _)) if *at <= idx => {}
                        _ => first_err = Some((idx, e)),
                    }
                }
            }
            match first_err {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        })
    }

    /// Run `jobs` concurrently and collect all results in input order.
    /// Convenience wrapper over [`run_ordered`](Self::run_ordered).
    pub fn run_collect<T, R, E>(
        &self,
        jobs: Vec<T>,
        work: impl Fn(usize, T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        let mut out = Vec::with_capacity(jobs.len());
        self.run_ordered(jobs, work, |_, r| {
            out.push(r);
            Ok(())
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn collects_in_order_despite_reversed_completion() {
        let exec = FanoutExecutor::new(8);
        // Later jobs finish sooner: delivery must still be 0..n.
        let jobs: Vec<u64> = (0..16).collect();
        let out = exec
            .run_collect(jobs, |idx, v| {
                std::thread::sleep(Duration::from_millis(20u64.saturating_sub(idx as u64)));
                Ok::<u64, ()>(v * 10)
            })
            .unwrap();
        assert_eq!(out, (0..16).map(|v| v * 10).collect::<Vec<u64>>());
        assert_eq!(exec.waves(), 1);
        assert_eq!(exec.jobs(), 16);
    }

    #[test]
    fn consume_sees_strictly_increasing_indices() {
        let exec = FanoutExecutor::new(4);
        let mut seen = Vec::new();
        exec.run_ordered(
            (0..32).collect::<Vec<u32>>(),
            |_, v| Ok::<u32, ()>(v),
            |idx, v| {
                assert_eq!(idx as u32, v);
                seen.push(idx);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, (0..32).collect::<Vec<usize>>());
    }

    #[test]
    fn first_error_in_input_order_wins() {
        let exec = FanoutExecutor::new(8);
        let err = exec
            .run_collect((0..16).collect::<Vec<u32>>(), |idx, v| {
                if idx == 3 || idx == 11 {
                    // Make the later failure land first.
                    if idx == 3 {
                        std::thread::sleep(Duration::from_millis(30));
                    }
                    Err(format!("job {v} failed"))
                } else {
                    Ok(v)
                }
            })
            .unwrap_err();
        assert_eq!(err, "job 3 failed");
    }

    #[test]
    fn error_stops_claiming_new_jobs() {
        let exec = FanoutExecutor::new(2);
        let started = AtomicUsize::new(0);
        let started_ref = &started;
        let result = exec.run_collect((0..1000).collect::<Vec<u32>>(), |idx, _| {
            started_ref.fetch_add(1, Ordering::Relaxed);
            if idx == 0 {
                Err("boom")
            } else {
                std::thread::sleep(Duration::from_millis(1));
                Ok(idx)
            }
        });
        assert_eq!(result.unwrap_err(), "boom");
        // With width 2 and an instant failure at idx 0, almost all of the
        // 1000 jobs must never start. Allow generous slack for scheduling.
        assert!(started.load(Ordering::Relaxed) < 100);
    }

    #[test]
    fn consumer_error_aborts_and_is_returned() {
        let exec = FanoutExecutor::new(4);
        let err = exec
            .run_ordered(
                (0..64).collect::<Vec<u32>>(),
                |_, v| Ok::<u32, &str>(v),
                |idx, _| if idx == 5 { Err("consumer") } else { Ok(()) },
            )
            .unwrap_err();
        assert_eq!(err, "consumer");
    }

    #[test]
    fn width_one_and_singleton_waves_run_inline() {
        let serial = FanoutExecutor::new(1);
        let out = serial
            .run_collect(vec![1, 2, 3], |_, v| Ok::<i32, ()>(v + 1))
            .unwrap();
        assert_eq!(out, vec![2, 3, 4]);

        let wide = FanoutExecutor::new(8);
        let out = wide.run_collect(vec![7], |_, v| Ok::<i32, ()>(v)).unwrap();
        assert_eq!(out, vec![7]);
        assert!(wide
            .run_collect(Vec::new(), |_, v: u8| Ok::<u8, ()>(v))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn zero_width_is_clamped_to_serial() {
        let exec = FanoutExecutor::new(0);
        assert_eq!(exec.width(), 1);
        let out = exec.run_collect(vec![5u8], |_, v| Ok::<u8, ()>(v)).unwrap();
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn borrows_non_static_state() {
        // The whole point of scoped threads: closures may borrow locals.
        let data = [10u64, 20, 30, 40];
        let exec = FanoutExecutor::new(4);
        let out = exec
            .run_collect((0..data.len()).collect::<Vec<usize>>(), |_, i| {
                Ok::<u64, ()>(data[i] * 2)
            })
            .unwrap();
        assert_eq!(out, vec![20, 40, 60, 80]);
    }
}
