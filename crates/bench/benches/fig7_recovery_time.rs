//! Figure 7: recovery times of Ginja for different database sizes
//! (1, 5, 10 TPC-C warehouses), recovering to an on-premises server
//! (WAN download from S3) vs. an EC2 VM in the same region as the data.
//!
//! The paper's observations: recovery time grows with database size,
//! and recovering inside the cloud region is markedly faster.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_bench::rig::{template, ProtectedRig, RigOptions};
use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, time_scale, to_sim_duration};
use ginja_cloud::{LatencyModel, LatencyStore, ObjectStore};
use ginja_core::{recover_into, GinjaConfig};
use ginja_db::{Database, ProfileKind};
use ginja_vfs::MemFs;
use ginja_workload::TpccScale;

fn config() -> GinjaConfig {
    let scale = time_scale();
    GinjaConfig::builder()
        .batch(100)
        .safety(1000)
        .batch_timeout(Duration::from_secs_f64(5.0 * scale))
        .safety_timeout(Duration::from_secs_f64(30.0 * scale))
        .uploaders(5)
        .build()
        .expect("valid config")
}

fn main() {
    let scale = time_scale();
    println!("time scale: {scale}");
    println!("== Figure 7: recovery time vs. database size (PostgreSQL, TPC-C) ==\n");

    let mut t = Table::new(&[
        "warehouses",
        "cloud data MB",
        "on-premises (sim s)",
        "EC2 same-region (sim s)",
        "speedup",
        "EC2 fanout=8 (sim s)",
        "recovered rows ok",
    ]);
    let mut previous_onprem = 0.0f64;
    for warehouses in [1u64, 5, 10] {
        // Build and run a protected database to populate the cloud.
        let template_fs = template(ProfileKind::Postgres, warehouses, TpccScale::bench(), 0xF17);
        let mut options = RigOptions::postgres(config());
        options.warehouses = warehouses;
        options.seed = 0xF17;
        let rig = ProtectedRig::build(&template_fs, options);
        let _report = rig.run(run_wall_duration());
        // Objects as they stand after the run, beneath metering/latency.
        let raw = rig.snapshot_objects();
        let (_stats, usage) = rig.finish();
        let cloud_mb = usage.stored_bytes as f64 / 1e6;

        // Recover from the same (now latency-remodelled) objects:
        // WAN and intra-region serially (the paper's two bars), then
        // intra-region again with the recovery fan-out wide open.
        let mut times = Vec::new();
        for (latency, fanout) in [
            (LatencyModel::s3_wan(), 1usize),
            (LatencyModel::s3_intra_region(), 1),
            (LatencyModel::s3_intra_region(), 8),
        ] {
            let snapshot = copy_store(&raw);
            let cloud = LatencyStore::new(snapshot, latency.scaled(scale));
            let target = Arc::new(MemFs::new());
            let recover_config = GinjaConfig::builder()
                .recovery_fanout(fanout)
                .build()
                .expect("valid recovery config");
            let start = Instant::now();
            recover_into(target.as_ref(), &cloud, &recover_config).expect("recovery");
            times.push(to_sim_duration(start.elapsed()).as_secs_f64());

            // Validate only once (WAN pass): the DBMS must restart.
            if times.len() == 1 {
                let db = Database::open(
                    target,
                    ginja_bench::rig::layout_profile(ProfileKind::Postgres),
                )
                .expect("recovered db opens");
                assert!(db
                    .get(ginja_workload::tables::WAREHOUSE, 0)
                    .expect("warehouse row readable")
                    .is_some());
            }
        }

        let onprem = times[0];
        let ec2 = times[1];
        let ec2_fanout = times[2];
        t.row(&[
            warehouses.to_string(),
            fmt(cloud_mb, 1),
            fmt(onprem, 1),
            fmt(ec2, 1),
            format!("{:.1}x", onprem / ec2.max(1e-9)),
            fmt(ec2_fanout, 1),
            "yes".to_string(),
        ]);

        assert!(
            onprem >= previous_onprem * 0.8,
            "recovery time should grow with database size"
        );
        assert!(ec2 < onprem, "same-region recovery must be faster");
        // Backstop only: this bucket's bytes concentrate in a few large
        // dump parts whose decode is CPU-bound, so on a single-core runner
        // fan-out can come out modestly slower than serial (the sleeps of
        // the latency model end in a spin tail that contends). The real
        // >=2x acceptance runs in ablation_fanout on a GET-bound bucket.
        assert!(
            ec2_fanout <= ec2 * 1.5,
            "parallel recovery must not be pathologically slower than serial \
             ({ec2_fanout:.2} vs {ec2:.2})"
        );
        previous_onprem = onprem;
    }
    println!();
    t.print();
    println!(
        "\nshape check: recovery time grows with warehouses; EC2-local recovery is much \
         faster (paper: ~4 min vs ~1 min at 10 warehouses); recovery_fanout=8 cuts the \
         same-region time further (see ablation_fanout for the width sweep)"
    );
}

fn copy_store(src: &ginja_cloud::MemStore) -> ginja_cloud::MemStore {
    let dst = ginja_cloud::MemStore::new();
    for name in src.list("").expect("list") {
        dst.put(&name, &src.get(&name).expect("get")).expect("put");
    }
    dst
}
