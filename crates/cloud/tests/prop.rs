//! Property tests for the cloud backends: erasure-coding round-trips
//! over arbitrary data and loss patterns, and retry-layer liveness
//! under arbitrary transient-fault rates.

use std::sync::Arc;
use std::time::Duration;

use ginja_cloud::{
    erasure_decode, erasure_encode, ErasureStore, FaultPlan, FaultStore, MemStore, ObjectStore,
    OpKind, ResilientStore, RetryConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn erasure_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        k in 1usize..6,
        extra in 0usize..4,
    ) {
        let n = k + extra;
        let shards = erasure_encode(&data, k, n);
        prop_assert_eq!(erasure_decode(&shards).unwrap(), data);
    }

    #[test]
    fn erasure_survives_any_allowed_loss(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        k in 1usize..5,
        extra in 1usize..4,
        drop_seed in any::<u64>(),
    ) {
        let n = k + extra;
        let mut shards = erasure_encode(&data, k, n);
        // Drop `extra` pseudo-random shards: exactly k remain.
        let mut seed = drop_seed;
        for _ in 0..extra {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let at = (seed >> 33) as usize % shards.len();
            shards.remove(at);
        }
        prop_assert_eq!(erasure_decode(&shards).unwrap(), data);
    }

    #[test]
    fn erasure_decode_never_panics_on_garbage(
        garbage in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..6,
        ),
    ) {
        let _ = erasure_decode(&garbage);
    }

    #[test]
    fn erasure_store_roundtrip(
        objects in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..512)),
            1..8,
        ),
    ) {
        let backends: Vec<Arc<dyn ObjectStore>> =
            (0..4).map(|_| Arc::new(MemStore::new()) as Arc<dyn ObjectStore>).collect();
        let store = ErasureStore::new(backends, 2);
        for (name, data) in &objects {
            store.put(name, data).unwrap();
        }
        // Later writes win for duplicate names, like any object store.
        let mut expected = std::collections::BTreeMap::new();
        for (name, data) in &objects {
            expected.insert(name.clone(), data.clone());
        }
        for (name, data) in &expected {
            prop_assert_eq!(&store.get(name).unwrap(), data);
        }
        prop_assert_eq!(
            store.list("").unwrap(),
            expected.keys().cloned().collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Liveness: with any transient-fault rate p < 1, a `ResilientStore`
    /// with enough attempts completes every `put` — faults are absorbed
    /// by the retry layer, never surfaced, and never lose data. This is
    /// the property Ginja's Safety guarantee leans on (uploads
    /// eventually complete, so the DBMS blocks rather than loses
    /// updates).
    #[test]
    fn resilient_store_eventually_completes_every_put(
        p in 0.0f64..0.85,
        seed in any::<u64>(),
        objects in proptest::collection::vec(
            ("[a-z]{1,10}", proptest::collection::vec(any::<u8>(), 0..64)),
            1..16,
        ),
    ) {
        let plan = Arc::new(FaultPlan::new());
        plan.fail_randomly(OpKind::Put, p, seed);
        let store = ResilientStore::new(
            Arc::new(FaultStore::new(MemStore::new(), plan.clone())),
            RetryConfig {
                // 0.85^300 ~ 1e-21: exhausting the budget is not a
                // plausible source of flakes.
                max_attempts: 300,
                base_delay: Duration::from_micros(5),
                max_delay: Duration::from_micros(100),
                jitter: true,
                breaker_threshold: 4,
                breaker_cooldown: Duration::from_micros(200),
                breaker_probes: 1,
                hedge: false,
                hedge_percentile: 0.95,
            },
        );
        let mut expected = std::collections::BTreeMap::new();
        for (name, data) in &objects {
            // An open breaker fails fast (non-retryable) and leaves
            // pacing to the caller, so mirror ginja-core's outer safety
            // loop: retry until durable, sleeping past the cooldown so
            // the breaker can half-open and probe.
            let mut tries = 0u32;
            loop {
                match store.put(name, data) {
                    Ok(()) => break,
                    Err(_) => {
                        tries += 1;
                        prop_assert!(tries < 1_000, "put of {name} never completed");
                        std::thread::sleep(Duration::from_micros(250));
                    }
                }
            }
            expected.insert(name.clone(), data.clone());
        }
        for (name, data) in &expected {
            prop_assert_eq!(&store.get(name).unwrap(), data);
        }
        if p > 0.0 && plan.injected_count() > 0 {
            // Every injected fault that hit a put was retried away.
            prop_assert!(store.snapshot().retries > 0);
        }
    }
}
