use std::time::Duration;

use ginja_cloud::RetryConfig;
use ginja_codec::CodecConfig;
use ginja_cost::BudgetConfig;

use crate::GinjaError;

/// Point-in-time-recovery retention (§5.4): instead of deleting
/// superseded dump chains at garbage-collection time, keep the most
/// recent `keep_snapshots` chains so the database can be restored to an
/// earlier state (protection against operator mistakes and ransomware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PitrConfig {
    /// Number of superseded dump chains to retain (in addition to the
    /// live chain). Zero is equivalent to disabling PITR.
    pub keep_snapshots: usize,
}

/// Configuration of the DR sentinel — the background subsystem that
/// continuously audits the cloud state behind a live deployment
/// (scrubbing), rehearses recovery (measuring achieved RTO/RPO), and
/// repairs anomalies it can heal from local state.
///
/// A DR system whose backups can silently rot is worse than no DR at
/// all: nothing in the paper's algorithms ever re-checks that the
/// objects uploaded yesterday are still present and uncorrupted today.
/// The sentinel closes that gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelConfig {
    /// How often the scrubber audits the bucket (list + classify).
    pub scrub_interval: Duration,
    /// Number of object payloads MAC-verified per scrub cycle, walked
    /// round-robin so every object is eventually covered; 0 verifies
    /// every object every cycle (thorough, GET-heavy).
    pub scrub_sample: usize,
    /// How often a restore rehearsal runs (full recovery into a scratch
    /// file system, measuring achieved RTO and RPO).
    pub rehearsal_interval: Duration,
    /// Whether the repair loop re-uploads missing/corrupt objects from
    /// local state and re-dumps on unhealable DB objects.
    pub repair: bool,
    /// Whether confirmed orphans (objects in the bucket that the live
    /// view does not track — e.g. garbage left by a failed GC DELETE)
    /// are deleted. Orphans are quarantined for one full scrub cycle
    /// before deletion, so an in-flight upload can never be swept.
    pub delete_orphans: bool,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            scrub_interval: Duration::from_secs(60),
            scrub_sample: 64,
            rehearsal_interval: Duration::from_secs(3600),
            repair: true,
            delete_orphans: true,
        }
    }
}

impl SentinelConfig {
    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.scrub_interval.is_zero() {
            return Err("sentinel.scrub_interval must be nonzero".into());
        }
        if self.rehearsal_interval.is_zero() {
            return Err("sentinel.rehearsal_interval must be nonzero".into());
        }
        Ok(())
    }
}

/// Outage-endurance policy: the bounded upload ring, the spill-to-disk
/// overflow queue, and the Healthy → Degraded → Enduring → Shedding
/// state machine (see `DESIGN.md` §15).
///
/// The paper's pipeline implicitly assumes the cloud returns before
/// local state overwhelms the host. These knobs make a prolonged outage
/// a bounded, observable mode instead: RAM backlog is capped at
/// `ring_capacity` jobs, overflow goes to a durable on-disk queue up to
/// `spill_ceiling` bytes, and the state machine widens B/TB toward S
/// (and pauses dumps and scrub) while the outage lasts.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageConfig {
    /// In-memory upload ring capacity, in WAL objects. The old behavior
    /// (an unbounded channel) does not exist any more: beyond this many
    /// queued uploads, jobs spill to disk.
    pub ring_capacity: usize,
    /// Checkpoint queue capacity, in jobs. Beyond it, an incoming
    /// checkpoint *coalesces* into the newest queued one (checkpoint
    /// jobs are mergeable by construction), so checkpoint RAM stays
    /// bounded at `ckpt_capacity` jobs no matter how long the cloud is
    /// gone.
    pub ckpt_capacity: usize,
    /// Directory (on the DBMS's local file system) holding the spill
    /// queue's records.
    pub spill_dir: String,
    /// Spill-queue disk ceiling in payload bytes. At the ceiling the
    /// policy enters Shedding: the aggregator blocks on the ring (the
    /// DBMS saturates at S as usual) and `Exposure::fatal` turns on.
    pub spill_ceiling: u64,
    /// How long sustained pressure (breaker open) lasts before Degraded
    /// escalates to Enduring even without any spill.
    pub enduring_after: Duration,
    /// Outage-policy poll interval.
    pub poll_interval: Duration,
    /// Fair-share weight of the catch-up drain lane on a shared fan-out
    /// executor (fleet deployments): relative to tenant lane weights,
    /// so catch-up cannot starve live commit traffic.
    pub catchup_weight: f64,
}

impl Default for OutageConfig {
    fn default() -> Self {
        OutageConfig {
            ring_capacity: 256,
            ckpt_capacity: 8,
            spill_dir: ".ginja_spill".into(),
            spill_ceiling: 1 << 30,
            enduring_after: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            catchup_weight: 1.0,
        }
    }
}

impl OutageConfig {
    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ring_capacity == 0 {
            return Err("outage.ring_capacity must be at least 1".into());
        }
        if self.ckpt_capacity == 0 {
            return Err("outage.ckpt_capacity must be at least 1".into());
        }
        if self.spill_dir.is_empty() {
            return Err("outage.spill_dir must be nonempty".into());
        }
        if self.spill_ceiling == 0 {
            return Err("outage.spill_ceiling must be nonzero".into());
        }
        if self.poll_interval.is_zero() {
            return Err("outage.poll_interval must be nonzero".into());
        }
        if !self.catchup_weight.is_finite() || self.catchup_weight <= 0.0 {
            return Err("outage.catchup_weight must be positive and finite".into());
        }
        Ok(())
    }
}

/// Ingest fast-path tuning: how producers (DBMS threads blocked inside
/// an intercepted WAL write) wait for commit-queue credit, and whether
/// the aggregator may seal a partial batch early on their behalf (see
/// `DESIGN.md` §16).
///
/// These knobs shape *latency*, never *safety*: S and TS are enforced
/// by the queue's credit counters regardless of what is set here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// How many spin iterations a producer burns waiting for the acked
    /// watermark to advance before parking on a condvar. Spinning wins
    /// when acks arrive within microseconds (local-SSD-fast stores);
    /// parking wins when the cloud round-trip dominates. 0 parks
    /// immediately.
    pub spin: u32,
    /// Whether the aggregator seals a partial batch early when
    /// producers are parked against the Safety bound — trading B for
    /// latency inside the existing `KnobBounds` (S is never raised).
    pub adaptive_seal: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            spin: 64,
            adaptive_seal: true,
        }
    }
}

impl IngestConfig {
    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.spin > 1 << 20 {
            return Err("ingest.spin above 2^20 would burn a core per blocked producer".into());
        }
        Ok(())
    }
}

/// Configuration of the Ginja middleware.
///
/// The two headline parameters come straight from §5.1:
///
/// * **Batch** (`batch`/`batch_timeout` = B/TB) — a batch of updates is
///   sent to the cloud when `B` updates accumulate, or when `TB` elapses
///   since the last synchronization ended with updates pending.
/// * **Safety** (`safety`/`safety_timeout` = S/TS) — a WAL write blocks
///   the DBMS when more than `S` updates are unconfirmed, or when `TS`
///   has elapsed since the first unconfirmed update.
///
/// `B = S = 1` is synchronous replication (the paper's *No-Loss*
/// configuration); large `B`/`S` approach pure asynchrony.
#[derive(Debug, Clone)]
pub struct GinjaConfig {
    /// B — updates per cloud synchronization.
    pub batch: usize,
    /// TB — flush a partial batch after this long.
    pub batch_timeout: Duration,
    /// S — maximum unconfirmed updates before blocking the DBMS.
    pub safety: usize,
    /// TS — block the DBMS when the oldest unconfirmed update is older
    /// than this.
    pub safety_timeout: Duration,
    /// Number of parallel uploader threads (the paper found 5 best in
    /// its environment, §8).
    pub uploaders: usize,
    /// Fan-out width for bulk cloud transfers outside the steady-state
    /// uploader pool: recovery GETs, checkpoint/dump part uploads,
    /// reboot resync and sentinel repair waves. 1 means fully serial
    /// (the pre-fan-out behaviour); larger values cut RTO roughly by
    /// this factor on latency-bound stores.
    pub recovery_fanout: usize,
    /// Maximum size of a single cloud object; larger payloads are split
    /// (§5.2 footnote: 20 MB default, "to optimize the upload latency").
    pub max_object_size: usize,
    /// Upload a full dump when the DB objects in the cloud reach this
    /// multiple of the local database size (§5.3: 150 %).
    pub dump_threshold: f64,
    /// Object protection: compression / encryption / MAC settings.
    pub codec: CodecConfig,
    /// Optional point-in-time-recovery retention.
    pub pitr: Option<PitrConfig>,
    /// Whether batched writes are coalesced into contiguous ranges
    /// before upload (Algorithm 2's `aggregateUpdates`). Always leave
    /// enabled in production; the `false` setting exists for the
    /// ablation study quantifying what aggregation saves.
    pub coalesce: bool,
    /// Cloud-path resilience policy: retry with backoff, circuit
    /// breaking, and optional hedged `put`s. Every cloud operation
    /// Ginja issues (boot uploads, batch uploads, checkpoint merges,
    /// garbage collection) goes through this policy.
    pub retry: RetryConfig,
    /// DR sentinel policy: continuous scrubbing, restore rehearsal and
    /// self-healing repair (see `ginja-sentinel`). The middleware
    /// itself only carries the knobs; spawning the sentinel is the
    /// deployment's choice.
    pub sentinel: SentinelConfig,
    /// Optional monthly spend budget. When set, Ginja runs the live
    /// cost governor: real metered usage is projected to month-end
    /// spend, and `batch`/`batch_timeout`/`dump_threshold`/sentinel
    /// pacing are retuned at runtime to converge on the budget. The
    /// configured `batch` becomes the governed floor; `safety` is the
    /// hard ceiling the governor can never exceed (the RPO bound is
    /// never loosened). `None` disables governing entirely.
    pub budget: Option<BudgetConfig>,
    /// Outage endurance: bounded in-memory backlog, spill-to-disk
    /// overflow, adaptive backpressure and catch-up resync.
    pub outage: OutageConfig,
    /// Ingest fast-path tuning: producer spin budget and adaptive
    /// partial-batch sealing.
    pub ingest: IngestConfig,
}

impl GinjaConfig {
    /// Starts building a configuration from the defaults
    /// (B = 100, S = 1000, TB = 1 s, TS = 5 s, 5 uploaders, 20 MB
    /// objects, 150 % dump threshold, MAC-only codec).
    pub fn builder() -> GinjaConfigBuilder {
        GinjaConfigBuilder::new()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Config`] when a constraint is violated.
    pub fn validate(&self) -> Result<(), GinjaError> {
        if self.batch == 0 {
            return Err(GinjaError::Config("batch (B) must be at least 1".into()));
        }
        if self.safety < self.batch {
            return Err(GinjaError::Config(format!(
                "safety (S = {}) must be >= batch (B = {}), or the queue can never fill a batch",
                self.safety, self.batch
            )));
        }
        if self.uploaders == 0 {
            return Err(GinjaError::Config(
                "at least one uploader thread is required".into(),
            ));
        }
        if self.recovery_fanout == 0 {
            return Err(GinjaError::Config(
                "recovery fan-out must be at least 1 (1 = serial)".into(),
            ));
        }
        if self.max_object_size < 4096 {
            return Err(GinjaError::Config(
                "max object size must be at least 4 KiB".into(),
            ));
        }
        // NaN must be rejected too, hence the explicit comparison shape.
        if self.dump_threshold.is_nan() || self.dump_threshold <= 1.0 {
            return Err(GinjaError::Config(
                "dump threshold must be greater than 1.0".into(),
            ));
        }
        self.retry.validate().map_err(GinjaError::Config)?;
        self.sentinel.validate().map_err(GinjaError::Config)?;
        if let Some(budget) = &self.budget {
            budget.validate().map_err(GinjaError::Config)?;
        }
        self.outage.validate().map_err(GinjaError::Config)?;
        self.ingest.validate().map_err(GinjaError::Config)?;
        Ok(())
    }
}

/// Builder for [`GinjaConfig`].
#[derive(Debug, Clone)]
pub struct GinjaConfigBuilder {
    config: GinjaConfig,
}

impl Default for GinjaConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GinjaConfigBuilder {
    /// Starts from the defaults described on [`GinjaConfig::builder`].
    pub fn new() -> Self {
        GinjaConfigBuilder {
            config: GinjaConfig {
                batch: 100,
                batch_timeout: Duration::from_secs(1),
                safety: 1000,
                safety_timeout: Duration::from_secs(5),
                uploaders: 5,
                recovery_fanout: 4,
                max_object_size: 20 * 1024 * 1024,
                dump_threshold: 1.5,
                codec: CodecConfig::new(),
                pitr: None,
                coalesce: true,
                retry: RetryConfig::default(),
                sentinel: SentinelConfig::default(),
                budget: None,
                outage: OutageConfig::default(),
                ingest: IngestConfig::default(),
            },
        }
    }

    /// Sets B, the batch size.
    #[must_use]
    pub fn batch(mut self, b: usize) -> Self {
        self.config.batch = b;
        self
    }

    /// Sets TB, the batch timeout.
    #[must_use]
    pub fn batch_timeout(mut self, tb: Duration) -> Self {
        self.config.batch_timeout = tb;
        self
    }

    /// Sets S, the safety limit.
    #[must_use]
    pub fn safety(mut self, s: usize) -> Self {
        self.config.safety = s;
        self
    }

    /// Sets TS, the safety timeout.
    #[must_use]
    pub fn safety_timeout(mut self, ts: Duration) -> Self {
        self.config.safety_timeout = ts;
        self
    }

    /// Sets the number of parallel uploader threads.
    #[must_use]
    pub fn uploaders(mut self, n: usize) -> Self {
        self.config.uploaders = n;
        self
    }

    /// Sets the fan-out width for recovery GETs, checkpoint part
    /// uploads, reboot resync and sentinel repair (1 = serial).
    #[must_use]
    pub fn recovery_fanout(mut self, n: usize) -> Self {
        self.config.recovery_fanout = n;
        self
    }

    /// Sets the maximum cloud-object size.
    #[must_use]
    pub fn max_object_size(mut self, bytes: usize) -> Self {
        self.config.max_object_size = bytes;
        self
    }

    /// Sets the dump threshold (default 1.5 = the paper's 150 %).
    #[must_use]
    pub fn dump_threshold(mut self, ratio: f64) -> Self {
        self.config.dump_threshold = ratio;
        self
    }

    /// Sets the object codec configuration (compression/encryption).
    #[must_use]
    pub fn codec(mut self, codec: CodecConfig) -> Self {
        self.config.codec = codec;
        self
    }

    /// Enables point-in-time recovery with the given retention.
    #[must_use]
    pub fn pitr(mut self, pitr: PitrConfig) -> Self {
        self.config.pitr = Some(pitr);
        self
    }

    /// Disables write aggregation (ablation studies only).
    #[must_use]
    pub fn coalesce(mut self, enabled: bool) -> Self {
        self.config.coalesce = enabled;
        self
    }

    /// Sets the cloud-path resilience policy (retry/backoff, circuit
    /// breaker, hedging). Use [`RetryConfig::disabled`] to make every
    /// cloud failure surface immediately (ablation studies only).
    #[must_use]
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.config.retry = retry;
        self
    }

    /// Enables or disables hedged `put`s without replacing the rest of
    /// the retry policy.
    #[must_use]
    pub fn hedging(mut self, enabled: bool) -> Self {
        self.config.retry.hedge = enabled;
        self
    }

    /// Sets the DR sentinel policy (scrub cadence, rehearsal cadence,
    /// repair behaviour).
    #[must_use]
    pub fn sentinel(mut self, sentinel: SentinelConfig) -> Self {
        self.config.sentinel = sentinel;
        self
    }

    /// Enables the live cost governor against the given monthly budget.
    #[must_use]
    pub fn budget(mut self, budget: BudgetConfig) -> Self {
        self.config.budget = Some(budget);
        self
    }

    /// Sets the outage-endurance policy (ring capacity, spill ceiling,
    /// state-machine thresholds).
    #[must_use]
    pub fn outage(mut self, outage: OutageConfig) -> Self {
        self.config.outage = outage;
        self
    }

    /// Sets the ingest fast-path tuning (producer spin budget, adaptive
    /// partial-batch sealing).
    #[must_use]
    pub fn ingest(mut self, ingest: IngestConfig) -> Self {
        self.config.ingest = ingest;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Config`] when a constraint is violated.
    pub fn build(self) -> Result<GinjaConfig, GinjaError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = GinjaConfig::builder().build().unwrap();
        assert_eq!(c.batch, 100);
        assert_eq!(c.safety, 1000);
        assert_eq!(c.uploaders, 5);
        assert_eq!(c.max_object_size, 20 * 1024 * 1024);
        assert!((c.dump_threshold - 1.5).abs() < 1e-9);
    }

    #[test]
    fn no_loss_config_is_valid() {
        // B = S = 1: the paper's synchronous-replication configuration.
        let c = GinjaConfig::builder().batch(1).safety(1).build().unwrap();
        assert_eq!((c.batch, c.safety), (1, 1));
    }

    #[test]
    fn batch_above_safety_rejected() {
        let err = GinjaConfig::builder()
            .batch(100)
            .safety(10)
            .build()
            .unwrap_err();
        assert!(matches!(err, GinjaError::Config(_)));
    }

    #[test]
    fn zero_batch_rejected() {
        assert!(GinjaConfig::builder().batch(0).build().is_err());
    }

    #[test]
    fn zero_uploaders_rejected() {
        assert!(GinjaConfig::builder().uploaders(0).build().is_err());
    }

    #[test]
    fn recovery_fanout_carried_through_and_validated() {
        let c = GinjaConfig::builder().build().unwrap();
        assert_eq!(c.recovery_fanout, 4, "default fan-out");
        let c = GinjaConfig::builder().recovery_fanout(8).build().unwrap();
        assert_eq!(c.recovery_fanout, 8);
        assert!(GinjaConfig::builder().recovery_fanout(1).build().is_ok());
        assert!(GinjaConfig::builder().recovery_fanout(0).build().is_err());
    }

    #[test]
    fn tiny_object_size_rejected() {
        assert!(GinjaConfig::builder().max_object_size(100).build().is_err());
    }

    #[test]
    fn outage_carried_through_and_validated() {
        let c = GinjaConfig::builder().build().unwrap();
        assert_eq!(c.outage.ring_capacity, 256, "default ring capacity");
        assert_eq!(c.outage.ckpt_capacity, 8);
        assert_eq!(c.outage.spill_dir, ".ginja_spill");

        let c = GinjaConfig::builder()
            .outage(OutageConfig {
                ring_capacity: 8,
                spill_ceiling: 4096,
                ..OutageConfig::default()
            })
            .build()
            .unwrap();
        assert_eq!(c.outage.ring_capacity, 8);
        assert_eq!(c.outage.spill_ceiling, 4096);

        for bad in [
            OutageConfig {
                ring_capacity: 0,
                ..OutageConfig::default()
            },
            OutageConfig {
                ckpt_capacity: 0,
                ..OutageConfig::default()
            },
            OutageConfig {
                spill_dir: String::new(),
                ..OutageConfig::default()
            },
            OutageConfig {
                spill_ceiling: 0,
                ..OutageConfig::default()
            },
            OutageConfig {
                poll_interval: Duration::ZERO,
                ..OutageConfig::default()
            },
            OutageConfig {
                catchup_weight: 0.0,
                ..OutageConfig::default()
            },
            OutageConfig {
                catchup_weight: f64::NAN,
                ..OutageConfig::default()
            },
        ] {
            assert!(GinjaConfig::builder().outage(bad).build().is_err());
        }
    }

    #[test]
    fn ingest_carried_through_and_validated() {
        let c = GinjaConfig::builder().build().unwrap();
        assert_eq!(c.ingest.spin, 64, "default spin budget");
        assert!(c.ingest.adaptive_seal, "adaptive sealing defaults on");

        let c = GinjaConfig::builder()
            .ingest(IngestConfig {
                spin: 0,
                adaptive_seal: false,
            })
            .build()
            .unwrap();
        assert_eq!(c.ingest.spin, 0);
        assert!(!c.ingest.adaptive_seal);

        assert!(GinjaConfig::builder()
            .ingest(IngestConfig {
                spin: (1 << 20) + 1,
                ..IngestConfig::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn dump_threshold_must_exceed_one() {
        assert!(GinjaConfig::builder().dump_threshold(1.0).build().is_err());
        assert!(GinjaConfig::builder().dump_threshold(0.5).build().is_err());
        assert!(GinjaConfig::builder().dump_threshold(1.01).build().is_ok());
    }

    #[test]
    fn pitr_carried_through() {
        let c = GinjaConfig::builder()
            .pitr(PitrConfig { keep_snapshots: 3 })
            .build()
            .unwrap();
        assert_eq!(c.pitr.unwrap().keep_snapshots, 3);
    }

    #[test]
    fn retry_policy_carried_through() {
        let c = GinjaConfig::builder()
            .retry(RetryConfig {
                max_attempts: 9,
                ..RetryConfig::default()
            })
            .build()
            .unwrap();
        assert_eq!(c.retry.max_attempts, 9);
        assert!(!c.retry.hedge, "hedging defaults off");
    }

    #[test]
    fn hedging_toggle_preserves_rest_of_policy() {
        let c = GinjaConfig::builder()
            .retry(RetryConfig {
                max_attempts: 9,
                ..RetryConfig::default()
            })
            .hedging(true)
            .build()
            .unwrap();
        assert!(c.retry.hedge);
        assert_eq!(c.retry.max_attempts, 9);
    }

    #[test]
    fn sentinel_policy_carried_through_and_validated() {
        let c = GinjaConfig::builder()
            .sentinel(SentinelConfig {
                scrub_interval: Duration::from_secs(5),
                scrub_sample: 0,
                ..SentinelConfig::default()
            })
            .build()
            .unwrap();
        assert_eq!(c.sentinel.scrub_interval, Duration::from_secs(5));
        assert_eq!(c.sentinel.scrub_sample, 0);
        assert!(c.sentinel.repair && c.sentinel.delete_orphans);

        let zero_scrub = SentinelConfig {
            scrub_interval: Duration::ZERO,
            ..SentinelConfig::default()
        };
        assert!(GinjaConfig::builder().sentinel(zero_scrub).build().is_err());
        let zero_rehearsal = SentinelConfig {
            rehearsal_interval: Duration::ZERO,
            ..SentinelConfig::default()
        };
        assert!(GinjaConfig::builder()
            .sentinel(zero_rehearsal)
            .build()
            .is_err());
    }

    #[test]
    fn budget_carried_through_and_validated() {
        let c = GinjaConfig::builder().build().unwrap();
        assert!(c.budget.is_none(), "governing defaults off");

        let c = GinjaConfig::builder()
            .budget(BudgetConfig::new(1.0))
            .build()
            .unwrap();
        let budget = c.budget.unwrap();
        assert!((budget.monthly_usd - 1.0).abs() < 1e-9);
        assert!((budget.target_usd() - 0.9).abs() < 1e-9, "10% headroom");

        assert!(GinjaConfig::builder()
            .budget(BudgetConfig::new(0.0))
            .build()
            .is_err());
        let mut bad_headroom = BudgetConfig::new(1.0);
        bad_headroom.headroom = 1.5;
        assert!(GinjaConfig::builder().budget(bad_headroom).build().is_err());
        let mut zero_month = BudgetConfig::new(1.0);
        zero_month.month = Duration::ZERO;
        assert!(GinjaConfig::builder().budget(zero_month).build().is_err());
    }

    #[test]
    fn invalid_retry_policy_rejected() {
        let zero_attempts = RetryConfig {
            max_attempts: 0,
            ..RetryConfig::default()
        };
        assert!(GinjaConfig::builder().retry(zero_attempts).build().is_err());

        let inverted_delays = RetryConfig {
            base_delay: Duration::from_secs(9),
            max_delay: Duration::from_secs(1),
            ..RetryConfig::default()
        };
        assert!(GinjaConfig::builder()
            .retry(inverted_delays)
            .build()
            .is_err());

        let bad_percentile = RetryConfig {
            hedge_percentile: 2.0,
            ..RetryConfig::default()
        };
        assert!(GinjaConfig::builder()
            .retry(bad_percentile)
            .hedging(true)
            .build()
            .is_err());

        assert!(GinjaConfig::builder()
            .retry(RetryConfig::disabled())
            .build()
            .is_ok());
    }
}
