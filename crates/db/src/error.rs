use std::error::Error;
use std::fmt;

use ginja_vfs::FsError;

/// Errors from the mini-DBMS.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbError {
    /// The table has not been created.
    TableMissing(u32),
    /// A table with this id already exists.
    TableExists(u32),
    /// The value does not fit the table's slot size.
    ValueTooLarge {
        /// Target table.
        table: u32,
        /// Offered value length.
        len: usize,
        /// The table's value capacity.
        cap: usize,
    },
    /// On-disk state failed validation (bad CRC, bad structure).
    Corrupt(String),
    /// Crash recovery could not produce a consistent state.
    RecoveryFailed(String),
    /// The underlying file system failed.
    Fs(FsError),
    /// The operation requires an open (non-crashed) database.
    Crashed,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableMissing(id) => write!(f, "table {id} does not exist"),
            DbError::TableExists(id) => write!(f, "table {id} already exists"),
            DbError::ValueTooLarge { table, len, cap } => {
                write!(
                    f,
                    "value of {len} bytes exceeds slot capacity {cap} of table {table}"
                )
            }
            DbError::Corrupt(reason) => write!(f, "corrupt database state: {reason}"),
            DbError::RecoveryFailed(reason) => write!(f, "crash recovery failed: {reason}"),
            DbError::Fs(e) => write!(f, "file system error: {e}"),
            DbError::Crashed => write!(f, "database has crashed; recover it first"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for DbError {
    fn from(err: FsError) -> Self {
        DbError::Fs(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(DbError::TableMissing(7).to_string().contains('7'));
        let e = DbError::ValueTooLarge {
            table: 1,
            len: 100,
            cap: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn fs_error_source_preserved() {
        let e = DbError::from(FsError::NotFound("f".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<DbError>();
    }
}
