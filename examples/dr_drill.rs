//! Disaster-recovery drill: the DR sentinel detecting and healing
//! silent backup rot.
//!
//! A backup that is never exercised is a hope, not a guarantee. This
//! example damages a live Ginja bucket in all three ways the sentinel
//! classifies — a corrupt object (bit rot), a missing WAL object (lost
//! by the provider), and an orphan (left behind by a failed GC delete)
//! — then lets the sentinel scrub, repair, and rehearse a full restore,
//! and finally proves the healed bucket recovers with zero loss.
//!
//! ```sh
//! cargo run --example dr_drill
//! ```

use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{MemStore, ObjectStore};
use ginja::core::{recover_into, Ginja, GinjaConfig, SentinelConfig};
use ginja::db::{Database, DbProfile};
use ginja::sentinel::{AnomalyKind, Sentinel};
use ginja::vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), DbProfile::postgres_small())?;
    db.create_table(1, 128)?;
    drop(db);

    let cloud = Arc::new(MemStore::new());
    let config = GinjaConfig::builder()
        .batch(2)
        .safety(20)
        .batch_timeout(Duration::from_millis(30))
        .sentinel(SentinelConfig {
            scrub_sample: 0, // drill mode: verify every payload
            ..SentinelConfig::default()
        })
        .build()?;
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )?;
    let sentinel = Sentinel::new(&ginja);
    let protected: Arc<dyn FileSystem> =
        Arc::new(InterceptFs::new(local.clone(), Arc::new(ginja.clone())));
    let db = Database::open(protected, DbProfile::postgres_small())?;

    for i in 0..20u64 {
        db.put(1, i, format!("ledger-entry-{i}").into_bytes())?;
    }
    db.checkpoint()?;
    // More traffic after the checkpoint, so the live view holds several
    // WAL objects on top of the dump.
    for i in 20..40u64 {
        db.put(1, i, format!("ledger-entry-{i}").into_bytes())?;
    }
    ginja.sync(Duration::from_secs(10));
    println!("• 40 updates committed and replicated");

    // A quiet month passes, during which the cloud misbehaves: one
    // object rots, one vanishes, and a GC delete that "succeeded"
    // actually left its garbage behind.
    let wal: Vec<String> = ginja.view().wal_entries().map(|w| w.to_name()).collect();
    let mut sealed = cloud.get(&wal[0])?;
    let mid = sealed.len() / 2;
    sealed[mid] ^= 0x40;
    cloud.put(&wal[0], &sealed)?;
    cloud.delete(wal.last().unwrap())?;
    cloud.put("WAL/999999_pg_xlog/stale_0_8", b"gc-leak!")?;
    println!("• bucket damaged: 1 corrupted, 1 deleted, 1 orphan injected");

    // Drill, cycle 1: detect everything, re-upload the damaged WAL
    // objects from local state (the orphan is quarantined, not yet
    // swept — it could be a PUT whose registration is still in flight).
    let cycle = sentinel.run_cycle()?;
    println!(
        "• scrub #1: {} objects, {} payloads verified — {} corrupt, {} missing, {} orphan(s)",
        cycle.scrub.objects_listed,
        cycle.scrub.payloads_verified,
        cycle.scrub.count(AnomalyKind::Corrupt),
        cycle.scrub.count(AnomalyKind::MissingWal),
        cycle.scrub.count(AnomalyKind::Orphan),
    );
    println!("  repaired by re-upload: {:?}", cycle.repair.uploaded);
    assert_eq!(cycle.repair.uploaded.len(), 2);

    // Cycle 2: the repairs verify clean; the orphan, still present, is
    // past quarantine and gets swept.
    let cycle = sentinel.run_cycle()?;
    assert_eq!(cycle.repair.orphans_deleted.len(), 1);
    println!("  orphan swept: {:?}", cycle.repair.orphans_deleted);
    assert!(sentinel.run_cycle()?.scrub.is_clean());
    println!(
        "• scrub #3: bucket clean, degraded = {}",
        ginja.exposure().degraded
    );

    // Rehearse the restore: a full rebuild into scratch memory, clocked
    // as the achieved RTO, with the achieved RPO checked against S.
    let rehearsal = sentinel.rehearse()?;
    assert!(rehearsal.restorable());
    let snap = ginja.stats().sentinel;
    println!(
        "• rehearsal: restorable, achieved RTO {:?}, achieved RPO {} update(s) (bound S = {}) ✔",
        snap.last_rto, snap.last_rpo_updates, config.safety
    );

    // The drill's final word: an actual disaster, recovered from the
    // healed bucket alone.
    ginja.sync(Duration::from_secs(10));
    ginja.shutdown();
    drop(db);
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), cloud.as_ref(), &config)?;
    let recovered = Database::open(rebuilt, DbProfile::postgres_small())?;
    for i in 0..40u64 {
        assert_eq!(
            recovered.get(1, i)?.unwrap(),
            format!("ledger-entry-{i}").into_bytes()
        );
    }
    println!("• disaster recovery from the healed bucket: all 40 entries intact ✔");
    Ok(())
}
