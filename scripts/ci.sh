#!/usr/bin/env bash
# CI gate: formatting, lints, tests. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
