//! The four cost terms of §7.1.

use crate::pricing::S3Pricing;

/// Minutes per (30-day) month, the paper's `30 × 24 × 60`.
pub const MINUTES_PER_MONTH: f64 = 30.0 * 24.0 * 60.0;

/// How cloud synchronizations are scheduled, which determines
/// `C_WAL_PUT`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncRate {
    /// One PUT per `B` updates (Figure 4's parameterization):
    /// `C_WAL_PUT = W × 60×24×30 / B × C_PUT`.
    Batch(u64),
    /// A fixed number of synchronizations per minute (Table 2's
    /// parameterization): `C_WAL_PUT = rate × 60×24×30 × C_PUT`.
    PerMinute(f64),
}

/// The §7.1 cost model:
/// `C_Total = C_DB_Storage + C_DB_PUT + C_WAL_Storage + C_WAL_PUT`.
#[derive(Debug, Clone, PartialEq)]
pub struct GinjaCostModel {
    /// Database size in GB.
    pub db_size_gb: f64,
    /// Compression rate `CR` (1.43 in the paper: "every 1MB becomes
    /// 700kB").
    pub compression_ratio: f64,
    /// Checkpoint period in minutes (`CkptPeriod`).
    pub ckpt_period_min: f64,
    /// `CkptTime`: period + checkpoint duration + upload time, minutes.
    pub ckpt_time_min: f64,
    /// Average checkpoint size in MB (`CkptSize`).
    pub ckpt_size_mb: f64,
    /// WAL page size in bytes (8 kB for PostgreSQL).
    pub wal_page_bytes: f64,
    /// WAL records per page (75 in the paper's evaluation).
    pub records_per_page: f64,
    /// `W`: database updates per minute.
    pub updates_per_minute: f64,
    /// Synchronization schedule.
    pub sync: SyncRate,
    /// Cloud-object size cap in MB (20 in the paper).
    pub object_cap_mb: f64,
    /// Price sheet.
    pub pricing: S3Pricing,
}

impl GinjaCostModel {
    /// The Figure 4 configuration: "a database of 10GB with pages of
    /// 8kB containing 75 WAL records … a checkpoint happens every 60
    /// minutes and has a duration of 20 minutes, and a compression rate
    /// of 1.43".
    pub fn paper_fig4(updates_per_minute: f64, batch: u64) -> Self {
        GinjaCostModel {
            db_size_gb: 10.0,
            compression_ratio: 1.43,
            ckpt_period_min: 60.0,
            ckpt_time_min: 60.0 + 20.0,
            ckpt_size_mb: 64.0,
            wal_page_bytes: 8192.0,
            records_per_page: 75.0,
            updates_per_minute,
            sync: SyncRate::Batch(batch),
            object_cap_mb: 20.0,
            pricing: S3Pricing::may_2017(),
        }
    }

    /// `C_DB_Storage = DBSize × 1.25 / CR × C_Storage` — the DB objects
    /// average 25 % above the database size because dumps are taken at
    /// the 150 % threshold.
    pub fn c_db_storage(&self) -> f64 {
        self.db_size_gb * 1.25 / self.compression_ratio * self.pricing.storage_gb_month
    }

    /// `C_DB_PUT = (month / CkptPeriod) × ceil(CkptSize / 20MB) × C_PUT`.
    pub fn c_db_put(&self) -> f64 {
        let checkpoints_per_month = MINUTES_PER_MONTH / self.ckpt_period_min;
        let puts_per_checkpoint = (self.ckpt_size_mb / self.object_cap_mb).ceil().max(1.0);
        checkpoints_per_month * puts_per_checkpoint * self.pricing.put_op
    }

    /// `C_WAL_Storage = (W × CkptTime / RecPerPage + 1) × PageSize / CR
    /// × C_Storage` — the WAL objects alive between checkpoints.
    pub fn c_wal_storage(&self) -> f64 {
        let pages = self.updates_per_minute * self.ckpt_time_min / self.records_per_page + 1.0;
        let page_gb = self.wal_page_bytes / 1e9;
        pages * page_gb / self.compression_ratio * self.pricing.storage_gb_month
    }

    /// `C_WAL_PUT` under the configured [`SyncRate`].
    pub fn c_wal_put(&self) -> f64 {
        match self.sync {
            SyncRate::Batch(b) => {
                self.updates_per_minute * MINUTES_PER_MONTH / b as f64 * self.pricing.put_op
            }
            SyncRate::PerMinute(rate) => rate * MINUTES_PER_MONTH * self.pricing.put_op,
        }
    }

    /// Total monthly cost.
    pub fn total(&self) -> f64 {
        self.c_db_storage() + self.c_db_put() + self.c_wal_storage() + self.c_wal_put()
    }

    /// Recovery cost (§7.3): "approximated by 4 × (C_DB_Storage +
    /// C_WAL_Storage)" — i.e. downloading every stored byte at the
    /// egress price (≈ 4× the monthly storage price). GETs are "not
    /// significant" and ignored here as in the paper.
    pub fn recovery_cost(&self) -> f64 {
        let stored_gb = self.db_size_gb * 1.25 / self.compression_ratio
            + (self.updates_per_minute * self.ckpt_time_min / self.records_per_page + 1.0)
                * self.wal_page_bytes
                / 1e9
                / self.compression_ratio;
        stored_gb * self.pricing.egress_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_storage_term_10gb() {
        // 10 GB × 1.25 / 1.43 × $0.023 ≈ $0.201 — the paper: "the size
        // of our database (10GB) implies in a fixed C_DB_Storage of
        // $0.20" (§7.2, stated with CR=1 as "$0.20"; with CR it is
        // within the same cent range).
        let m = GinjaCostModel::paper_fig4(100.0, 100);
        let c = m.c_db_storage();
        assert!((0.18..=0.23).contains(&c), "got {c}");
    }

    #[test]
    fn ten_times_bigger_db_costs_ten_times_more_storage() {
        // §7.2: "If one wants to consider, for instance, a 10× bigger
        // database, this cost will be $2."
        let mut m = GinjaCostModel::paper_fig4(100.0, 100);
        m.db_size_gb = 100.0;
        m.compression_ratio = 1.25; // paper's $2 statement uses ~size×0.023×(1.25/CR)≈2
        let c = m.c_db_storage();
        assert!((1.8..=2.4).contains(&c), "got {c}");
    }

    #[test]
    fn wal_put_dominates_at_small_batch() {
        // Figure 4: B=10 at 1000 updates/minute costs ≈ $21.6 in PUTs.
        let m = GinjaCostModel::paper_fig4(1000.0, 10);
        let c = m.c_wal_put();
        assert!((c - 21.6).abs() < 0.1, "got {c}");
        assert!(m.c_wal_put() > 10.0 * m.c_db_storage());
    }

    #[test]
    fn batch_reduces_put_cost_linearly() {
        let m10 = GinjaCostModel::paper_fig4(100.0, 10);
        let m100 = GinjaCostModel::paper_fig4(100.0, 100);
        let m1000 = GinjaCostModel::paper_fig4(100.0, 1000);
        assert!((m10.c_wal_put() / m100.c_wal_put() - 10.0).abs() < 1e-9);
        assert!((m100.c_wal_put() / m1000.c_wal_put() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn figure4_shape_many_configs_under_one_dollar() {
        // "there are plenty of possible configurations that cost less
        // than $1 per month" (§7.2).
        let mut under = 0;
        for (w, b) in [(10.0, 100u64), (10.0, 1000), (100.0, 1000), (100.0, 100)] {
            if GinjaCostModel::paper_fig4(w, b).total() < 1.0 {
                under += 1;
            }
        }
        assert!(under >= 3, "{under} configs under $1");
    }

    #[test]
    fn wal_storage_is_small() {
        // At 1000 upd/min over an 80-minute checkpoint window: ~1067
        // pages of 8 kB ≈ 8.7 MB → fractions of a cent.
        let m = GinjaCostModel::paper_fig4(1000.0, 100);
        assert!(m.c_wal_storage() < 0.01, "got {}", m.c_wal_storage());
    }

    #[test]
    fn sync_rate_per_minute_matches_table2_arithmetic() {
        // 1 sync/min = 43 200 PUTs/month = $0.216.
        let mut m = GinjaCostModel::paper_fig4(6.0, 1);
        m.sync = SyncRate::PerMinute(1.0);
        assert!((m.c_wal_put() - 0.216).abs() < 1e-9);
        m.sync = SyncRate::PerMinute(6.0);
        assert!((m.c_wal_put() - 1.296).abs() < 1e-9);
    }

    #[test]
    fn db_put_counts_object_splits() {
        let mut m = GinjaCostModel::paper_fig4(100.0, 100);
        m.ckpt_size_mb = 100.0; // 5 objects of 20 MB per checkpoint
        let per_month = MINUTES_PER_MONTH / 60.0;
        assert!((m.c_db_put() - per_month * 5.0 * 5e-6).abs() < 1e-9);
    }

    #[test]
    fn recovery_cost_tracks_stored_bytes() {
        let m = GinjaCostModel::paper_fig4(100.0, 100);
        let c = m.recovery_cost();
        // ~8.74 GB stored × $0.09 ≈ $0.79.
        assert!((0.5..=1.2).contains(&c), "got {c}");
    }
}
