#![warn(missing_docs)]
//! Workload generators for the Ginja evaluation.
//!
//! The paper drives its performance experiments (§8) with **TPC-C**,
//! chosen "due to its update-heavy workload (≈ 90% of updates)", and its
//! cost analysis (§7) with fixed-rate update streams. This crate
//! provides both:
//!
//! * [`Tpcc`] — a TPC-C-style transaction mix (newOrder / payment /
//!   orderStatus / delivery / stockLevel at the standard 45/43/4/4/4
//!   weights) over the nine TPC-C tables, with configurable scale;
//! * [`run_tpcc`] — a multi-terminal driver reporting **Tpm-C** (newOrder
//!   transactions per minute) and **Tpm-Total**, the two metrics of
//!   Figures 5 and 6;
//! * [`UpdateWorkload`] — a deterministic update stream at a fixed
//!   rate, for the §7 cost experiments.

mod driver;
mod tpcc;
mod update;
mod verify;

pub use driver::{run_tpcc, RunReport};
pub use tpcc::{tables, Tpcc, TpccScale, TxnKind};
pub use update::UpdateWorkload;
pub use verify::{probe_tpcc, TpccProbeReport};
