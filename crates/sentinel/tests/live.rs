//! Live-sentinel integration tests: a real `Ginja` pipeline over an
//! in-memory file system and cloud, with damage injected directly into
//! the object store.

use std::sync::Arc;
use std::time::Duration;

use ginja_cloud::{MemStore, ObjectStore};
use ginja_core::{Ginja, GinjaConfig, SentinelConfig};
use ginja_sentinel::{AnomalyKind, Sentinel};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};

const SEG: &str = "pg_xlog/000000010000000000000001";

struct Rig {
    local: Arc<MemFs>,
    cloud: Arc<MemStore>,
    ginja: Ginja,
    fs: InterceptFs<Arc<MemFs>>,
}

fn rig() -> Rig {
    let local = Arc::new(MemFs::new());
    let cloud = Arc::new(MemStore::new());
    let config = GinjaConfig::builder()
        .batch(1)
        .safety(8)
        .sentinel(SentinelConfig {
            scrub_sample: 0, // verify every payload every cycle
            ..SentinelConfig::default()
        })
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud.clone(),
        Arc::new(PostgresProcessor::new()),
        config,
    )
    .unwrap();
    let fs = InterceptFs::new(local.clone(), Arc::new(ginja.clone()));
    Rig {
        local,
        cloud,
        ginja,
        fs,
    }
}

/// Writes `n` WAL records through the intercepted file system and waits
/// for them to be durable.
fn commit(rig: &Rig, n: usize) {
    let start = rig.local.len(SEG).unwrap_or(0);
    for i in 0..n {
        let data = format!("record-{:04}", start as usize + i);
        rig.fs
            .write(SEG, start + (i * 11) as u64, data.as_bytes(), true)
            .unwrap();
    }
    assert!(rig.ginja.sync(Duration::from_secs(10)), "pipeline drained");
}

#[test]
fn clean_pipeline_scrubs_clean() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    commit(&rig, 3);
    let cycle = sentinel.run_cycle().unwrap();
    assert!(cycle.scrub.is_clean(), "{:?}", cycle.scrub.anomalies);
    assert!(cycle.scrub.payloads_verified > 0);
    assert!(!rig.ginja.exposure().degraded);
    rig.ginja.shutdown();
}

#[test]
fn deleted_wal_object_detected_and_reuploaded() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    commit(&rig, 3);
    let victim = rig.cloud.list("WAL/").unwrap().remove(1);
    rig.cloud.delete(&victim).unwrap();

    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.scrub.count(AnomalyKind::MissingWal), 1);
    assert_eq!(cycle.repair.uploaded, vec![victim.clone()]);
    assert!(cycle.repair.failed.is_empty());
    assert!(rig.cloud.get(&victim).is_ok(), "object restored");

    let cycle = sentinel.run_cycle().unwrap();
    assert!(cycle.scrub.is_clean());
    assert!(!rig.ginja.exposure().degraded);
    rig.ginja.shutdown();
}

#[test]
fn corrupt_wal_object_detected_and_reuploaded() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    commit(&rig, 2);
    let victim = rig.cloud.list("WAL/").unwrap().remove(0);
    let mut sealed = rig.cloud.get(&victim).unwrap();
    let mid = sealed.len() / 2;
    sealed[mid] ^= 0x20;
    rig.cloud.put(&victim, &sealed).unwrap();

    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.scrub.count(AnomalyKind::Corrupt), 1);
    assert_eq!(cycle.repair.uploaded, vec![victim]);
    assert!(sentinel.run_cycle().unwrap().scrub.is_clean());
    rig.ginja.shutdown();
}

#[test]
fn orphan_quarantined_one_cycle_then_swept() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    commit(&rig, 1);
    // Garbage a failed GC DELETE might leave: validly named, untracked.
    let orphan = "WAL/999_pg_xlog/000000010000000000000009_0_4";
    rig.cloud.put(orphan, b"junk").unwrap();

    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.scrub.count(AnomalyKind::Orphan), 1);
    assert!(
        cycle.repair.orphans_deleted.is_empty(),
        "first sighting only quarantines"
    );
    assert!(rig.cloud.get(orphan).is_ok());

    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.repair.orphans_deleted, vec![orphan.to_string()]);
    assert!(rig.cloud.get(orphan).is_err(), "orphan swept");

    assert!(sentinel.run_cycle().unwrap().scrub.is_clean());
    let snap = rig.ginja.stats().sentinel;
    assert_eq!(snap.orphans_deleted, 1);
    rig.ginja.shutdown();
}

#[test]
fn corrupt_dump_healed_by_fresh_dump() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    // A database file so the dump has content worth restoring.
    rig.local.write("base/1", 0, b"table-data", false).unwrap();
    commit(&rig, 2);
    let dump = rig.cloud.list("DB/").unwrap().remove(0);
    let mut sealed = rig.cloud.get(&dump).unwrap();
    let mid = sealed.len() / 2;
    sealed[mid] ^= 0x01;
    rig.cloud.put(&dump, &sealed).unwrap();

    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.scrub.count(AnomalyKind::Corrupt), 1);
    assert!(cycle.repair.dump_requested, "DB damage heals via re-dump");
    assert!(rig.ginja.sync(Duration::from_secs(10)));

    // The fresh dump superseded the corrupt one and its GC removed it.
    let cycle = sentinel.run_cycle().unwrap();
    assert!(cycle.scrub.is_clean(), "{:?}", cycle.scrub.anomalies);
    let rehearsal = sentinel.rehearse().unwrap();
    assert!(rehearsal.restorable());
    rig.ginja.shutdown();
}

#[test]
fn impossible_repair_degrades_then_heals() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    commit(&rig, 1);
    let victim = rig.cloud.list("WAL/").unwrap().remove(0);
    rig.cloud.delete(&victim).unwrap();
    // Local source of truth gone too: repair is impossible.
    let backup = rig.local.read_all(SEG).unwrap();
    rig.local.delete(SEG).unwrap();

    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.repair.failed, vec![victim.clone()]);
    assert!(rig.ginja.exposure().degraded, "unrepairable => degraded");
    assert!(rig.ginja.stats().sentinel.degraded);

    // The operator restores the local file; the next cycle self-heals.
    rig.local.write(SEG, 0, &backup, false).unwrap();
    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.repair.uploaded, vec![victim]);
    assert!(!rig.ginja.exposure().degraded, "healed => flag lowered");
    rig.ginja.shutdown();
}

#[test]
fn rehearsal_measures_rto_and_rpo() {
    let rig = rig();
    let sentinel = Sentinel::new(&rig.ginja);
    rig.local.write("base/1", 0, b"table-data", false).unwrap();
    commit(&rig, 4);

    let report = sentinel.rehearse().unwrap();
    assert!(report.restorable());
    assert!(report.rto > Duration::ZERO);
    assert_eq!(report.rpo_updates, Some(0), "synced pipeline: no loss");
    assert_eq!(report.rpo_within_bound, Some(true));

    let snap = rig.ginja.stats().sentinel;
    assert_eq!(snap.rehearsals, 1);
    assert_eq!(snap.rehearsal_failures, 0);
    assert!(snap.last_rto > Duration::ZERO);
    assert!(snap.last_rpo_within_bound);
    rig.ginja.shutdown();
}

#[test]
fn background_thread_runs_cycles_and_stops() {
    let local = Arc::new(MemFs::new());
    let cloud = Arc::new(MemStore::new());
    let config = GinjaConfig::builder()
        .batch(1)
        .safety(8)
        .sentinel(SentinelConfig {
            scrub_interval: Duration::from_millis(5),
            rehearsal_interval: Duration::from_millis(20),
            scrub_sample: 0,
            ..SentinelConfig::default()
        })
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config,
    )
    .unwrap();
    let sentinel = Sentinel::new(&ginja);
    sentinel.spawn();
    sentinel.spawn(); // idempotent

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = ginja.stats().sentinel;
        if snap.scrub_cycles >= 2 && snap.rehearsals >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sentinel never ran");
        std::thread::sleep(Duration::from_millis(2));
    }
    sentinel.shutdown();
    let after = ginja.stats().sentinel.scrub_cycles;
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(
        ginja.stats().sentinel.scrub_cycles,
        after,
        "no cycles after shutdown"
    );
    ginja.shutdown();
}
