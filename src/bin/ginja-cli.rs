//! `ginja-cli` — operator tooling over a Ginja cloud bucket.
//!
//! The bucket is addressed as a directory (use an rclone/NFS mount for
//! a real cloud bucket):
//!
//! ```text
//! ginja-cli status <bucket-dir>
//! ginja-cli restore-points <bucket-dir>
//! ginja-cli verify <bucket-dir> [--password <pw>]
//! ginja-cli drill <bucket-dir> [--password <pw>]
//! ginja-cli recover <bucket-dir> <target-dir> [--point <ts>] [--password <pw>]
//! ginja-cli cost <db-gb> <updates-per-min> <batch>
//! ginja-cli crashtest [--profile <postgres|mysql>] [--seed <n>] [--ops <n>] [--stride <n>] [--no-torn]
//! ```
//!
//! `crashtest` needs no bucket: it runs the CrashFs crash-point sweep
//! (see `DESIGN.md` §11) against in-memory stores and exits non-zero if
//! any crash point violates a durability invariant.

use std::process::ExitCode;

use ginja::cloud::{DirStore, ObjectStore};
use ginja::codec::CodecConfig;
use ginja::core::{
    list_restore_points, recover_to_point, verify_backup, CloudView, GinjaConfig, RestorePointKind,
};
use ginja::cost::GinjaCostModel;
use ginja::vfs::DirFs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("status") => status(&args[1..]),
        Some("restore-points") => restore_points(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("drill") => drill(&args[1..]),
        Some("recover") => recover(&args[1..]),
        Some("cost") => cost(&args[1..]),
        Some("crashtest") => crashtest(&args[1..]),
        _ => {
            eprintln!(
                "usage: ginja-cli <status|restore-points|verify|drill|recover|cost|crashtest> ..."
            );
            eprintln!("  status <bucket-dir>");
            eprintln!("  restore-points <bucket-dir>");
            eprintln!("  verify <bucket-dir> [--password <pw>]");
            eprintln!("  drill <bucket-dir> [--password <pw>]");
            eprintln!("  recover <bucket-dir> <target-dir> [--point <ts>] [--password <pw>]");
            eprintln!("  cost <db-gb> <updates-per-min> <batch>");
            eprintln!(
                "  crashtest [--profile <postgres|mysql>] [--seed <n>] [--ops <n>] [--stride <n>] [--no-torn]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn config_from(args: &[String]) -> Result<GinjaConfig, String> {
    let mut codec = CodecConfig::new();
    if let Some(password) = flag_value(args, "--password") {
        codec = codec.compression(true).password(password);
    }
    GinjaConfig::builder()
        .codec(codec)
        .build()
        .map_err(|e| e.to_string())
}

fn open_bucket(args: &[String], index: usize) -> Result<DirStore, String> {
    let path = args.get(index).ok_or("missing bucket directory argument")?;
    DirStore::open(path).map_err(|e| e.to_string())
}

fn status(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let names = bucket.list("").map_err(|e| e.to_string())?;
    let view = CloudView::from_listing(&names).map_err(|e| e.to_string())?;
    println!("bucket:            {}", bucket.root().display());
    println!("objects:           {}", names.len());
    println!(
        "WAL objects:       {} ({} bytes raw)",
        view.wal_count(),
        view.total_wal_bytes()
    );
    println!(
        "DB objects:        {} ({} bytes raw)",
        view.db_count(),
        view.total_db_size()
    );
    println!("WAL frontier ts:   {}", view.last_wal_ts());
    match view.most_recent_dump() {
        Some((ts, entry)) => {
            println!(
                "newest dump:       ts {ts}, {} bytes, {} part(s)",
                entry.size,
                entry.parts.len()
            )
        }
        None => println!("newest dump:       NONE — this bucket cannot be recovered"),
    }
    Ok(())
}

fn restore_points(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let points = list_restore_points(&bucket).map_err(|e| e.to_string())?;
    if points.is_empty() {
        println!("no restorable points (no complete dump in the bucket)");
        return Ok(());
    }
    for point in points {
        let kind = match point.kind {
            RestorePointKind::Dump => "dump",
            RestorePointKind::Checkpoint => "checkpoint",
            RestorePointKind::Wal => "wal",
        };
        println!("ts {:>8}  {kind}", point.ts);
    }
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let config = config_from(args)?;
    let scratch = ginja::vfs::MemFs::new();
    let report = verify_backup(&bucket, &config, &scratch).map_err(|e| e.to_string())?;
    println!("objects verified:  {}", report.objects_verified);
    println!("bytes downloaded:  {}", report.bytes_downloaded);
    if !report.corrupt_objects.is_empty() {
        println!("CORRUPT OBJECTS:");
        for name in &report.corrupt_objects {
            println!("  {name}");
        }
        return Err(format!(
            "{} corrupt object(s)",
            report.corrupt_objects.len()
        ));
    }
    match report.recovery {
        Some(recovery) => println!(
            "rebuild OK:        dump ts {}, {} checkpoint(s), {} WAL object(s), {} file(s)",
            recovery.dump_ts,
            recovery.checkpoints_applied,
            recovery.wal_objects_applied,
            recovery.files_written
        ),
        None => return Err("no dump to rebuild from".into()),
    }
    println!("backup verification PASSED");
    Ok(())
}

/// A one-shot disaster-recovery drill: scrub the whole bucket (every
/// payload envelope-verified, anomalies classified), then rehearse a
/// full restore into scratch memory and report the achieved RTO.
fn drill(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let config = config_from(args)?;

    let scrub = ginja::sentinel::scrub_bucket(&bucket, &config).map_err(|e| e.to_string())?;
    println!("objects listed:    {}", scrub.objects_listed);
    println!("payloads verified: {}", scrub.payloads_verified);
    if !scrub.is_clean() {
        println!("ANOMALIES:");
        for anomaly in &scrub.anomalies {
            println!("  {:<12} {}", anomaly.kind.to_string(), anomaly.name);
        }
    }

    let (rehearsal, _scratch) =
        ginja::sentinel::rehearse_bucket(&bucket, &config).map_err(|e| e.to_string())?;
    match &rehearsal.verify.recovery {
        Some(recovery) => println!(
            "rehearsal rebuild: dump ts {}, {} checkpoint(s), {} WAL object(s), {} file(s)",
            recovery.dump_ts,
            recovery.checkpoints_applied,
            recovery.wal_objects_applied,
            recovery.files_written
        ),
        None => println!("rehearsal rebuild: FAILED (no usable dump)"),
    }
    println!("achieved RTO:      {:?}", rehearsal.rto);

    if !scrub.is_clean() {
        return Err(format!("{} anomaly(ies) found", scrub.anomalies.len()));
    }
    if !rehearsal.restorable() {
        return Err("bucket is not restorable".into());
    }
    println!("drill PASSED — bucket is clean and restorable");
    Ok(())
}

fn recover(args: &[String]) -> Result<(), String> {
    let bucket = open_bucket(args, 0)?;
    let target_path = args.get(1).ok_or("missing target directory argument")?;
    let point = match flag_value(args, "--point") {
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("bad --point value: {raw}"))?,
        None => u64::MAX,
    };
    let config = config_from(args)?;
    let target = DirFs::open(target_path).map_err(|e| e.to_string())?;
    let report = recover_to_point(&target, &bucket, &config, point).map_err(|e| e.to_string())?;
    println!(
        "recovered into {}: dump ts {}, {} checkpoint(s), {} WAL object(s), {} bytes downloaded",
        target_path,
        report.dump_ts,
        report.checkpoints_applied,
        report.wal_objects_applied,
        report.bytes_downloaded
    );
    println!("start the DBMS over this directory to complete crash recovery");
    Ok(())
}

fn cost(args: &[String]) -> Result<(), String> {
    let parse = |i: usize, what: &str| -> Result<f64, String> {
        args.get(i)
            .ok_or(format!("missing {what}"))?
            .parse::<f64>()
            .map_err(|_| format!("bad {what}: {}", args[i]))
    };
    let db_gb = parse(0, "db-gb")?;
    let updates = parse(1, "updates-per-min")?;
    let batch = parse(2, "batch")? as u64;
    if batch == 0 {
        return Err("batch must be at least 1".into());
    }
    let mut model = GinjaCostModel::paper_fig4(updates, batch);
    model.db_size_gb = db_gb;
    println!("C_DB_Storage  = ${:>9.3}", model.c_db_storage());
    println!("C_DB_PUT      = ${:>9.3}", model.c_db_put());
    println!("C_WAL_Storage = ${:>9.3}", model.c_wal_storage());
    println!("C_WAL_PUT     = ${:>9.3}", model.c_wal_put());
    println!("C_Total       = ${:>9.3} per month", model.total());
    println!(
        "recovery      = ${:>9.3} (free intra-region)",
        model.recovery_cost()
    );
    Ok(())
}

/// Runs the CrashFs crash-point sweep against in-memory stores: every
/// mutating local I/O of a seeded workload becomes a kill point, and
/// each surviving state must crash-recover locally, disaster-recover
/// from the cloud with bounded loss, scrub clean, and reboot-resync.
fn crashtest(args: &[String]) -> Result<(), String> {
    use ginja::crashpoint::{explore, ExplorerConfig};
    use ginja::db::ProfileKind;

    let profile = match flag_value(args, "--profile").as_deref() {
        None | Some("postgres") => ProfileKind::Postgres,
        Some("mysql") => ProfileKind::MySql,
        Some(other) => return Err(format!("unknown profile: {other}")),
    };
    let parse_num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            Some(raw) => raw.parse().map_err(|_| format!("bad {flag} value: {raw}")),
            None => Ok(default),
        }
    };
    let mut cfg = ExplorerConfig::new(profile);
    cfg.seed = parse_num("--seed", cfg.seed)?;
    cfg.steps = parse_num("--ops", cfg.steps as u64)? as usize;
    cfg.stride = parse_num("--stride", cfg.stride as u64)?.max(1) as usize;
    cfg.torn = !args.iter().any(|a| a == "--no-torn");

    let report = explore(&cfg);
    println!(
        "profile:           {}",
        match profile {
            ProfileKind::Postgres => "postgres",
            ProfileKind::MySql => "mysql",
        }
    );
    println!("workload steps:    {}", cfg.steps);
    println!("crash points:      {}", report.crash_points);
    println!(
        "replays explored:  {} (stride {}, torn {})",
        report.explored, cfg.stride, cfg.torn
    );
    println!("faults injected:   {}", report.fs_faults_injected);
    println!("torn tails healed: {}", report.torn_tails_truncated);
    println!("WAL resynced:      {} object(s)", report.wal_resync_objects);
    if !report.is_clean() {
        println!("VIOLATIONS:");
        for violation in &report.violations {
            println!("  {violation}");
        }
        return Err(format!(
            "{} crash-point violation(s)",
            report.violations.len()
        ));
    }
    println!("crashtest PASSED — every explored crash point recovered");
    Ok(())
}
