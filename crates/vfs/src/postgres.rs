use crate::{DbmsProcessor, IoClass, WriteEvent};

/// Table 1 classification rules for PostgreSQL.
///
/// PostgreSQL "keeps its log segments in a set of x_log files (with
/// pages of 8kB) … uses a pg_log file to store the status of each
/// transaction (the checkpoint starts with a write in this file) and a
/// small pg_control file to store a pointer to the last checkpoint
/// record in the WAL … A write to pg_control marks the end of a
/// checkpoint" (§4).
///
/// | Event | Detection |
/// |---|---|
/// | Update commit | sync. write under `pg_xlog/` |
/// | Checkpoint begin | sync. write under `pg_clog/` |
/// | Checkpoint end | sync. write to `global/pg_control` |
///
/// Table files live under `base/`; everything else (e.g. `pg_stat/`,
/// `pg_temp/`) is irrelevant to recovery.
#[derive(Debug, Clone)]
pub struct PostgresProcessor {
    wal_prefix: String,
    clog_prefix: String,
    control_path: String,
    table_prefix: String,
}

impl Default for PostgresProcessor {
    fn default() -> Self {
        Self::new()
    }
}

impl PostgresProcessor {
    /// The standard PostgreSQL 9.x data-directory layout.
    pub fn new() -> Self {
        PostgresProcessor {
            wal_prefix: "pg_xlog/".to_string(),
            clog_prefix: "pg_clog/".to_string(),
            control_path: "global/pg_control".to_string(),
            table_prefix: "base/".to_string(),
        }
    }
}

impl DbmsProcessor for PostgresProcessor {
    fn classify(&self, event: &WriteEvent) -> IoClass {
        // Table 1 keys on *synchronous* writes; PostgreSQL issues
        // asynchronous writes only for non-durability-critical files.
        if !event.sync {
            return IoClass::Other;
        }
        if event.path.starts_with(&self.wal_prefix) {
            return IoClass::WalAppend;
        }
        if *event.path == *self.control_path {
            return IoClass::ControlFile;
        }
        if event.path.starts_with(&self.clog_prefix) || event.path.starts_with(&self.table_prefix) {
            return IoClass::DataFile;
        }
        IoClass::Other
    }

    fn wal_prefix(&self) -> &str {
        &self.wal_prefix
    }

    fn is_db_file(&self, path: &str) -> bool {
        path.starts_with(&self.clog_prefix)
            || path.starts_with(&self.table_prefix)
            || path == self.control_path
    }

    fn checkpoints_flush_all_dirty_pages(&self) -> bool {
        // PostgreSQL checkpoints write out every buffer dirtied before
        // the checkpoint started, then update pg_control.
        true
    }

    fn name(&self) -> &str {
        "postgres"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn event(path: &str, offset: u64, sync: bool) -> WriteEvent {
        WriteEvent {
            path: path.into(),
            offset,
            data: Arc::from(&b"x"[..]),
            sync,
        }
    }

    #[test]
    fn xlog_writes_are_update_commits() {
        let p = PostgresProcessor::new();
        assert_eq!(
            p.classify(&event("pg_xlog/000000010000000000000001", 8192, true)),
            IoClass::WalAppend
        );
    }

    #[test]
    fn clog_write_is_checkpoint_data() {
        let p = PostgresProcessor::new();
        assert_eq!(
            p.classify(&event("pg_clog/0000", 0, true)),
            IoClass::DataFile
        );
    }

    #[test]
    fn table_file_write_is_checkpoint_data() {
        let p = PostgresProcessor::new();
        assert_eq!(
            p.classify(&event("base/16384/16385", 8192, true)),
            IoClass::DataFile
        );
    }

    #[test]
    fn pg_control_is_checkpoint_end() {
        let p = PostgresProcessor::new();
        assert_eq!(
            p.classify(&event("global/pg_control", 0, true)),
            IoClass::ControlFile
        );
    }

    #[test]
    fn async_writes_ignored() {
        let p = PostgresProcessor::new();
        assert_eq!(p.classify(&event("pg_xlog/0001", 0, false)), IoClass::Other);
        assert_eq!(p.classify(&event("base/1/2", 0, false)), IoClass::Other);
    }

    #[test]
    fn unrelated_files_ignored() {
        let p = PostgresProcessor::new();
        assert_eq!(
            p.classify(&event("pg_stat/db_0.stat", 0, true)),
            IoClass::Other
        );
        assert_eq!(
            p.classify(&event("postmaster.pid", 0, true)),
            IoClass::Other
        );
    }

    #[test]
    fn db_file_predicate() {
        let p = PostgresProcessor::new();
        assert!(p.is_db_file("base/1/16385"));
        assert!(p.is_db_file("pg_clog/0000"));
        assert!(p.is_db_file("global/pg_control"));
        assert!(!p.is_db_file("pg_xlog/0001"));
        assert!(!p.is_db_file("pg_stat/x"));
    }

    #[test]
    fn wal_prefix_exposed() {
        assert_eq!(PostgresProcessor::new().wal_prefix(), "pg_xlog/");
        assert_eq!(PostgresProcessor::new().name(), "postgres");
    }
}
