#![warn(missing_docs)]
//! The Ginja disaster-recovery middleware.
//!
//! Ginja (Alcântara, Oliveira, Bessani — Middleware '17) replicates a
//! transactional DBMS to a cloud **object storage** service by
//! intercepting its file-system I/O: committed updates (WAL writes)
//! become *WAL objects*, checkpoints become *DB objects* (incremental,
//! or full *dumps*), and two parameters trade cost against data loss:
//!
//! * **Batch** (`B`/`TB`) — how many updates each cloud PUT carries;
//! * **Safety** (`S`/`TS`) — how many updates may be lost in a disaster
//!   (the DBMS is blocked when more are unconfirmed).
//!
//! # Lifecycle
//!
//! ```rust
//! use std::sync::Arc;
//! use std::time::Duration;
//! use ginja_core::{recover_into, Ginja, GinjaConfig};
//! use ginja_cloud::MemStore;
//! use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let local = Arc::new(MemFs::new());
//! let cloud = Arc::new(MemStore::new());
//! let processor = Arc::new(PostgresProcessor::new());
//! let config = GinjaConfig::builder().batch(2).safety(10).build()?;
//!
//! // 1. Boot: upload the current database state, start the pipeline.
//! let ginja = Ginja::boot(local.clone(), cloud.clone(), processor.clone(), config.clone())?;
//!
//! // 2. Run the DBMS over the intercepted file system.
//! let fs = InterceptFs::new(local.clone(), Arc::new(ginja.clone()));
//! fs.write("pg_xlog/000000000000000000000000", 0, b"commit record", true)?;
//! assert!(ginja.sync(Duration::from_secs(5)));
//! ginja.shutdown();
//!
//! // 3. Disaster: the primary site is gone. Rebuild from the cloud.
//! let rebuilt = Arc::new(MemFs::new());
//! let report = recover_into(rebuilt.as_ref(), cloud.as_ref(), &config)?;
//! assert_eq!(report.wal_objects_applied, 1);
//! assert_eq!(
//!     rebuilt.read_all("pg_xlog/000000000000000000000000")?,
//!     b"commit record"
//! );
//! # Ok(())
//! # }
//! ```
//!
//! The module map follows the paper: [`queue`] is the `CommitQueue` of
//! §6, [`agg`] the update aggregation of Algorithm 2, [`names`]/[`view`]
//! the data model of §5.2, [`recovery`] Algorithm 1's Recovery mode,
//! [`verify`] the backup-verification procedure of §5.4.

pub mod agg;
pub mod apply;
pub mod archiver;
pub mod bundle;
pub mod fanout;
pub mod names;
pub mod queue;
pub mod recovery;
pub mod verify;
pub mod view;

mod config;
mod error;
mod ginja;
mod outage;
mod stats;

pub use agg::{rollup, SnapshotTotals};
pub use apply::{ApplyEngine, ApplyProgress};
pub use config::{
    GinjaConfig, GinjaConfigBuilder, IngestConfig, OutageConfig, PitrConfig, SentinelConfig,
};
pub use error::GinjaError;
pub use fanout::{FanoutExecutor, FanoutHandle, LaneSnapshot};
pub use ginja::{Exposure, Ginja};
pub use ginja_cloud::{
    BreakerState, CloudUsage, ResilienceSnapshot, RetryConfig, UsageLedger, UsageMeter,
};
pub use ginja_cost::{BudgetConfig, KnobBounds, Knobs};
pub use names::{DbObjectKind, DbObjectName, WalObjectName, DB_PREFIX, WAL_PREFIX};
pub use outage::{OutageObservation, OutagePolicy, OutageState};
pub use recovery::{
    list_restore_points, recover_into, recover_to_point, RecoveryReport, RestorePoint,
    RestorePointKind,
};
pub use stats::{
    CrashFsSnapshot, GinjaStats, GinjaStatsSnapshot, GovernorSnapshot, IngestSnapshot,
    LatencyHisto, LatencySnapshot, OutageSnapshot, SentinelSnapshot, SentinelStats,
    StandbySnapshot, StandbyStats,
};
pub use verify::{verify_backup, verify_backup_in_memory, VerifyReport};
pub use view::{CloudView, DbEntry};
