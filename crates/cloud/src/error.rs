use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors returned by [`crate::ObjectStore`] operations, classified so
/// retry decisions are type-driven rather than string-matched.
///
/// The contract every backend implements:
///
/// * [`StoreError::is_retryable`] is `true` exactly when re-issuing the
///   same operation could plausibly succeed without operator action
///   (transient network failure, throttling, a replica quorum miss).
/// * [`StoreError::retry_after`] carries a backend-provided pacing hint
///   (e.g. an HTTP `Retry-After`), which retry layers should honour as
///   a minimum delay before the next attempt.
/// * Non-retryable errors ([`StoreError::NotFound`],
///   [`StoreError::InvalidName`], [`StoreError::Corrupt`], and
///   `Unavailable { retryable: false }`) must surface to the caller
///   unchanged — retrying them only hides bugs or misconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The named object does not exist. Not retryable: `get` after a
    /// successful `put` never legitimately races with itself in Ginja's
    /// single-writer pipeline.
    NotFound(String),
    /// The object name is syntactically invalid for this backend.
    /// Not retryable: the same name will always be rejected.
    InvalidName(String),
    /// The backend rejected the operation due to rate limiting.
    /// Always retryable; `retry_after` is the backend's pacing hint.
    Throttled {
        /// Human-readable reason.
        reason: String,
        /// Minimum delay the backend asked for before retrying.
        retry_after: Option<Duration>,
    },
    /// The backend could not complete the operation.
    Unavailable {
        /// Human-readable reason.
        reason: String,
        /// Whether re-issuing the operation could plausibly succeed
        /// (`true` for transient network/provider failures, `false`
        /// for misconfiguration like unwritable roots or permission
        /// errors).
        retryable: bool,
    },
    /// Stored data failed an integrity check (bad shard, undecodable
    /// object). Not retryable: the damage is durable.
    Corrupt(String),
    /// A fault-injection rule rejected this operation (tests only).
    /// Retryable, modelling a transient provider error.
    Injected(String),
    /// Fewer than the required number of replicas acknowledged a write.
    /// Retryable: replicas may recover, and re-putting is idempotent.
    QuorumNotReached {
        /// Replicas that acknowledged.
        acked: usize,
        /// Replicas required.
        required: usize,
    },
}

impl StoreError {
    /// A retryable [`StoreError::Unavailable`] (transient failure).
    pub fn unavailable(reason: impl Into<String>) -> Self {
        StoreError::Unavailable {
            reason: reason.into(),
            retryable: true,
        }
    }

    /// A non-retryable [`StoreError::Unavailable`] (needs operator
    /// action: misconfiguration, permissions, no backends, ...).
    pub fn fatal(reason: impl Into<String>) -> Self {
        StoreError::Unavailable {
            reason: reason.into(),
            retryable: false,
        }
    }

    /// A [`StoreError::Throttled`] with an optional pacing hint.
    pub fn throttled(reason: impl Into<String>, retry_after: Option<Duration>) -> Self {
        StoreError::Throttled {
            reason: reason.into(),
            retry_after,
        }
    }

    /// A [`StoreError::Corrupt`] integrity failure.
    pub fn corrupt(reason: impl Into<String>) -> Self {
        StoreError::Corrupt(reason.into())
    }

    /// Classifies an I/O failure: resource-pressure and interruption
    /// kinds are transient, everything else needs operator action.
    pub fn io(context: impl fmt::Display, e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        let retryable = matches!(
            e.kind(),
            ErrorKind::Interrupted
                | ErrorKind::TimedOut
                | ErrorKind::WouldBlock
                | ErrorKind::ResourceBusy
                | ErrorKind::BrokenPipe
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::ConnectionRefused
                | ErrorKind::NotConnected
                | ErrorKind::HostUnreachable
                | ErrorKind::NetworkUnreachable
                | ErrorKind::NetworkDown
        );
        StoreError::Unavailable {
            reason: format!("{context}: {e}"),
            retryable,
        }
    }

    /// Whether retrying the operation could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            StoreError::Throttled { .. }
            | StoreError::Injected(_)
            | StoreError::QuorumNotReached { .. } => true,
            StoreError::Unavailable { retryable, .. } => *retryable,
            StoreError::NotFound(_) | StoreError::InvalidName(_) | StoreError::Corrupt(_) => false,
        }
    }

    /// Backend-provided minimum delay before the next attempt, if any.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            StoreError::Throttled { retry_after, .. } => *retry_after,
            _ => None,
        }
    }
}

/// Deprecation path for pre-classification call sites that built
/// `Unavailable` from a bare string: the string maps to a *retryable*
/// unavailability, matching the old variant's `is_retryable()`.
impl From<String> for StoreError {
    fn from(reason: String) -> Self {
        StoreError::unavailable(reason)
    }
}

/// See the [`From<String>`] impl.
impl From<&str> for StoreError {
    fn from(reason: &str) -> Self {
        StoreError::unavailable(reason)
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(name) => write!(f, "object not found: {name}"),
            StoreError::InvalidName(name) => write!(f, "invalid object name: {name}"),
            StoreError::Throttled {
                reason,
                retry_after,
            } => match retry_after {
                Some(delay) => write!(f, "storage throttled: {reason} (retry after {delay:?})"),
                None => write!(f, "storage throttled: {reason}"),
            },
            StoreError::Unavailable { reason, retryable } => {
                let class = if *retryable { "transient" } else { "fatal" };
                write!(f, "storage unavailable ({class}): {reason}")
            }
            StoreError::Corrupt(reason) => write!(f, "stored data corrupt: {reason}"),
            StoreError::Injected(reason) => write!(f, "injected fault: {reason}"),
            StoreError::QuorumNotReached { acked, required } => {
                write!(
                    f,
                    "write quorum not reached: {acked} of {required} replicas acked"
                )
            }
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(!StoreError::NotFound("x".into()).is_retryable());
        assert!(!StoreError::InvalidName("..".into()).is_retryable());
        assert!(!StoreError::corrupt("bad shard").is_retryable());
        assert!(!StoreError::fatal("permission denied").is_retryable());
        assert!(StoreError::unavailable("net").is_retryable());
        assert!(StoreError::throttled("rate", None).is_retryable());
        assert!(StoreError::Injected("test".into()).is_retryable());
        assert!(StoreError::QuorumNotReached {
            acked: 1,
            required: 2
        }
        .is_retryable());
    }

    #[test]
    fn retry_after_only_from_throttled() {
        let hint = Duration::from_millis(250);
        assert_eq!(
            StoreError::throttled("rate", Some(hint)).retry_after(),
            Some(hint)
        );
        assert_eq!(StoreError::throttled("rate", None).retry_after(), None);
        assert_eq!(StoreError::unavailable("net").retry_after(), None);
        assert_eq!(StoreError::NotFound("x".into()).retry_after(), None);
    }

    #[test]
    fn io_classification_by_error_kind() {
        use std::io::{Error as IoError, ErrorKind};
        let transient = StoreError::io("put x", IoError::from(ErrorKind::TimedOut));
        assert!(transient.is_retryable());
        let fatal = StoreError::io("put x", IoError::from(ErrorKind::PermissionDenied));
        assert!(!fatal.is_retryable());
        assert!(fatal.to_string().contains("put x"));
    }

    #[test]
    fn string_migration_path_is_retryable() {
        let e: StoreError = String::from("legacy reason").into();
        assert!(e.is_retryable());
        assert!(e.to_string().contains("legacy reason"));
        let e: StoreError = "legacy str".into();
        assert!(e.is_retryable());
    }

    #[test]
    fn display_mentions_object_name() {
        let s = StoreError::NotFound("WAL/3_f_0".into()).to_string();
        assert!(s.contains("WAL/3_f_0"));
        let s = StoreError::InvalidName("../x".into()).to_string();
        assert!(s.contains("../x"));
    }

    #[test]
    fn display_distinguishes_transient_from_fatal() {
        assert!(StoreError::unavailable("x")
            .to_string()
            .contains("transient"));
        assert!(StoreError::fatal("x").to_string().contains("fatal"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<StoreError>();
    }
}
