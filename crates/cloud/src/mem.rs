use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::{ObjectStore, StoreError};

/// In-memory reference [`ObjectStore`] backed by a sorted map.
///
/// This is the substrate all simulated backends wrap. It is also useful
/// on its own for tests: the extra inspection helpers ([`MemStore::len`],
/// [`MemStore::total_bytes`], [`MemStore::object_size`]) let tests assert
/// on cloud-side state without going through the trait.
#[derive(Debug, Default)]
pub struct MemStore {
    objects: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects currently stored.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Sum of all object sizes in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }

    /// Size of one object, if present.
    pub fn object_size(&self, name: &str) -> Option<u64> {
        self.objects.read().get(name).map(|v| v.len() as u64)
    }

    /// Removes every object (simulates losing the cloud account).
    pub fn clear(&self) {
        self.objects.write().clear();
    }

    /// Snapshot of `(name, size)` pairs, for test assertions.
    pub fn inventory(&self) -> Vec<(String, u64)> {
        self.objects
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.len() as u64))
            .collect()
    }
}

impl ObjectStore for MemStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.objects.write().insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.objects
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        self.objects.write().remove(name);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let objects = self.objects.read();
        Ok(objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = MemStore::new();
        s.put("k", b"v").unwrap();
        assert_eq!(s.get("k").unwrap(), b"v");
    }

    #[test]
    fn put_overwrites() {
        let s = MemStore::new();
        s.put("k", b"v1").unwrap();
        s.put("k", b"v2").unwrap();
        assert_eq!(s.get("k").unwrap(), b"v2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let s = MemStore::new();
        assert!(matches!(s.get("nope"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn delete_is_idempotent() {
        let s = MemStore::new();
        s.put("k", b"v").unwrap();
        s.delete("k").unwrap();
        s.delete("k").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn list_respects_prefix_and_order() {
        let s = MemStore::new();
        s.put("WAL/2_b_0", b"").unwrap();
        s.put("DB/0_dump_3", b"").unwrap();
        s.put("WAL/1_a_0", b"").unwrap();
        s.put("WALX", b"").unwrap();
        assert_eq!(s.list("WAL/").unwrap(), vec!["WAL/1_a_0", "WAL/2_b_0"]);
        assert_eq!(s.list("").unwrap().len(), 4);
        assert_eq!(s.list("DB/").unwrap(), vec!["DB/0_dump_3"]);
    }

    #[test]
    fn sizes_tracked() {
        let s = MemStore::new();
        s.put("a", &[0u8; 100]).unwrap();
        s.put("b", &[0u8; 50]).unwrap();
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.object_size("a"), Some(100));
        assert_eq!(s.object_size("zz"), None);
    }

    #[test]
    fn clear_simulates_account_loss() {
        let s = MemStore::new();
        s.put("a", b"1").unwrap();
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_puts_are_safe() {
        let s = std::sync::Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.put(&format!("obj-{t}-{i}"), &[t as u8; 16]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 800);
    }
}
