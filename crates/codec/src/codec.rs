//! High-level seal/open API combining compression, encryption and MAC.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::aes::Aes128;
use crate::bufpool;
use crate::envelope::{self, Envelope, EnvelopeFlags};
use crate::glz::{self, Level};
use crate::hmac::HmacSha1;
use crate::kdf::DerivedKeys;
use crate::{ctr, CodecError};

/// Configuration for a [`Codec`], mirroring Ginja's object-protection
/// options (§5.4 / §6): compression, password-derived encryption, and the
/// default MAC-key string used when encryption is off.
#[derive(Debug, Clone)]
pub struct CodecConfig {
    compression: Option<Level>,
    password: Option<String>,
    mac_default: String,
    kdf_iterations: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl CodecConfig {
    /// A configuration with no compression, no encryption, and the
    /// default MAC-key string.
    pub fn new() -> Self {
        CodecConfig {
            compression: None,
            password: None,
            mac_default: "ginja-default-mac-key".to_string(),
            kdf_iterations: crate::kdf::DEFAULT_ITERATIONS,
        }
    }

    /// Enables or disables GLZ compression at the fast level (the paper's
    /// "ZLIB configured for fastest operation").
    #[must_use]
    pub fn compression(mut self, enabled: bool) -> Self {
        self.compression = enabled.then_some(Level::Fast);
        self
    }

    /// Enables compression at an explicit level.
    #[must_use]
    pub fn compression_level(mut self, level: Level) -> Self {
        self.compression = Some(level);
        self
    }

    /// Enables AES-128-CTR encryption with keys derived from `password`.
    #[must_use]
    pub fn password(mut self, password: impl Into<String>) -> Self {
        self.password = Some(password.into());
        self
    }

    /// Sets the default string used to derive the MAC key when no
    /// password is configured (a deployment parameter in the paper).
    #[must_use]
    pub fn mac_default(mut self, s: impl Into<String>) -> Self {
        self.mac_default = s.into();
        self
    }

    /// Overrides the PBKDF2 iteration count (tests lower it for speed).
    #[must_use]
    pub fn kdf_iterations(mut self, iterations: u32) -> Self {
        self.kdf_iterations = iterations;
        self
    }

    /// Whether compression is enabled.
    pub fn is_compression_enabled(&self) -> bool {
        self.compression.is_some()
    }

    /// Whether encryption is enabled.
    pub fn is_encryption_enabled(&self) -> bool {
        self.password.is_some()
    }
}

/// Seals plaintext into cloud-object envelopes and opens them back.
///
/// A `Codec` is cheap to share (`&Codec` is `Send + Sync`) and is used
/// concurrently by all of Ginja's uploader threads.
pub struct Codec {
    compression: Option<Level>,
    aes: Option<Aes128>,
    mac_key: [u8; 20],
    nonce_counter: AtomicU64,
}

impl std::fmt::Debug for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Codec")
            .field("compression", &self.compression)
            .field("encrypted", &self.aes.is_some())
            .finish()
    }
}

impl Codec {
    /// Builds a codec from `config`, deriving keys as needed.
    pub fn new(config: CodecConfig) -> Self {
        let (aes, mac_key) = match &config.password {
            Some(pw) => {
                let keys = DerivedKeys::from_password_iterations(pw, config.kdf_iterations);
                (Some(Aes128::new(&keys.enc_key)), keys.mac_key)
            }
            None => (None, DerivedKeys::mac_only(&config.mac_default)),
        };
        Codec {
            compression: config.compression,
            aes,
            mac_key,
            nonce_counter: AtomicU64::new(1),
        }
    }

    /// A codec with all transforms off (MAC only) — Ginja's default mode.
    pub fn plain() -> Self {
        Codec::new(CodecConfig::new())
    }

    /// Seals `plaintext` for the object named `name`.
    ///
    /// Applies compression (skipped when it does not help), then
    /// encryption, then appends the MAC. Infallible in practice but kept
    /// fallible for forward compatibility.
    ///
    /// # Errors
    ///
    /// Currently never returns an error.
    pub fn seal(&self, name: &str, plaintext: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut flags = EnvelopeFlags::empty();
        let mut body: Vec<u8>;

        match self.compression {
            Some(level) => {
                let packed = glz::compress(plaintext, level);
                if packed.len() < plaintext.len() {
                    flags = flags.union(EnvelopeFlags::COMPRESSED);
                    body = packed;
                } else {
                    body = plaintext.to_vec();
                }
            }
            None => body = plaintext.to_vec(),
        }

        let mut nonce = [0u8; 16];
        if let Some(aes) = &self.aes {
            flags = flags.union(EnvelopeFlags::ENCRYPTED);
            nonce = self.next_nonce(name);
            ctr::apply_keystream(aes, &nonce, &mut body);
        }

        Ok(envelope::assemble(
            &self.mac_key,
            name,
            flags,
            &nonce,
            &body,
        ))
    }

    /// Seals `plaintext` into `out` (cleared first), reusing `out`'s
    /// allocation and a thread-local [`bufpool`] buffer for the
    /// intermediate compress/encrypt body. Produces output byte-identical
    /// to [`Codec::seal`] (for the same nonce-counter state); the hot
    /// paths use this variant so steady-state sealing does not allocate.
    ///
    /// # Errors
    ///
    /// Currently never returns an error.
    pub fn seal_into(
        &self,
        name: &str,
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let mut flags = EnvelopeFlags::empty();
        let mut body = bufpool::take();

        match self.compression {
            Some(level) => {
                glz::compress_into(plaintext, level, &mut body);
                if body.len() < plaintext.len() {
                    flags = flags.union(EnvelopeFlags::COMPRESSED);
                } else {
                    body.clear();
                    body.extend_from_slice(plaintext);
                }
            }
            None => {
                body.clear();
                body.extend_from_slice(plaintext);
            }
        }

        let mut nonce = [0u8; 16];
        if let Some(aes) = &self.aes {
            flags = flags.union(EnvelopeFlags::ENCRYPTED);
            nonce = self.next_nonce(name);
            ctr::apply_keystream(aes, &nonce, &mut body);
        }

        envelope::assemble_into(&self.mac_key, name, flags, &nonce, &body, out);
        bufpool::recycle(body);
        Ok(())
    }

    /// Opens a sealed object, returning the plaintext.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`]: bad magic, truncation, MAC mismatch, an
    /// encrypted object without a configured password, or corrupt
    /// compressed data.
    pub fn open(&self, name: &str, sealed: &[u8]) -> Result<Vec<u8>, CodecError> {
        let env = Envelope::parse(sealed)?;
        env.verify(&self.mac_key, name)?;

        let mut body = env.body.to_vec();
        if env.flags.contains(EnvelopeFlags::ENCRYPTED) {
            let aes = self.aes.as_ref().ok_or(CodecError::KeyMissing)?;
            ctr::apply_keystream(aes, &env.nonce, &mut body);
        }
        if env.flags.contains(EnvelopeFlags::COMPRESSED) {
            body = glz::decompress(&body)?;
        }
        Ok(body)
    }

    /// Opens a sealed object into `out` (cleared first), reusing `out`'s
    /// allocation and a pooled intermediate buffer. Produces the same
    /// plaintext as [`Codec::open`].
    ///
    /// # Errors
    ///
    /// Same as [`Codec::open`]; on error `out`'s contents are
    /// unspecified.
    pub fn open_into(
        &self,
        name: &str,
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let env = Envelope::parse(sealed)?;
        env.verify(&self.mac_key, name)?;

        if env.flags.contains(EnvelopeFlags::COMPRESSED) {
            let mut body = bufpool::take();
            body.extend_from_slice(env.body);
            if env.flags.contains(EnvelopeFlags::ENCRYPTED) {
                let aes = match self.aes.as_ref() {
                    Some(aes) => aes,
                    None => {
                        bufpool::recycle(body);
                        return Err(CodecError::KeyMissing);
                    }
                };
                ctr::apply_keystream(aes, &env.nonce, &mut body);
            }
            let result = glz::decompress_into(&body, glz::DEFAULT_MAX_OUTPUT, out);
            bufpool::recycle(body);
            result
        } else {
            out.clear();
            out.extend_from_slice(env.body);
            if env.flags.contains(EnvelopeFlags::ENCRYPTED) {
                let aes = self.aes.as_ref().ok_or(CodecError::KeyMissing)?;
                ctr::apply_keystream(aes, &env.nonce, out);
            }
            Ok(())
        }
    }

    /// Verifies only the integrity of a sealed object without decoding
    /// the body — used by the backup-verification procedure (§5.4).
    ///
    /// # Errors
    ///
    /// Same parse/MAC errors as [`Codec::open`].
    pub fn verify(&self, name: &str, sealed: &[u8]) -> Result<(), CodecError> {
        Envelope::parse(sealed)?.verify(&self.mac_key, name)
    }

    /// Derives a unique per-object nonce from an internal counter and the
    /// object name; never repeats for the lifetime of the codec.
    fn next_nonce(&self, name: &str) -> [u8; 16] {
        let counter = self.nonce_counter.fetch_add(1, Ordering::Relaxed);
        let mut mac = HmacSha1::new(&self.mac_key);
        mac.update(b"ginja-nonce");
        mac.update(&counter.to_be_bytes());
        mac.update(name.as_bytes());
        let tag = mac.finalize();
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(&tag[..16]);
        nonce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compressible() -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(b"repetitive-field-content");
        }
        data
    }

    #[test]
    fn plain_roundtrip() {
        let codec = Codec::plain();
        let sealed = codec.seal("obj", b"hello").unwrap();
        assert_eq!(codec.open("obj", &sealed).unwrap(), b"hello");
    }

    #[test]
    fn all_mode_combinations_roundtrip() {
        let data = compressible();
        for (comp, enc) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut cfg = CodecConfig::new().compression(comp).kdf_iterations(2);
            if enc {
                cfg = cfg.password("pw");
            }
            let codec = Codec::new(cfg);
            let sealed = codec.seal("WAL/9_f_0", &data).unwrap();
            assert_eq!(
                codec.open("WAL/9_f_0", &sealed).unwrap(),
                data,
                "comp={comp} enc={enc}"
            );
        }
    }

    #[test]
    fn compression_reduces_size() {
        let data = compressible();
        let plain = Codec::plain().seal("o", &data).unwrap();
        let compressed = Codec::new(CodecConfig::new().compression(true))
            .seal("o", &data)
            .unwrap();
        assert!(compressed.len() < plain.len());
    }

    #[test]
    fn incompressible_data_stored_plain() {
        // xorshift noise: the COMPRESSED flag must not be set when
        // compression does not help, so no size is wasted.
        let mut state = 9u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let codec = Codec::new(CodecConfig::new().compression(true));
        let sealed = codec.seal("o", &data).unwrap();
        let env = Envelope::parse(&sealed).unwrap();
        assert!(!env.flags.contains(EnvelopeFlags::COMPRESSED));
        assert_eq!(codec.open("o", &sealed).unwrap(), data);
    }

    #[test]
    fn encrypted_body_is_not_plaintext() {
        let codec = Codec::new(CodecConfig::new().password("pw").kdf_iterations(2));
        let sealed = codec.seal("o", b"super secret database row").unwrap();
        let hay = sealed.windows(12).any(|w| w == b"super secret");
        assert!(!hay, "plaintext leaked into sealed object");
    }

    #[test]
    fn nonces_are_unique_per_seal() {
        let codec = Codec::new(CodecConfig::new().password("pw").kdf_iterations(2));
        let a = codec.seal("o", b"same").unwrap();
        let b = codec.seal("o", b"same").unwrap();
        assert_ne!(a, b, "two seals of the same data must differ (fresh nonce)");
    }

    #[test]
    fn wrong_password_fails_mac() {
        let codec = Codec::new(CodecConfig::new().password("right").kdf_iterations(2));
        let sealed = codec.seal("o", b"data").unwrap();
        let other = Codec::new(CodecConfig::new().password("wrong").kdf_iterations(2));
        assert_eq!(other.open("o", &sealed), Err(CodecError::MacMismatch));
    }

    #[test]
    fn plain_codec_rejects_encrypted_objects() {
        // Same MAC default but no key: pretend an attacker strips crypto.
        // Since MAC keys differ (password vs default), we get MacMismatch.
        let enc = Codec::new(CodecConfig::new().password("pw").kdf_iterations(2));
        let sealed = enc.seal("o", b"data").unwrap();
        let plain = Codec::plain();
        assert!(plain.open("o", &sealed).is_err());
    }

    #[test]
    fn name_binding_prevents_object_swap() {
        let codec = Codec::plain();
        let sealed = codec.seal("WAL/5_seg_0", b"newer").unwrap();
        assert_eq!(
            codec.open("WAL/4_seg_0", &sealed),
            Err(CodecError::MacMismatch)
        );
    }

    #[test]
    fn verify_without_decode() {
        let codec = Codec::new(CodecConfig::new().compression(true));
        let sealed = codec.seal("o", &compressible()).unwrap();
        codec.verify("o", &sealed).unwrap();
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(codec.verify("o", &bad), Err(CodecError::MacMismatch));
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let codec = Codec::new(
            CodecConfig::new()
                .compression(true)
                .password("p")
                .kdf_iterations(2),
        );
        let sealed = codec.seal("o", b"").unwrap();
        assert_eq!(codec.open("o", &sealed).unwrap(), b"");
    }

    #[test]
    fn seal_into_and_open_into_match_allocating_paths() {
        let data = compressible();
        for (comp, enc) in [(false, false), (true, false), (false, true), (true, true)] {
            let build = || {
                let mut cfg = CodecConfig::new().compression(comp).kdf_iterations(2);
                if enc {
                    cfg = cfg.password("pw");
                }
                Codec::new(cfg)
            };
            // Two identically-constructed codecs so the nonce counters
            // advance in lockstep across the two API paths.
            let reference = build();
            let pooled = build();
            let mut sealed = Vec::new();
            let mut opened = Vec::new();
            for round in 0..3 {
                let expect = reference.seal("WAL/7_f_0", &data).unwrap();
                pooled.seal_into("WAL/7_f_0", &data, &mut sealed).unwrap();
                assert_eq!(sealed, expect, "comp={comp} enc={enc} round={round}");
                pooled.open_into("WAL/7_f_0", &sealed, &mut opened).unwrap();
                assert_eq!(opened, data);
                assert_eq!(reference.open("WAL/7_f_0", &expect).unwrap(), data);
            }
        }
    }

    #[test]
    fn open_into_rejects_what_open_rejects() {
        let codec = Codec::plain();
        let sealed = codec.seal("o", b"payload").unwrap();
        let mut out = Vec::new();
        assert_eq!(
            codec.open_into("other", &sealed, &mut out),
            Err(CodecError::MacMismatch)
        );
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert_eq!(
            codec.open_into("o", &bad, &mut out),
            Err(CodecError::BadMagic)
        );
        // Encrypted object opened by a codec without a key, sharing the
        // MAC default so the failure is specifically the missing key.
        let enc = Codec::new(CodecConfig::new().password("pw").kdf_iterations(2));
        let sealed_enc = enc.seal("o", b"data").unwrap();
        let env = Envelope::parse(&sealed_enc).unwrap();
        let retagged = envelope::assemble(
            // Re-MAC the encrypted body under the plain codec's key to
            // isolate the KeyMissing path from MacMismatch.
            &DerivedKeys::mac_only("ginja-default-mac-key"),
            "o",
            env.flags,
            &env.nonce,
            env.body,
        );
        assert_eq!(
            codec.open_into("o", &retagged, &mut out),
            Err(CodecError::KeyMissing)
        );
    }

    #[test]
    fn codec_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Codec>();
    }
}
