//! Ablation: recovery fan-out width and the pooled codec hot path.
//!
//! Two questions this harness answers:
//!
//! 1. **Does parallel recovery pay?** The same latency-injected bucket
//!    (intra-region S3 model) is recovered at `recovery_fanout` 1, 4
//!    and 8. Recovery is GET-latency bound, so wall-clock should fall
//!    nearly linearly with the width until bandwidth or compute binds —
//!    the run asserts at least a 2× cut at width 8 vs. serial, and that
//!    every width rebuilds byte-identical files.
//! 2. **Does the zero-copy codec pipeline pay?** `seal`/`seal_into` are
//!    driven back-to-back over the same WAL-shaped payloads; the pooled
//!    path must not allocate per object once the thread-local
//!    [`ginja_codec::bufpool`] is warm (measured via its hit/miss
//!    counters) while staying at least as fast as the allocating path.
//!
//! With `BENCH_PR4_OUT=<path>` the headline numbers are also written as
//! a small JSON document (CI smoke uses this to archive a trend point).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{time_scale, to_sim_duration};
use ginja_cloud::{LatencyModel, LatencyStore, MemStore, ObjectStore};
use ginja_codec::{bufpool, Codec};
use ginja_core::{bundle, recover_into, DbObjectKind, DbObjectName, GinjaConfig, WalObjectName};
use ginja_vfs::{FileSystem, MemFs};

/// WAL objects seeded into the bucket (the knob recovery fan-out works
/// on: each is one GET).
const WAL_OBJECTS: u64 = 96;

/// Incremental checkpoints seeded after the dump.
const CHECKPOINTS: u64 = 16;

/// Payload bytes per WAL object.
const WAL_OBJECT_LEN: usize = 4 * 1024;

fn config(fanout: usize) -> GinjaConfig {
    GinjaConfig::builder()
        .recovery_fanout(fanout)
        .build()
        .expect("valid config")
}

fn page_like_data(len: usize, salt: u64) -> Vec<u8> {
    let mut data = Vec::with_capacity(len);
    let mut state = 0x2545_F491_4F6C_DD1D ^ salt;
    while data.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.extend_from_slice(&state.to_le_bytes());
        data.extend_from_slice(b"wal-record-filler");
    }
    data.truncate(len);
    data
}

/// Seeds a bucket shaped like a protected run left it: one dump, a
/// stream of WAL objects, and a tail of incremental checkpoints.
fn seed_bucket(codec: &Codec) -> MemStore {
    let cloud = MemStore::new();
    let dump = bundle::encode(&[bundle::FileRange {
        path: "base/1".into(),
        offset: 0,
        data: page_like_data(256 * 1024, 1),
    }]);
    let name = DbObjectName {
        ts: 0,
        kind: DbObjectKind::Dump,
        size: dump.len() as u64,
        part: 0,
        parts: 1,
    };
    let sealed = codec.seal(&name.to_name(), &dump).expect("seal dump");
    cloud.put(&name.to_name(), &sealed).expect("put dump");

    for ts in 1..=WAL_OBJECTS {
        let data = page_like_data(WAL_OBJECT_LEN, ts);
        let name = WalObjectName {
            ts,
            file: format!("pg_xlog/{:04}", ts / 32),
            offset: (ts % 32) * WAL_OBJECT_LEN as u64,
            len: data.len() as u64,
        };
        let sealed = codec.seal(&name.to_name(), &data).expect("seal wal");
        cloud.put(&name.to_name(), &sealed).expect("put wal");
    }

    for i in 0..CHECKPOINTS {
        let ts = WAL_OBJECTS - CHECKPOINTS + i; // interleaved with the WAL tail
        let body = bundle::encode(&[bundle::FileRange {
            path: "base/1".into(),
            offset: (i * 8192) % (128 * 1024),
            data: page_like_data(8 * 1024, 0x5eed ^ i),
        }]);
        let name = DbObjectName {
            ts,
            kind: DbObjectKind::Checkpoint,
            size: body.len() as u64,
            part: 0,
            parts: 1,
        };
        let sealed = codec.seal(&name.to_name(), &body).expect("seal ckpt");
        cloud.put(&name.to_name(), &sealed).expect("put ckpt");
    }
    cloud
}

fn copy_store(src: &MemStore) -> MemStore {
    let dst = MemStore::new();
    for name in src.list("").expect("list") {
        dst.put(&name, &src.get(&name).expect("get")).expect("put");
    }
    dst
}

/// Recovers the seeded bucket through a latency-injected store at the
/// given fan-out; returns (simulated seconds, rebuilt files).
fn timed_recovery(src: &MemStore, scale: f64, fanout: usize) -> (f64, Vec<(String, Vec<u8>)>) {
    let cloud = LatencyStore::with_seed(
        copy_store(src),
        LatencyModel::s3_intra_region().scaled(scale),
        0xab1a + fanout as u64,
    );
    let target = Arc::new(MemFs::new());
    let start = Instant::now();
    recover_into(target.as_ref(), &cloud, &config(fanout)).expect("recovery");
    let sim = to_sim_duration(start.elapsed()).as_secs_f64();
    let mut files: Vec<(String, Vec<u8>)> = target
        .list("")
        .expect("list rebuilt")
        .into_iter()
        .map(|path| {
            let data = target.read_all(&path).expect("read rebuilt");
            (path, data)
        })
        .collect();
    files.sort();
    (sim, files)
}

/// Objects/s through the allocating seal and the pooled seal_into, plus
/// the pool miss delta of the pooled run.
fn seal_throughput(codec: &Codec, rounds: usize) -> (f64, f64, u64, u64) {
    let payloads: Vec<Vec<u8>> = (0..64)
        .map(|i| page_like_data(WAL_OBJECT_LEN, 0xc0dec ^ i))
        .collect();

    let start = Instant::now();
    for r in 0..rounds {
        for (i, data) in payloads.iter().enumerate() {
            let sealed = codec
                .seal(&format!("WAL/{}_seg_{i}", r), data)
                .expect("seal");
            std::hint::black_box(&sealed);
        }
    }
    let alloc_rate = (rounds * payloads.len()) as f64 / start.elapsed().as_secs_f64();

    // Warm the pool, then measure with the counters bracketed.
    let mut out = Vec::new();
    codec
        .seal_into("WAL/warmup", &payloads[0], &mut out)
        .expect("warmup");
    let (h0, m0) = bufpool::counters();
    let start = Instant::now();
    for r in 0..rounds {
        for (i, data) in payloads.iter().enumerate() {
            codec
                .seal_into(&format!("WAL/{}_seg_{i}", r), data, &mut out)
                .expect("seal_into");
            std::hint::black_box(&out);
        }
    }
    let pooled_rate = (rounds * payloads.len()) as f64 / start.elapsed().as_secs_f64();
    let (h1, m1) = bufpool::counters();
    (alloc_rate, pooled_rate, h1 - h0, m1 - m0)
}

fn main() {
    let scale = time_scale();
    println!("time scale: {scale}");
    println!("== Ablation: recovery fan-out width + pooled codec hot path ==\n");

    let codec = Codec::new(config(1).codec.clone());
    let bucket = seed_bucket(&codec);
    println!(
        "bucket: {} objects ({} WAL x {} B, {} checkpoints, 1 dump)\n",
        bucket.list("").expect("list").len(),
        WAL_OBJECTS,
        WAL_OBJECT_LEN,
        CHECKPOINTS,
    );

    let mut t = Table::new(&["recovery_fanout", "recovery (sim s)", "speedup vs serial"]);
    let mut times = Vec::new();
    let mut reference: Option<Vec<(String, Vec<u8>)>> = None;
    for fanout in [1usize, 4, 8] {
        let (sim, files) = timed_recovery(&bucket, scale, fanout);
        match &reference {
            None => reference = Some(files),
            Some(expect) => assert_eq!(
                expect, &files,
                "fan-out {fanout} rebuilt different bytes than serial"
            ),
        }
        let serial = *times.first().unwrap_or(&sim);
        t.row(&[
            fanout.to_string(),
            fmt(sim, 2),
            format!("{:.1}x", serial / sim.max(1e-9)),
        ]);
        times.push(sim);
    }
    t.print();
    let speedup8 = times[0] / times[2].max(1e-9);
    assert!(
        speedup8 >= 2.0,
        "fan-out 8 must cut recovery at least 2x vs serial (got {speedup8:.2}x: \
         {times:?} sim s)"
    );

    let (alloc_rate, pooled_rate, hits, misses) = seal_throughput(&codec, 64);
    println!("\nseal hot path (4 KiB WAL-shaped objects):");
    let mut t = Table::new(&["path", "objects/s", "pool hits", "pool misses"]);
    t.row(&[
        "seal (allocating)".into(),
        fmt(alloc_rate, 0),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "seal_into (pooled)".into(),
        fmt(pooled_rate, 0),
        hits.to_string(),
        misses.to_string(),
    ]);
    t.print();
    assert!(
        misses <= 2,
        "a warm pool must serve the whole run without allocating ({misses} misses)"
    );
    assert!(
        pooled_rate >= alloc_rate * 0.8,
        "the pooled path must not be slower than the allocating one \
         ({pooled_rate:.0} vs {alloc_rate:.0} objects/s)"
    );

    println!(
        "\nshape check: recovery wall-clock falls ~linearly with fan-out width; \
         the pooled seal path allocates nothing once warm"
    );

    if let Ok(path) = std::env::var("BENCH_PR4_OUT") {
        let json = format!(
            "{{\n  \"recovery_sim_s\": {{\"fanout_1\": {:.4}, \"fanout_4\": {:.4}, \
             \"fanout_8\": {:.4}}},\n  \"recovery_speedup_8x\": {:.2},\n  \
             \"seal_objects_per_s_alloc\": {:.0},\n  \"seal_objects_per_s_pooled\": {:.0},\n  \
             \"bufpool_hits\": {},\n  \"bufpool_misses\": {}\n}}\n",
            times[0], times[1], times[2], speedup8, alloc_rate, pooled_rate, hits, misses
        );
        let mut file = std::fs::File::create(&path).expect("create BENCH_PR4_OUT");
        file.write_all(json.as_bytes())
            .expect("write BENCH_PR4_OUT");
        println!("\nwrote {path}");
    }
}
