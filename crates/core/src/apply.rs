//! The apply engine: the fetch-and-rebuild half of recovery, factored
//! out of [`crate::recovery::recover_to_point`] so that a *standby*
//! (`ginja-standby`) can drive the very same steps incrementally.
//!
//! Cold recovery is one call: [`ApplyEngine::cold_apply`] runs steps
//! 2–5 of Algorithm 1 (dump → every surviving WAL object in timestamp
//! order → dump re-applied → incremental checkpoints ascending). A
//! standby instead calls the step methods one delta at a time as new
//! objects appear in the bucket — [`ApplyEngine::apply_wal_objects`]
//! for freshly listed WAL, [`ApplyEngine::apply_checkpoints`] for
//! newly completed checkpoint entries — against the same
//! [`ApplyProgress`], so the rebuilt shadow directory is byte-identical
//! to what a cold recovery of the same bucket would produce.
//!
//! The engine is deliberately transient: it borrows the file system,
//! cloud, codec and fan-out handle for the duration of a pass, while
//! the cumulative state (the [`crate::RecoveryReport`] counters and the
//! distinct-files-written set) lives in the caller-owned
//! [`ApplyProgress`] that survives across passes.

use std::collections::BTreeSet;

use ginja_cloud::ObjectStore;
use ginja_codec::Codec;
use ginja_vfs::FileSystem;

use crate::bundle;
use crate::fanout::FanoutHandle;
use crate::names::{DbObjectKind, WalObjectName};
use crate::recovery::RecoveryReport;
use crate::view::{CloudView, DbEntry};
use crate::GinjaError;

/// Cumulative apply state: the recovery counters plus the set of
/// distinct files written, carried across engine passes. Cold recovery
/// uses one for the whole run; a standby keeps one alive for the whole
/// tail session so `files_written` deduplicates across cycles.
#[derive(Debug, Clone, Default)]
pub struct ApplyProgress {
    report: RecoveryReport,
    files_written: BTreeSet<String>,
}

impl ApplyProgress {
    /// A fresh, empty progress record.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters so far, with `files_written` filled in from the
    /// distinct-path set.
    pub fn report(&self) -> RecoveryReport {
        let mut report = self.report.clone();
        report.files_written = self.files_written.len() as u64;
        report
    }

    /// Timestamp of the dump this progress is based on (0 before any
    /// dump was applied).
    pub fn dump_ts(&self) -> u64 {
        self.report.dump_ts
    }

    /// Timestamp of the newest WAL object applied (0 if none).
    pub fn max_wal_ts(&self) -> u64 {
        self.report.max_wal_ts
    }
}

/// The reusable fetch-and-apply half of recovery. See the module docs.
pub struct ApplyEngine<'a> {
    fs: &'a dyn FileSystem,
    cloud: &'a dyn ObjectStore,
    codec: &'a Codec,
    fanout: &'a FanoutHandle,
}

impl<'a> ApplyEngine<'a> {
    /// Builds an engine over the target file system, the cloud to fetch
    /// from, the codec that seals its objects, and the fan-out handle
    /// that bounds GET concurrency.
    pub fn new(
        fs: &'a dyn FileSystem,
        cloud: &'a dyn ObjectStore,
        codec: &'a Codec,
        fanout: &'a FanoutHandle,
    ) -> Self {
        ApplyEngine {
            fs,
            cloud,
            codec,
            fanout,
        }
    }

    /// Steps 2–5 of Algorithm 1 against a full [`CloudView`]: restore
    /// the most recent complete dump at or before `point`, apply every
    /// surviving WAL object up to `point` in timestamp order, re-apply
    /// the dump's entries (control blocks win over pre-dump log
    /// images), then the incremental checkpoints ascending.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Recovery`] when no usable dump exists; cloud and
    /// codec errors propagate.
    pub fn cold_apply(
        &self,
        view: &CloudView,
        point: u64,
        progress: &mut ApplyProgress,
    ) -> Result<(), GinjaError> {
        // Most recent dump at or before the requested point.
        let (dump_ts, dump_entry) = view
            .db_entries()
            .rfind(|(ts, e)| *ts <= point && e.kind == DbObjectKind::Dump && e.is_complete())
            .ok_or_else(|| GinjaError::Recovery("no usable dump in the cloud".into()))?;
        progress.report.dump_ts = dump_ts;
        let dump_bundle = self.fetch_bundle(dump_entry, progress)?;
        self.apply_dump_bundle(&dump_bundle, progress)?;

        // Every surviving WAL object, in timestamp order (see the
        // recovery module docs: even objects older than the dump may
        // hold the only copy of records for pages a fuzzy checkpointer
        // had not flushed when the dump was taken, and gaps do not stop
        // application).
        let wal_jobs: Vec<WalObjectName> = view
            .wal_entries()
            .take_while(|wal| wal.ts <= point)
            .cloned()
            .collect();
        self.apply_wal_objects(wal_jobs, progress)?;

        // The dump's entries again (writes only, no delete): its
        // checkpoint control block — which for InnoDB lives inside a
        // WAL file — must override whatever pre-dump log images just
        // rewrote it.
        self.rewrite_bundle(&dump_bundle)?;

        // Incremental checkpoints newer than the dump, ascending —
        // last, so their data pages and checkpoint control blocks are
        // the final word.
        let ckpts: Vec<(u64, &DbEntry)> = view
            .checkpoints_after(dump_ts)
            .into_iter()
            .take_while(|(ts, _)| *ts <= point)
            .collect();
        self.apply_checkpoints(&ckpts, progress)
    }

    /// Fetches and decodes one multi-part DB bundle, with the parts
    /// fanned out across the handle's width.
    ///
    /// # Errors
    ///
    /// Cloud and codec errors propagate; a malformed bundle is a
    /// [`GinjaError::Codec`].
    pub fn fetch_bundle(
        &self,
        entry: &DbEntry,
        progress: &mut ApplyProgress,
    ) -> Result<Vec<bundle::FileRange>, GinjaError> {
        let names: Vec<String> = entry.parts.iter().map(|p| p.to_name()).collect();
        let fetched = self.fanout.run_collect(names, |_, name| {
            let sealed = self.cloud.get(&name)?;
            let data = self.codec.open(&name, &sealed)?;
            Ok::<_, GinjaError>((sealed.len() as u64, data))
        })?;
        let mut parts = Vec::with_capacity(fetched.len());
        for (sealed_len, data) in fetched {
            progress.report.bytes_downloaded += sealed_len;
            parts.push(data);
        }
        bundle::decode(&bundle::reassemble(parts))
    }

    /// Applies a decoded dump bundle: dumps carry whole files, so any
    /// stale local content is replaced — the file is deleted on the
    /// first entry for each path (a merged dump may carry later
    /// incremental ranges for the same file), then the ranges written.
    ///
    /// # Errors
    ///
    /// File-system errors propagate.
    pub fn apply_dump_bundle(
        &self,
        dump_bundle: &[bundle::FileRange],
        progress: &mut ApplyProgress,
    ) -> Result<(), GinjaError> {
        for range in dump_bundle {
            if progress.files_written.insert(range.path.clone()) {
                self.fs.delete(&range.path)?;
            }
            self.fs
                .write(&range.path, range.offset, &range.data, false)?;
        }
        Ok(())
    }

    /// Re-writes a decoded bundle's ranges (no deletes): used to
    /// re-apply the dump after the WAL pass so its control blocks win.
    ///
    /// # Errors
    ///
    /// File-system errors propagate.
    pub fn rewrite_bundle(&self, dump_bundle: &[bundle::FileRange]) -> Result<(), GinjaError> {
        for range in dump_bundle {
            self.fs
                .write(&range.path, range.offset, &range.data, false)?;
        }
        Ok(())
    }

    /// Fetches and applies the given WAL objects. Workers prefetch
    /// GET+open up to the fan-out width ahead; the reorder buffer
    /// delivers each object to the apply step strictly in input order —
    /// pass the jobs in timestamp order and the rebuilt file content is
    /// byte-identical to a serial pass.
    ///
    /// # Errors
    ///
    /// Cloud, codec and file-system errors propagate.
    pub fn apply_wal_objects(
        &self,
        wal_jobs: Vec<WalObjectName>,
        progress: &mut ApplyProgress,
    ) -> Result<(), GinjaError> {
        let report = &mut progress.report;
        let files_written = &mut progress.files_written;
        self.fanout.run_ordered(
            wal_jobs,
            |_, wal| {
                let name = wal.to_name();
                let sealed = self.cloud.get(&name)?;
                let data = self.codec.open(&name, &sealed)?;
                Ok::<_, GinjaError>((wal, sealed.len() as u64, data))
            },
            |_, (wal, sealed_len, data)| {
                report.bytes_downloaded += sealed_len;
                self.fs.write(&wal.file, wal.offset, &data, false)?;
                files_written.insert(wal.file.clone());
                report.wal_objects_applied += 1;
                report.max_wal_ts = report.max_wal_ts.max(wal.ts);
                Ok(())
            },
        )
    }

    /// Fetches and applies checkpoint entries ascending. Checkpoints
    /// are typically many small single-part objects, so the parts are
    /// flattened across entries into one fan-out wave; each bundle is
    /// decoded and applied only after the wave, oldest first, so a
    /// decode error on entry *k* cannot leave entries > *k*
    /// half-applied out of order.
    ///
    /// # Errors
    ///
    /// Cloud, codec and file-system errors propagate.
    pub fn apply_checkpoints(
        &self,
        ckpts: &[(u64, &DbEntry)],
        progress: &mut ApplyProgress,
    ) -> Result<(), GinjaError> {
        let mut ckpt_jobs: Vec<(usize, usize, String)> = Vec::new();
        let mut ckpt_parts: Vec<Vec<Vec<u8>>> = Vec::new();
        for (_, entry) in ckpts {
            let idx = ckpt_parts.len();
            ckpt_parts.push(vec![Vec::new(); entry.parts.len()]);
            for (j, part) in entry.parts.iter().enumerate() {
                ckpt_jobs.push((idx, j, part.to_name()));
            }
        }
        let n_ckpts = ckpt_parts.len();
        let report = &mut progress.report;
        self.fanout.run_ordered(
            ckpt_jobs,
            |_, (entry_idx, part_idx, name)| {
                let sealed = self.cloud.get(&name)?;
                let data = self.codec.open(&name, &sealed)?;
                Ok::<_, GinjaError>((entry_idx, part_idx, sealed.len() as u64, data))
            },
            |_, (entry_idx, part_idx, sealed_len, data)| {
                report.bytes_downloaded += sealed_len;
                ckpt_parts[entry_idx][part_idx] = data;
                Ok(())
            },
        )?;
        for parts in ckpt_parts {
            for range in bundle::decode(&bundle::reassemble(parts))? {
                self.fs
                    .write(&range.path, range.offset, &range.data, false)?;
                progress.files_written.insert(range.path);
            }
        }
        progress.report.checkpoints_applied += n_ckpts as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GinjaConfig;
    use crate::names::DbObjectName;
    use ginja_cloud::MemStore;
    use ginja_vfs::MemFs;

    fn seal_wal(cloud: &MemStore, codec: &Codec, ts: u64, file: &str, offset: u64, data: &[u8]) {
        let name = WalObjectName {
            ts,
            file: file.into(),
            offset,
            len: data.len() as u64,
        };
        let sealed = codec.seal(&name.to_name(), data).unwrap();
        cloud.put(&name.to_name(), &sealed).unwrap();
    }

    fn seal_db(
        cloud: &MemStore,
        codec: &Codec,
        ts: u64,
        kind: DbObjectKind,
        path: &str,
        data: &[u8],
    ) {
        let bytes = bundle::encode(&[bundle::FileRange {
            path: path.into(),
            offset: 0,
            data: data.to_vec(),
        }]);
        let name = DbObjectName {
            ts,
            kind,
            size: bytes.len() as u64,
            part: 0,
            parts: 1,
        };
        let sealed = codec.seal(&name.to_name(), &bytes).unwrap();
        cloud.put(&name.to_name(), &sealed).unwrap();
    }

    #[test]
    fn incremental_passes_match_cold_apply() {
        // Apply a bucket in two different ways — one cold_apply vs a
        // cold base plus incremental WAL/checkpoint passes — and the
        // shadow contents must agree.
        let config = GinjaConfig::builder().build().unwrap();
        let codec = Codec::new(config.codec.clone());
        let cloud = MemStore::new();
        seal_db(&cloud, &codec, 0, DbObjectKind::Dump, "base/1", b"AAAA");
        seal_wal(&cloud, &codec, 1, "pg_xlog/0001", 0, b"w1");
        seal_wal(&cloud, &codec, 2, "pg_xlog/0001", 2, b"w2");
        seal_db(&cloud, &codec, 2, DbObjectKind::Checkpoint, "base/1", b"BB");

        let fanout = FanoutHandle::solo(2);

        let cold_fs = MemFs::new();
        let cold_engine = ApplyEngine::new(&cold_fs, &cloud, &codec, &fanout);
        let view = CloudView::from_listing(cloud.list("").unwrap()).unwrap();
        let mut cold = ApplyProgress::new();
        cold_engine.cold_apply(&view, u64::MAX, &mut cold).unwrap();

        // Incremental: base = dump only, then WAL one at a time, then
        // the checkpoint as its own pass.
        let inc_fs = MemFs::new();
        let engine = ApplyEngine::new(&inc_fs, &cloud, &codec, &fanout);
        let mut progress = ApplyProgress::new();
        let (dump_ts, dump_entry) = view
            .db_entries()
            .rfind(|(_, e)| e.kind == DbObjectKind::Dump && e.is_complete())
            .unwrap();
        progress.report.dump_ts = dump_ts;
        let dump = engine.fetch_bundle(dump_entry, &mut progress).unwrap();
        engine.apply_dump_bundle(&dump, &mut progress).unwrap();
        engine.rewrite_bundle(&dump).unwrap();
        for wal in view.wal_entries() {
            engine
                .apply_wal_objects(vec![wal.clone()], &mut progress)
                .unwrap();
        }
        engine
            .apply_checkpoints(&view.checkpoints_after(dump_ts), &mut progress)
            .unwrap();

        use ginja_vfs::FileSystem;
        assert_eq!(
            cold_fs.read_all("base/1").unwrap(),
            inc_fs.read_all("base/1").unwrap()
        );
        assert_eq!(
            cold_fs.read_all("pg_xlog/0001").unwrap(),
            inc_fs.read_all("pg_xlog/0001").unwrap()
        );
        assert_eq!(cold.report().files_written, progress.report().files_written);
        assert_eq!(cold.report().wal_objects_applied, 2);
        assert_eq!(progress.max_wal_ts(), 2);
        assert_eq!(progress.dump_ts(), 0);
    }

    #[test]
    fn cold_apply_without_dump_is_an_error() {
        let config = GinjaConfig::builder().build().unwrap();
        let codec = Codec::new(config.codec.clone());
        let cloud = MemStore::new();
        let fs = MemFs::new();
        let fanout = FanoutHandle::solo(2);
        let engine = ApplyEngine::new(&fs, &cloud, &codec, &fanout);
        let err = engine
            .cold_apply(&CloudView::new(), u64::MAX, &mut ApplyProgress::new())
            .unwrap_err();
        assert!(matches!(err, GinjaError::Recovery(_)));
    }
}
