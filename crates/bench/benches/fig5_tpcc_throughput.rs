//! Figure 5: influence of different configurations (Batch and Safety)
//! on the throughput of PostgreSQL and MySQL running TPC-C over Ginja.
//!
//! Columns per DBMS: the native file system (ext4), a pass-through
//! user-space file system (FUSE), Ginja at S ∈ {10⁴,10³,10²,10} with
//! the B values the paper plots under each group, and the No-Loss
//! configuration (B = S = 1, synchronous replication).
//!
//! All times are simulated (see `ginja_bench::timescale`); throughputs
//! are reported in simulated transactions per minute, directly
//! comparable to the paper's bars.

use std::time::Duration;

use ginja_bench::rig::{template, BaselineKind, ProtectedRig, RigOptions};
use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, sim_minutes, time_scale, to_sim_per_minute};
use ginja_core::GinjaConfig;
use ginja_db::ProfileKind;
use ginja_workload::TpccScale;

fn ginja_config(batch: usize, safety: usize) -> GinjaConfig {
    let scale = time_scale();
    GinjaConfig::builder()
        .batch(batch)
        .safety(safety)
        .batch_timeout(Duration::from_secs_f64(5.0 * scale))
        .safety_timeout(Duration::from_secs_f64(30.0 * scale))
        .uploaders(5)
        .build()
        .expect("valid config")
}

struct Column {
    label: &'static str,
    baseline: BaselineKind,
    batch: usize,
    safety: usize,
}

fn columns() -> Vec<Column> {
    let mut cols = vec![
        Column {
            label: "ext4",
            baseline: BaselineKind::Native,
            batch: 1,
            safety: 1,
        },
        Column {
            label: "FUSE",
            baseline: BaselineKind::Fuse,
            batch: 1,
            safety: 1,
        },
    ];
    for (safety, batches) in [
        (10_000, vec![1000, 100, 10]),
        (1_000, vec![100, 10, 1]),
        (100, vec![10, 1]),
        (10, vec![1]),
    ] {
        for batch in batches {
            cols.push(Column {
                label: "",
                baseline: BaselineKind::Ginja,
                batch,
                safety,
            });
        }
    }
    cols.push(Column {
        label: "No-Loss",
        baseline: BaselineKind::Ginja,
        batch: 1,
        safety: 1,
    });
    cols
}

fn run_dbms(kind: ProfileKind) -> Vec<(String, f64, f64)> {
    let (warehouses, name) = match kind {
        ProfileKind::Postgres => (1, "PostgreSQL"),
        ProfileKind::MySql => (2, "MySQL"),
    };
    println!(
        "\n== Figure 5{}: {name}, TPC-C, {} warehouse(s), {:.1} simulated minutes ==",
        if kind == ProfileKind::Postgres {
            "a"
        } else {
            "b"
        },
        warehouses,
        sim_minutes(),
    );
    let template_fs = template(kind, warehouses, TpccScale::bench(), 0xF15);

    // Warm up (page cache, allocator, CPU governor) with a throwaway
    // run so the first measured column is not penalized.
    {
        let warm = ProtectedRig::build(
            &template_fs,
            match kind {
                ProfileKind::Postgres => RigOptions::postgres(ginja_config(100, 1000)),
                ProfileKind::MySql => RigOptions::mysql(ginja_config(100, 1000)),
            }
            .baseline(BaselineKind::Native),
        );
        let _ = warm.run(Duration::from_millis(500));
        let _ = warm.finish();
    }

    let mut results = Vec::new();
    for col in columns() {
        let label = if col.label.is_empty() {
            format!("S={} B={}", col.safety, col.batch)
        } else {
            col.label.to_string()
        };
        let mut options = match kind {
            ProfileKind::Postgres => RigOptions::postgres(ginja_config(col.batch, col.safety)),
            ProfileKind::MySql => RigOptions::mysql(ginja_config(col.batch, col.safety)),
        };
        options = options.baseline(col.baseline);
        let rig = ProtectedRig::build(&template_fs, options);
        let report = rig.run(run_wall_duration());
        let (_stats, _usage) = rig.finish();
        let tpm_total = to_sim_per_minute(report.tpm_total());
        let tpm_c = to_sim_per_minute(report.tpm_c());
        results.push((label, tpm_c, tpm_total));
    }
    results
}

fn print_results(name: &str, results: &[(String, f64, f64)], paper_totals: &[(&str, f64)]) {
    let mut t = Table::new(&[
        "configuration",
        "Tpm-C",
        "Tpm-Total",
        "% of FUSE",
        "paper Tpm-Total",
    ]);
    let fuse_total = results[1].2;
    for (label, tpm_c, tpm_total) in results {
        let paper = paper_totals
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| fmt(*v, 0))
            .unwrap_or_default();
        t.row(&[
            label.clone(),
            fmt(*tpm_c, 0),
            fmt(*tpm_total, 0),
            fmt(tpm_total / fuse_total * 100.0, 1),
            paper,
        ]);
    }
    println!();
    t.print();

    // Shape assertions (the claims §8.1 makes from this figure).
    let ext4 = results[0].2;
    let fuse = results[1].2;
    // "For sufficiently high values of B and S, Ginja introduces a small
    // performance loss": take the best of the high-B/S columns.
    let best_ginja = results[2..7].iter().map(|r| r.2).fold(0.0f64, f64::max);
    let no_loss = results.last().unwrap().2;
    // Tolerate a few percent of run-to-run noise (shared machines).
    assert!(
        fuse < ext4 * 1.05,
        "{name}: FUSE must not beat ext4 ({fuse} vs {ext4})"
    );
    assert!(
        best_ginja > fuse * 0.8,
        "{name}: high B/S Ginja should be within ~20% of FUSE (got {best_ginja} vs {fuse})"
    );
    assert!(
        no_loss < fuse * 0.1,
        "{name}: No-Loss must collapse throughput (got {no_loss} vs {fuse})"
    );
    // Small S with small B degrades throughput monotonically-ish.
    let s10000_b10 = results[4].2;
    assert!(
        no_loss < s10000_b10,
        "{name}: No-Loss must be the slowest Ginja configuration"
    );
    println!(
        "shape check: ext4 > FUSE >= Ginja(high B,S) >> No-Loss  ({:.0} > {:.0} ~ {:.0} >> {:.0})",
        ext4, fuse, best_ginja, no_loss
    );
}

fn main() {
    println!(
        "time scale: {} | simulated minutes per run: {}",
        time_scale(),
        sim_minutes()
    );

    // Paper bar heights (approximate, read off Figure 5).
    let pg_paper: &[(&str, f64)] = &[
        ("ext4", 6430.0),
        ("FUSE", 5970.0),
        ("S=10000 B=1000", 5750.0),
        ("No-Loss", 248.0),
    ];
    let ms_paper: &[(&str, f64)] = &[
        ("ext4", 11700.0),
        ("FUSE", 10300.0),
        ("S=10000 B=1000", 10200.0),
        ("No-Loss", 348.0),
    ];

    let pg = run_dbms(ProfileKind::Postgres);
    print_results("PostgreSQL", &pg, pg_paper);

    let ms = run_dbms(ProfileKind::MySql);
    print_results("MySQL", &ms, ms_paper);
}
