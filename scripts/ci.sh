#!/usr/bin/env bash
# CI gate: formatting, lints, tests. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
# The DR-sentinel acceptance scenario, run on its own so a chaos
# regression is unmissable in the log.
cargo test -q --test sentinel_chaos -- --nocapture
