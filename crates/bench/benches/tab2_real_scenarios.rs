//! Table 2: costs of cloud-based disaster recovery with AWS using Ginja
//! vs. database replication in VMs, for the two real clinical-system
//! deployments (a laboratory and a hospital), plus the §7.3 recovery
//! costs.

use ginja_bench::table::{fmt, Table};
use ginja_cost::scenarios::{hospital, laboratory};
use ginja_cost::Ec2Pricing;

fn main() {
    println!("== Table 2: Ginja vs. VM-based DR, real application scenarios ==\n");
    let ec2 = Ec2Pricing::may_2017();

    let mut t = Table::new(&[
        "configuration",
        "Ginja 1 sync/m",
        "paper",
        "Ginja 6 sync/m",
        "paper",
        "EC2 VM",
        "paper",
    ]);
    let rows = [
        (
            laboratory(),
            "Laboratory (10GB, 6 up/min)",
            0.42,
            1.50,
            93.4,
        ),
        (hospital(), "Hospital (1TB, 138 up/min)", 20.3, 21.4, 291.5),
    ];
    for (scenario, label, p1, p6, pvm) in &rows {
        t.row(&[
            label.to_string(),
            format!("${}", fmt(scenario.ginja_cost(1.0), 2)),
            format!("${p1}"),
            format!("${}", fmt(scenario.ginja_cost(6.0), 2)),
            format!("${p6}"),
            format!("${}", fmt(scenario.vm_cost(&ec2), 1)),
            format!("${pvm}"),
        ]);
    }
    t.print();

    println!("\n-- Savings factors (paper: 62x-222x laboratory, 14x hospital) --");
    let lab = laboratory();
    let hosp = hospital();
    println!(
        "  laboratory: {:.0}x (1 sync/m) ... {:.0}x (6 sync/m)",
        lab.vm_cost(&ec2) / lab.ginja_cost(1.0),
        lab.vm_cost(&ec2) / lab.ginja_cost(6.0),
    );
    println!(
        "  hospital:   {:.0}x (1 sync/m)",
        hosp.vm_cost(&ec2) / hosp.ginja_cost(1.0)
    );

    println!("\n-- Section 7.3 recovery costs (paper: $1.125 laboratory, $112.5 hospital) --");
    let mut t = Table::new(&["scenario", "recovery $", "paper"]);
    t.row(&[
        "Laboratory".into(),
        format!("${}", fmt(lab.recovery_cost_paper_arithmetic(), 3)),
        "$1.125".into(),
    ]);
    t.row(&[
        "Hospital".into(),
        format!("${}", fmt(hosp.recovery_cost_paper_arithmetic(), 1)),
        "$112.5".into(),
    ]);
    t.print();
    println!("\n(intra-region recovery to an EC2 VM is free: S3->EC2 egress costs $0)");

    // Headline claim of the abstract: up to 222x less than the
    // traditional approach; at least 14x in the worst scenario.
    let min_factor = hosp.vm_cost(&ec2) / hosp.ginja_cost(6.0);
    let max_factor = lab.vm_cost(&ec2) / lab.ginja_cost(1.0);
    assert!(min_factor > 10.0, "min factor {min_factor}");
    assert!(
        (200.0..=240.0).contains(&max_factor),
        "max factor {max_factor}"
    );
    println!(
        "\nheadline check: Ginja is {min_factor:.0}x-{max_factor:.0}x cheaper (paper: 14x-222x)"
    );
}
