use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::{ObjectStore, StoreError};

/// The operation kinds a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Object uploads.
    Put,
    /// Object downloads.
    Get,
    /// Object deletions.
    Delete,
    /// Listings.
    List,
}

/// What class of [`StoreError`] an injected fault produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A retryable [`StoreError::Injected`] (transient provider error).
    Transient,
    /// A non-retryable `Unavailable { retryable: false }`
    /// (misconfiguration-class failure that retries must not mask).
    Fatal,
    /// A [`StoreError::Throttled`] carrying this pacing hint.
    Throttled(Option<Duration>),
}

impl FaultKind {
    fn to_error(self, op: OpKind, name: &str) -> StoreError {
        match self {
            FaultKind::Transient => {
                StoreError::Injected(format!("scheduled {op:?} failure for {name}"))
            }
            FaultKind::Fatal => {
                StoreError::fatal(format!("scheduled fatal {op:?} failure for {name}"))
            }
            FaultKind::Throttled(retry_after) => {
                StoreError::throttled(format!("scheduled {op:?} throttle for {name}"), retry_after)
            }
        }
    }
}

#[derive(Debug)]
struct Rule {
    op: OpKind,
    name_contains: Option<String>,
    /// How many matching operations to fail before the rule expires;
    /// `usize::MAX` means forever.
    remaining: AtomicUsize,
    /// Chance in [0, 1] that a matching operation trips this rule;
    /// counted rules use 1.0 (always trip while budget remains).
    probability: f64,
    /// splitmix64 state for probabilistic draws (deterministic per seed).
    draw_state: AtomicU64,
    kind: FaultKind,
}

impl Rule {
    fn counted(op: OpKind, name_contains: Option<String>, n: usize, kind: FaultKind) -> Self {
        Rule {
            op,
            name_contains,
            remaining: AtomicUsize::new(n),
            probability: 1.0,
            draw_state: AtomicU64::new(0),
            kind,
        }
    }

    /// Deterministic uniform draw in [0, 1).
    fn draw(&self) -> f64 {
        let state = self
            .draw_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::SeqCst)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A programmable schedule of failures shared with a [`FaultStore`].
///
/// Used by the crash-consistency tests and the disaster experiments:
/// e.g. "fail the next 3 PUTs of WAL objects", "the cloud is down from
/// now on", or "drop every DELETE" (to test garbage-collection retry).
///
/// ```rust
/// use std::sync::Arc;
/// use ginja_cloud::{FaultPlan, FaultStore, MemStore, ObjectStore, OpKind};
///
/// let plan = Arc::new(FaultPlan::new());
/// let store = FaultStore::new(MemStore::new(), plan.clone());
/// plan.fail_next(OpKind::Put, 1);
/// assert!(store.put("a", b"x").is_err());
/// assert!(store.put("a", b"x").is_ok());
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Mutex<Vec<Rule>>,
    /// When set, every operation fails (provider outage).
    outage: AtomicBool,
    injected: AtomicUsize,
}

impl FaultPlan {
    /// A plan with no scheduled faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails the next `n` operations of kind `op` (any object name)
    /// with a retryable injected error.
    pub fn fail_next(&self, op: OpKind, n: usize) {
        self.rules
            .lock()
            .push(Rule::counted(op, None, n, FaultKind::Transient));
    }

    /// Fails the next `n` operations of kind `op` whose object name
    /// contains `fragment`.
    pub fn fail_matching(&self, op: OpKind, fragment: impl Into<String>, n: usize) {
        self.rules.lock().push(Rule::counted(
            op,
            Some(fragment.into()),
            n,
            FaultKind::Transient,
        ));
    }

    /// Fails each operation of kind `op` independently with probability
    /// `p`, forever (until [`FaultPlan::clear`]). Draws are
    /// deterministic for a given `seed`, so chaos runs reproduce.
    pub fn fail_randomly(&self, op: OpKind, p: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability must be in [0, 1]"
        );
        self.rules.lock().push(Rule {
            op,
            name_contains: None,
            remaining: AtomicUsize::new(usize::MAX),
            probability: p,
            draw_state: AtomicU64::new(seed),
            kind: FaultKind::Transient,
        });
    }

    /// Fails the next `n` operations of kind `op` with a *non-retryable*
    /// error, for testing that fatal failures punch through retry layers.
    pub fn fail_fatally(&self, op: OpKind, n: usize) {
        self.rules
            .lock()
            .push(Rule::counted(op, None, n, FaultKind::Fatal));
    }

    /// Throttles the next `n` operations of kind `op`, attaching
    /// `retry_after` as the backend pacing hint.
    pub fn throttle_next(&self, op: OpKind, n: usize, retry_after: Option<Duration>) {
        self.rules.lock().push(Rule::counted(
            op,
            None,
            n,
            FaultKind::Throttled(retry_after),
        ));
    }

    /// Removes all scheduled rules (outage state is unaffected).
    pub fn clear(&self) {
        self.rules.lock().clear();
    }

    /// Simulates a full provider outage (every operation fails) until
    /// [`FaultPlan::restore`] is called.
    pub fn outage(&self) {
        self.outage.store(true, Ordering::SeqCst);
    }

    /// Ends an outage.
    pub fn restore(&self) {
        self.outage.store(false, Ordering::SeqCst);
    }

    /// Number of operations failed so far.
    pub fn injected_count(&self) -> usize {
        self.injected.load(Ordering::SeqCst)
    }

    fn check(&self, op: OpKind, name: &str) -> Result<(), StoreError> {
        if self.outage.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(StoreError::unavailable("simulated provider outage"));
        }
        let rules = self.rules.lock();
        for rule in rules.iter() {
            if rule.op != op {
                continue;
            }
            if let Some(frag) = &rule.name_contains {
                if !name.contains(frag.as_str()) {
                    continue;
                }
            }
            if rule.probability < 1.0 && rule.draw() >= rule.probability {
                continue;
            }
            // Claim one failure budget atomically.
            let mut cur = rule.remaining.load(Ordering::SeqCst);
            loop {
                if cur == 0 {
                    break;
                }
                let next = if cur == usize::MAX { cur } else { cur - 1 };
                match rule
                    .remaining
                    .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => {
                        self.injected.fetch_add(1, Ordering::SeqCst);
                        return Err(rule.kind.to_error(op, name));
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
        Ok(())
    }
}

/// An [`ObjectStore`] decorator that consults a [`FaultPlan`] before
/// every operation.
#[derive(Debug)]
pub struct FaultStore<S> {
    inner: S,
    plan: std::sync::Arc<FaultPlan>,
}

impl<S: ObjectStore> FaultStore<S> {
    /// Wraps `inner`; faults are scheduled through the shared `plan`.
    pub fn new(inner: S, plan: std::sync::Arc<FaultPlan>) -> Self {
        FaultStore { inner, plan }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The shared fault plan.
    pub fn plan(&self) -> &std::sync::Arc<FaultPlan> {
        &self.plan
    }
}

impl<S: ObjectStore> ObjectStore for FaultStore<S> {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.plan.check(OpKind::Put, name)?;
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.plan.check(OpKind::Get, name)?;
        self.inner.get(name)
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        self.plan.check(OpKind::Delete, name)?;
        self.inner.delete(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        self.plan.check(OpKind::List, prefix)?;
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::sync::Arc;

    fn store_with_plan() -> (FaultStore<MemStore>, Arc<FaultPlan>) {
        let plan = Arc::new(FaultPlan::new());
        (FaultStore::new(MemStore::new(), plan.clone()), plan)
    }

    #[test]
    fn no_faults_passes_through() {
        let (store, plan) = store_with_plan();
        store.put("a", b"1").unwrap();
        assert_eq!(store.get("a").unwrap(), b"1");
        assert_eq!(plan.injected_count(), 0);
    }

    #[test]
    fn fail_next_n_puts() {
        let (store, plan) = store_with_plan();
        plan.fail_next(OpKind::Put, 2);
        assert!(store.put("a", b"1").is_err());
        assert!(store.put("b", b"2").is_err());
        store.put("c", b"3").unwrap();
        assert_eq!(plan.injected_count(), 2);
    }

    #[test]
    fn fail_matching_only_hits_matching_names() {
        let (store, plan) = store_with_plan();
        plan.fail_matching(OpKind::Put, "WAL/", 1);
        store.put("DB/0_dump_1", b"d").unwrap();
        assert!(store.put("WAL/1_f_0", b"w").is_err());
        store.put("WAL/1_f_0", b"w").unwrap();
    }

    #[test]
    fn faults_are_per_op_kind() {
        let (store, plan) = store_with_plan();
        store.put("a", b"1").unwrap();
        plan.fail_next(OpKind::Get, 1);
        store.put("b", b"2").unwrap(); // puts unaffected
        assert!(store.get("a").is_err());
        assert_eq!(store.get("a").unwrap(), b"1");
    }

    #[test]
    fn outage_blocks_everything_until_restore() {
        let (store, plan) = store_with_plan();
        store.put("a", b"1").unwrap();
        plan.outage();
        assert!(store.put("b", b"2").is_err());
        assert!(store.get("a").is_err());
        assert!(store.list("").is_err());
        assert!(store.delete("a").is_err());
        plan.restore();
        assert_eq!(store.get("a").unwrap(), b"1");
    }

    #[test]
    fn forever_rule_with_usize_max() {
        let (store, plan) = store_with_plan();
        plan.fail_next(OpKind::Delete, usize::MAX);
        for _ in 0..10 {
            assert!(store.delete("x").is_err());
        }
    }

    #[test]
    fn injected_errors_are_retryable() {
        let (store, plan) = store_with_plan();
        plan.fail_next(OpKind::Put, 1);
        let err = store.put("a", b"1").unwrap_err();
        assert!(err.is_retryable());
    }

    #[test]
    fn fail_randomly_matches_probability_roughly() {
        let (store, plan) = store_with_plan();
        plan.fail_randomly(OpKind::Put, 0.2, 42);
        let mut failures = 0;
        for i in 0..1000 {
            if store.put(&format!("o{i}"), b"x").is_err() {
                failures += 1;
            }
        }
        assert!(
            (100..300).contains(&failures),
            "got {failures} failures for p=0.2"
        );
        plan.clear();
        store.put("after-clear", b"x").unwrap();
    }

    #[test]
    fn fail_randomly_is_deterministic_per_seed() {
        let run = |seed| {
            let (store, plan) = store_with_plan();
            plan.fail_randomly(OpKind::Put, 0.5, seed);
            (0..64)
                .map(|i| store.put(&format!("o{i}"), b"x").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fatal_faults_are_not_retryable() {
        let (store, plan) = store_with_plan();
        plan.fail_fatally(OpKind::Put, 1);
        let err = store.put("a", b"1").unwrap_err();
        assert!(!err.is_retryable());
        store.put("a", b"1").unwrap();
    }

    #[test]
    fn throttle_faults_carry_retry_after() {
        let (store, plan) = store_with_plan();
        let hint = Duration::from_millis(40);
        plan.throttle_next(OpKind::Put, 1, Some(hint));
        let err = store.put("a", b"1").unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(err.retry_after(), Some(hint));
    }

    #[test]
    fn concurrent_budget_not_overspent() {
        let (store, plan) = store_with_plan();
        let store = Arc::new(store);
        plan.fail_next(OpKind::Put, 10);
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut failures = 0;
                for i in 0..25 {
                    if store.put(&format!("o-{t}-{i}"), b"x").is_err() {
                        failures += 1;
                    }
                }
                failures
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(plan.injected_count(), 10);
    }
}
