//! Sentinel chaos test — the acceptance scenario for the DR sentinel:
//! a TPC-C run suffers a persistent GC-delete fault (leaking garbage),
//! then direct object corruption, deletion, and an injected orphan.
//! The deferred-delete backlog must drain the leak, the sentinel must
//! detect all three anomaly classes and heal them through the
//! resilient store, a rehearsal must report a nonzero achieved RTO and
//! an RPO within the Safety bound, and a subsequent disaster recovery
//! must be zero-loss.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use ginja::cloud::{FaultPlan, FaultStore, MemStore, ObjectStore, OpKind};
use ginja::core::{recover_into, Ginja, GinjaConfig, RetryConfig, SentinelConfig};
use ginja::db::{Database, DbProfile};
use ginja::sentinel::{AnomalyKind, Sentinel};
use ginja::vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
use ginja::workload::{probe_tpcc, Tpcc, TpccScale};

#[test]
fn sentinel_detects_and_heals_chaos_damage() {
    // Checkpoints only on demand, so the test controls when GC runs.
    let profile = DbProfile::postgres_small().with_checkpoint_every(100_000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).unwrap();
    let mut tpcc = Tpcc::new(1, 0xD1257, TpccScale::tiny());
    tpcc.create_schema(&db).unwrap();
    tpcc.load(&db).unwrap();
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    let config = GinjaConfig::builder()
        .batch(4)
        .safety(64)
        .batch_timeout(Duration::from_millis(5))
        .safety_timeout(Duration::from_secs(30))
        .retry(RetryConfig {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(10),
            breaker_threshold: 0, // isolate the fault from the breaker
            ..RetryConfig::default()
        })
        .sentinel(SentinelConfig {
            scrub_sample: 0, // verify every payload every cycle
            ..SentinelConfig::default()
        })
        .build()
        .unwrap();
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .unwrap();
    let sentinel = Sentinel::new(&ginja);
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).unwrap();

    // --- Phase 1: healthy traffic, one checkpoint. -------------------
    for _ in 0..40 {
        tpcc.run_transaction(&db).unwrap();
    }
    db.checkpoint().unwrap();
    assert!(ginja.sync(Duration::from_secs(30)));

    // --- Phase 2: the GC leak. Every DELETE fails persistently, so
    // the checkpoint's garbage collection must defer instead of leak
    // forever. -------------------------------------------------------
    plan.fail_matching(OpKind::Delete, "", 1_000_000);
    for _ in 0..30 {
        tpcc.run_transaction(&db).unwrap();
    }
    db.checkpoint().unwrap();
    assert!(ginja.sync(Duration::from_secs(30)));
    plan.clear();

    let stats = ginja.stats();
    assert!(
        stats.gc_deletes_deferred > 0,
        "failed deletes must be deferred, not dropped: {stats:?}"
    );
    assert!(stats.gc_backlog > 0, "backlog must be queued: {stats:?}");
    // The leak is visible in the bucket: objects the view no longer
    // tracks survived their DELETE.
    let tracked: BTreeSet<String> = {
        let view = ginja.view();
        let mut names: BTreeSet<String> = view.wal_entries().map(|w| w.to_name()).collect();
        for (_, entry) in view.db_entries() {
            names.extend(entry.parts.iter().map(|p| p.to_name()));
        }
        names
    };
    let leaked: Vec<String> = mem
        .list("")
        .unwrap()
        .into_iter()
        .filter(|n| !tracked.contains(n))
        .collect();
    assert!(!leaked.is_empty(), "the delete fault must leak garbage");

    // The next checkpoint's GC pass drains the backlog (satellite 1).
    for _ in 0..10 {
        tpcc.run_transaction(&db).unwrap();
    }
    db.checkpoint().unwrap();
    assert!(ginja.sync(Duration::from_secs(30)));
    assert_eq!(
        ginja.stats().gc_backlog,
        0,
        "backlog must drain once deletes succeed again"
    );
    for name in &leaked {
        assert!(
            mem.get(name).is_err(),
            "deferred delete must eventually remove {name}"
        );
    }

    // --- Phase 3: direct damage to the bucket — one tracked WAL
    // object corrupted, another deleted, plus an orphan that a failed
    // GC delete could have left. --------------------------------------
    for _ in 0..20 {
        tpcc.run_transaction(&db).unwrap();
    }
    assert!(ginja.sync(Duration::from_secs(30)));

    let wal_names: Vec<String> = ginja.view().wal_entries().map(|w| w.to_name()).collect();
    assert!(wal_names.len() >= 2, "need at least two live WAL objects");
    let corrupt_victim = wal_names[0].clone();
    let delete_victim = wal_names[wal_names.len() - 1].clone();
    let mut sealed = mem.get(&corrupt_victim).unwrap();
    let mid = sealed.len() / 2;
    sealed[mid] ^= 0x11;
    mem.put(&corrupt_victim, &sealed).unwrap();
    mem.delete(&delete_victim).unwrap();
    let orphan = "WAL/1000000_pg_xlog/feedcafe_0_4";
    mem.put(orphan, b"junk").unwrap();

    // --- Phase 4: the sentinel detects all three classes and heals
    // them through the resilient store. -------------------------------
    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(cycle.scrub.count(AnomalyKind::Corrupt), 1, "{cycle:?}");
    assert_eq!(cycle.scrub.count(AnomalyKind::MissingWal), 1, "{cycle:?}");
    assert_eq!(cycle.scrub.count(AnomalyKind::Orphan), 1, "{cycle:?}");
    let mut expected = vec![corrupt_victim.clone(), delete_victim.clone()];
    expected.sort();
    let mut uploaded = cycle.repair.uploaded.clone();
    uploaded.sort();
    assert_eq!(uploaded, expected, "both damaged objects re-uploaded");
    assert!(cycle.repair.failed.is_empty(), "{cycle:?}");
    assert!(!ginja.exposure().degraded);

    // Second cycle: clean inventory, and the quarantined orphan sweeps.
    let cycle = sentinel.run_cycle().unwrap();
    assert_eq!(
        cycle.repair.orphans_deleted,
        vec![orphan.to_string()],
        "{cycle:?}"
    );
    assert!(mem.get(orphan).is_err(), "orphan must be gone");
    assert!(sentinel.run_cycle().unwrap().scrub.is_clean());

    let snap = ginja.stats().sentinel;
    assert!(snap.anomalies_missing >= 1, "{snap:?}");
    assert!(snap.anomalies_corrupt >= 1, "{snap:?}");
    assert!(snap.anomalies_orphan >= 1, "{snap:?}");
    assert_eq!(snap.repairs_uploaded, 2, "{snap:?}");
    assert_eq!(snap.orphans_deleted, 1, "{snap:?}");
    assert_eq!(snap.repairs_failed, 0, "{snap:?}");
    assert!(!snap.degraded, "{snap:?}");

    // --- Phase 5: rehearsal — achieved RTO nonzero, achieved RPO
    // within the Safety bound, all exposed via GinjaStatsSnapshot. -----
    let rehearsal = sentinel.rehearse().unwrap();
    assert!(rehearsal.restorable(), "{rehearsal:?}");
    let snap = ginja.stats().sentinel;
    assert_eq!(snap.rehearsals, 1);
    assert!(snap.last_rto > Duration::ZERO, "{snap:?}");
    assert!(snap.last_rpo_within_bound, "{snap:?}");
    assert!(
        (snap.last_rpo_updates as usize) <= config.safety,
        "{snap:?}"
    );

    // --- Phase 6: disaster. Recovery from the healed bucket must be
    // zero-loss. ------------------------------------------------------
    assert!(ginja.sync(Duration::from_secs(30)));
    ginja.shutdown();
    let reference_stock = db.dump_table(ginja::workload::tables::STOCK).unwrap();
    drop(db);

    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).unwrap();
    let db = Database::open(rebuilt, profile).unwrap();
    assert_eq!(
        db.dump_table(ginja::workload::tables::STOCK).unwrap(),
        reference_stock,
        "recovery after sentinel healing must be zero-loss"
    );
    let probe = probe_tpcc(&db).unwrap();
    assert!(probe.is_consistent(), "{probe:?}");
}
