//! The Continuous-Archiving baseline (paper §9, Related Work).
//!
//! PostgreSQL's built-in disaster-tolerance mechanism "consists of
//! performing a file-system-level backup of the database directory and
//! setting a process (the archiver) that periodically backs up completed
//! WAL segments … However, the archiver process only operates over
//! completed WAL segments, and thus it does not provide any fine-grained
//! control over the RPO."
//!
//! [`SegmentArchiver`] implements exactly that policy behind the same
//! [`IoProcessor`] interception point Ginja uses, so the two can be
//! compared head-to-head: after the same disaster, Ginja loses at most
//! `S` updates while the archiver loses *every* update in the unfinished
//! segment — thousands of them with 16 MB segments (the
//! `baseline_archiver` bench quantifies the gap).

use std::collections::BTreeSet;
use std::sync::Arc;

use ginja_cloud::ObjectStore;
use ginja_codec::Codec;
use ginja_vfs::{DbmsProcessor, FileSystem, IoClass, IoProcessor, WriteEvent};
use parking_lot::Mutex;

use crate::config::GinjaConfig;
use crate::fanout::FanoutExecutor;
use crate::GinjaError;

/// Prefix for archived base-backup files.
const BASE_PREFIX: &str = "ARCHIVE/base/";

/// Prefix for archived completed segments.
const SEG_PREFIX: &str = "ARCHIVE/seg/";

/// Statistics of an archiver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiverStats {
    /// Completed WAL segments uploaded.
    pub segments_archived: u64,
    /// Updates observed in the (never-archived) current segment since
    /// the last completed one — the archiver's data-loss exposure.
    pub updates_since_last_archive: u64,
}

struct ArchiverInner {
    /// Segments already archived.
    archived: BTreeSet<String>,
    /// The segment currently being written.
    current: Option<String>,
    stats: ArchiverStats,
}

/// A completed-segments-only archiver (PostgreSQL `archive_command`
/// semantics) expressed as an [`IoProcessor`].
pub struct SegmentArchiver {
    fs: Arc<dyn FileSystem>,
    cloud: Arc<dyn ObjectStore>,
    processor: Arc<dyn DbmsProcessor>,
    codec: Codec,
    inner: Mutex<ArchiverInner>,
}

impl std::fmt::Debug for SegmentArchiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentArchiver").finish_non_exhaustive()
    }
}

impl SegmentArchiver {
    /// Takes a base backup of the database files and starts archiving.
    ///
    /// # Errors
    ///
    /// File-system, codec and cloud errors propagate.
    pub fn start(
        fs: Arc<dyn FileSystem>,
        cloud: Arc<dyn ObjectStore>,
        processor: Arc<dyn DbmsProcessor>,
        config: &GinjaConfig,
    ) -> Result<Self, GinjaError> {
        let codec = Codec::new(config.codec.clone());
        // Base backup: every database file, plus current WAL segments,
        // sealed and uploaded as one concurrent wave (the backup is a
        // point-in-time copy, so upload order is irrelevant).
        let exec = FanoutExecutor::new(config.recovery_fanout);
        let paths: Vec<String> = fs
            .list("")?
            .into_iter()
            .filter(|p| processor.is_db_file(p) || p.starts_with(processor.wal_prefix()))
            .collect();
        exec.run_collect(paths, |_, path| {
            let name = format!("{BASE_PREFIX}{path}");
            let sealed = codec.seal(&name, &fs.read_all(&path)?)?;
            cloud.put(&name, &sealed)?;
            Ok::<_, GinjaError>(())
        })?;
        Ok(SegmentArchiver {
            fs,
            cloud,
            processor,
            codec,
            inner: Mutex::new(ArchiverInner {
                archived: BTreeSet::new(),
                current: None,
                stats: ArchiverStats::default(),
            }),
        })
    }

    /// Current statistics.
    pub fn stats(&self) -> ArchiverStats {
        self.inner.lock().stats
    }

    fn archive_segment(&self, segment: &str) {
        // Synchronous, as PostgreSQL's archive_command is: read the
        // completed file, seal, upload. Failures leave it unarchived
        // (it will not be retried here — the baseline is deliberately
        // as simple as the mechanism it models).
        let Ok(content) = self.fs.read_all(segment) else {
            return;
        };
        let name = format!("{SEG_PREFIX}{segment}");
        let Ok(sealed) = self.codec.seal(&name, &content) else {
            return;
        };
        if self.cloud.put(&name, &sealed).is_ok() {
            let mut inner = self.inner.lock();
            inner.archived.insert(segment.to_string());
            inner.stats.segments_archived += 1;
            inner.stats.updates_since_last_archive = 0;
        }
    }
}

impl IoProcessor for SegmentArchiver {
    fn on_write(&self, event: &WriteEvent) {
        if self.processor.classify(event) != IoClass::WalAppend {
            return;
        }
        let to_archive = {
            let mut inner = self.inner.lock();
            inner.stats.updates_since_last_archive += 1;
            match inner.current.clone() {
                Some(current) if *current != *event.path => {
                    // The log moved to a new segment: the previous one is
                    // complete and eligible for archiving.
                    inner.current = Some(event.path.to_string());
                    (!inner.archived.contains(&current)).then_some(current)
                }
                None => {
                    inner.current = Some(event.path.to_string());
                    None
                }
                _ => None,
            }
        };
        if let Some(segment) = to_archive {
            self.archive_segment(&segment);
        }
    }
}

/// Restores an archive into `fs`: base backup first, then every
/// archived segment over it.
///
/// # Errors
///
/// Cloud and codec errors propagate.
pub fn restore_archive(
    fs: &dyn FileSystem,
    cloud: &dyn ObjectStore,
    config: &GinjaConfig,
) -> Result<u64, GinjaError> {
    let codec = Codec::new(config.codec.clone());
    let exec = FanoutExecutor::new(config.recovery_fanout);
    let mut files = 0;
    // Base files first, then segments over them — order matters between
    // the prefixes, so each is its own wave. Within a wave the fetches
    // run concurrently and the writes land in listing order.
    for prefix in [BASE_PREFIX, SEG_PREFIX] {
        exec.run_ordered(
            cloud.list(prefix)?,
            |_, name| {
                let sealed = cloud.get(&name)?;
                let data = codec.open(&name, &sealed)?;
                Ok::<_, GinjaError>((name, data))
            },
            |_, (name, data)| {
                let path = name.strip_prefix(prefix).expect("listed by prefix");
                fs.delete(path)?;
                fs.write(path, 0, &data, false)?;
                files += 1;
                Ok(())
            },
        )?;
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_cloud::MemStore;
    use ginja_db::{Database, DbProfile};
    use ginja_vfs::{InterceptFs, MemFs, PostgresProcessor};

    fn config() -> GinjaConfig {
        GinjaConfig::builder().build().unwrap()
    }

    /// Small segments so the test completes several of them.
    fn profile() -> DbProfile {
        let mut p = DbProfile::postgres_small();
        p.wal_segment_size = 16 * 1024;
        p
    }

    fn protected_by_archiver() -> (Database, Arc<SegmentArchiver>, Arc<MemStore>) {
        let local = Arc::new(MemFs::new());
        let db = Database::create(local.clone(), profile()).unwrap();
        db.create_table(1, 64).unwrap();
        drop(db);
        let cloud = Arc::new(MemStore::new());
        let archiver = Arc::new(
            SegmentArchiver::start(
                local.clone(),
                cloud.clone(),
                Arc::new(PostgresProcessor::new()),
                &config(),
            )
            .unwrap(),
        );
        let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, archiver.clone()));
        let db = Database::open(fs, profile()).unwrap();
        (db, archiver, cloud)
    }

    #[test]
    fn archives_completed_segments_only() {
        let (db, archiver, cloud) = protected_by_archiver();
        for i in 0..1000u64 {
            db.put(1, i % 50, format!("v{i:045}").into_bytes()).unwrap();
        }
        let stats = archiver.stats();
        assert!(stats.segments_archived >= 2, "{stats:?}");
        assert!(
            stats.updates_since_last_archive > 0,
            "the tail segment is never archived"
        );
        assert!(!cloud.list("ARCHIVE/seg/").unwrap().is_empty());
    }

    #[test]
    fn restore_loses_the_unfinished_segment() {
        let (db, archiver, cloud) = protected_by_archiver();
        for i in 0..1000u64 {
            db.put(1, i, format!("v{i:045}").into_bytes()).unwrap();
        }
        let exposed = archiver.stats().updates_since_last_archive;
        assert!(exposed > 0);
        drop(db); // disaster

        let rebuilt = Arc::new(MemFs::new());
        restore_archive(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
        let db = Database::open(rebuilt, profile()).unwrap();

        // Everything before the exposure window survives (a couple of
        // events at segment boundaries are block-level, not commit-level,
        // so allow that much slack in the bookkeeping)…
        let survivors = (1000 - exposed).saturating_sub(2);
        for i in 0..survivors {
            assert_eq!(
                db.get(1, i).unwrap().unwrap(),
                format!("v{i:045}").into_bytes(),
                "key {i}"
            );
        }
        // …and the unfinished segment's updates are gone (this is the
        // coarse RPO the paper criticizes).
        assert_eq!(db.get(1, 999).unwrap(), None);
    }

    #[test]
    fn no_segments_completed_means_base_backup_only() {
        let (db, archiver, cloud) = protected_by_archiver();
        db.put(1, 1, b"only".to_vec()).unwrap();
        assert_eq!(archiver.stats().segments_archived, 0);
        drop(db);

        let rebuilt = Arc::new(MemFs::new());
        restore_archive(rebuilt.as_ref(), cloud.as_ref(), &config()).unwrap();
        let db = Database::open(rebuilt, profile()).unwrap();
        assert_eq!(
            db.get(1, 1).unwrap(),
            None,
            "nothing after the base backup survives"
        );
    }
}
