//! The standby daemon: delta tail, incremental apply, promotion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_cloud::{DeltaLister, ObjectStore, ResilientStore, UsageLedger, UsageMeter};
use ginja_codec::Codec;
use ginja_core::{
    ApplyEngine, ApplyProgress, CloudView, DbObjectKind, DbObjectName, FanoutHandle, Ginja,
    GinjaConfig, GinjaError, RecoveryReport, StandbySnapshot, StandbyStats, WalObjectName,
    DB_PREFIX, WAL_PREFIX,
};
use ginja_cost::governor::project_spend;
use ginja_cost::BudgetConfig;
use ginja_vfs::FileSystem;
use parking_lot::Mutex;

/// Tuning for the standby tail. Validated by [`StandbyConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct StandbyConfig {
    /// Nominal interval between tail polls; the cost governor may
    /// stretch it (never below nominal) via the pace multiplier.
    pub poll_interval: Duration,
    /// GET fan-out width when the standby owns its executor
    /// ([`Standby::attach`]); ignored when a shared handle is supplied.
    pub fanout: usize,
    /// Fair-share lane weight when tailing through a shared executor
    /// ([`Standby::for_instance`]) — relative to the pipeline's upload
    /// lanes, so catch-up GETs cannot starve live commit traffic.
    pub lane_weight: f64,
    /// Upper clamp on the budget-pressure pace multiplier.
    pub max_pace: f64,
    /// Window for the spend-rate observation fed to the projection.
    pub spend_window: Duration,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        StandbyConfig {
            poll_interval: Duration::from_millis(500),
            fanout: 8,
            lane_weight: 1.0,
            max_pace: 16.0,
            spend_window: Duration::from_secs(60),
        }
    }
}

impl StandbyConfig {
    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.poll_interval.is_zero() {
            return Err("standby.poll_interval must be nonzero".into());
        }
        if self.fanout == 0 {
            return Err("standby.fanout must be at least 1".into());
        }
        if !self.lane_weight.is_finite() || self.lane_weight <= 0.0 {
            return Err("standby.lane_weight must be positive".into());
        }
        if !self.max_pace.is_finite() || self.max_pace < 1.0 {
            return Err("standby.max_pace must be at least 1.0".into());
        }
        Ok(())
    }
}

/// What one tail cycle did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Objects that appeared in the bucket since the previous poll.
    pub delta_added: usize,
    /// Objects that disappeared (garbage collection) since the
    /// previous poll.
    pub delta_removed: usize,
    /// WAL objects fetched and applied this cycle.
    pub wal_applied: u64,
    /// Complete checkpoint entries applied this cycle.
    pub checkpoints_applied: u64,
    /// Whether this cycle wiped the shadow and cold-applied (first
    /// base, new dump generation, or an out-of-order straggler).
    pub rebased: bool,
    /// Objects GETted this cycle.
    pub gets: u64,
    /// Sealed bytes downloaded this cycle.
    pub bytes_fetched: u64,
    /// Tracked-but-unapplied objects after this cycle (normally parts
    /// of a bundle still mid-upload).
    pub lag_objects: u64,
}

/// The outcome of a promotion: the shadow is now the recovered data
/// directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromotionReport {
    /// Achieved RTO: wall-clock time from the promotion call to a
    /// bootable directory — the residual catch-up, not a full rebuild.
    pub rto: Duration,
    /// Whether the final catch-up poll-and-apply fully succeeded. Under
    /// a cloud outage the promotion still completes from the last
    /// applied state (`false` here), losing at most the unsynchronized
    /// suffix the Safety bound `S` already allowed for.
    pub caught_up: bool,
    /// Tracked-but-unapplied objects left behind (0 when `caught_up`).
    pub residual_objects: u64,
    /// Estimated sealed bytes of the residual.
    pub residual_bytes: u64,
    /// Cumulative apply counters for the whole tail session — the same
    /// shape cold recovery reports, for side-by-side comparison.
    pub recovery: RecoveryReport,
}

/// Tail state carried across cycles, under one lock.
struct TailState {
    lister: DeltaLister,
    view: CloudView,
    progress: ApplyProgress,
    /// Whether a cold base has been applied to the shadow yet.
    based: bool,
    /// Timestamps of incremental checkpoints applied since the base.
    applied_ckpts: std::collections::BTreeSet<u64>,
    /// Last instant at which the shadow had nothing left to apply.
    drained_at: Instant,
}

/// A warm standby attached to a Ginja bucket. See the crate docs.
pub struct Standby {
    cloud: Arc<ResilientStore>,
    shadow: Arc<dyn FileSystem>,
    config: GinjaConfig,
    tail: StandbyConfig,
    codec: Codec,
    fanout: FanoutHandle,
    budget: Option<BudgetConfig>,
    started: Instant,
    stats: Arc<StandbyStats>,
    pace_bits: AtomicU64,
    fenced: AtomicBool,
    state: Mutex<TailState>,
    shutdown: AtomicBool,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Standby {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Standby")
            .field("snapshot", &self.stats.snapshot())
            .finish()
    }
}

impl Standby {
    /// Attaches a standalone standby to `bucket` (the recovery-site
    /// deployment): its own [`ResilientStore`] with a fresh ledger and
    /// its own solo GET executor of `tail.fanout` workers.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Config`] when `tail` or `config` is invalid.
    pub fn attach(
        bucket: Arc<dyn ObjectStore>,
        shadow: Arc<dyn FileSystem>,
        config: GinjaConfig,
        tail: StandbyConfig,
    ) -> Result<Arc<Self>, GinjaError> {
        tail.validate().map_err(GinjaError::Config)?;
        config.validate()?;
        let store = Arc::new(ResilientStore::new(bucket, config.retry.clone()));
        let fanout = FanoutHandle::solo(tail.fanout);
        Ok(Self::build(store, fanout, shadow, config, tail))
    }

    /// Attaches a standby over a prebuilt [`ResilientStore`] and
    /// fan-out handle — the fleet path, where many tenants share one
    /// ledger, breaker and fair executor.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Config`] when `tail` or `config` is invalid.
    pub fn attach_with(
        store: Arc<ResilientStore>,
        fanout: FanoutHandle,
        shadow: Arc<dyn FileSystem>,
        config: GinjaConfig,
        tail: StandbyConfig,
    ) -> Result<Arc<Self>, GinjaError> {
        tail.validate().map_err(GinjaError::Config)?;
        config.validate()?;
        Ok(Self::build(store, fanout, shadow, config, tail))
    }

    /// Attaches a standby beside a live [`Ginja`] instance: same
    /// resilient store (shared circuit breaker *and* usage ledger — the
    /// cost governor sees standby GETs as first-class spend), a
    /// weighted lane on the pipeline's fan-out executor, and counters
    /// registered so [`Ginja::stats`] carries the lag gauges.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Config`] when `tail` is invalid.
    pub fn for_instance(
        ginja: &Ginja,
        shadow: Arc<dyn FileSystem>,
        tail: StandbyConfig,
    ) -> Result<Arc<Self>, GinjaError> {
        tail.validate().map_err(GinjaError::Config)?;
        let store = ginja.resilient_cloud();
        let fanout = FanoutHandle::shared(ginja.fanout().executor().clone(), tail.lane_weight);
        let standby = Self::build(store, fanout, shadow, ginja.config().clone(), tail);
        ginja.attach_standby(standby.stats.clone());
        Ok(standby)
    }

    fn build(
        cloud: Arc<ResilientStore>,
        fanout: FanoutHandle,
        shadow: Arc<dyn FileSystem>,
        config: GinjaConfig,
        tail: StandbyConfig,
    ) -> Arc<Self> {
        let codec = Codec::new(config.codec.clone());
        let budget = config.budget.clone();
        Arc::new(Standby {
            cloud,
            shadow,
            config,
            tail,
            codec,
            fanout,
            budget,
            started: Instant::now(),
            stats: Arc::new(StandbyStats::default()),
            pace_bits: AtomicU64::new(1.0f64.to_bits()),
            fenced: AtomicBool::new(false),
            state: Mutex::new(TailState {
                lister: DeltaLister::new(""),
                view: CloudView::new(),
                progress: ApplyProgress::new(),
                based: false,
                applied_ckpts: std::collections::BTreeSet::new(),
                drained_at: Instant::now(),
            }),
            shutdown: AtomicBool::new(false),
            thread: Mutex::new(None),
        })
    }

    /// The standby's counters (shared with an attached [`Ginja`]
    /// when created via [`Standby::for_instance`]).
    pub fn snapshot(&self) -> StandbySnapshot {
        self.stats.snapshot()
    }

    /// The live counter handle, for registering with a [`Ginja`]
    /// instance this standby was not built from (e.g. a fleet tenant:
    /// `ginja.attach_standby(standby.counters())` merges the lag
    /// gauges into that tenant's stats).
    pub fn counters(&self) -> Arc<StandbyStats> {
        self.stats.clone()
    }

    /// The shadow file system the tail applies into (the bootable
    /// directory after [`Standby::promote`]).
    pub fn shadow(&self) -> Arc<dyn FileSystem> {
        self.shadow.clone()
    }

    /// The ledger metering this standby's cloud reads.
    pub fn ledger(&self) -> Arc<UsageLedger> {
        self.cloud.ledger().clone()
    }

    /// The pipeline configuration of the deployment this standby
    /// shadows (its Safety bound `S` caps what a promotion can lose).
    pub fn config(&self) -> &GinjaConfig {
        &self.config
    }

    /// The pace multiplier currently stretching the poll interval
    /// (≥ 1.0; 1.0 without budget pressure).
    pub fn pace(&self) -> f64 {
        f64::from_bits(self.pace_bits.load(Ordering::Relaxed))
    }

    /// The poll interval currently in force: nominal × pace.
    pub fn poll_interval(&self) -> Duration {
        self.tail.poll_interval.mul_f64(self.pace())
    }

    /// Whether [`Standby::promote`] has fenced the tail.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// One tail cycle: poll the listing delta, fold it into the view,
    /// apply whatever became applicable, refresh the lag gauges, and
    /// let budget pressure retune the pace.
    ///
    /// # Errors
    ///
    /// Cloud failures (including breaker fast-fails) propagate after
    /// being counted; [`GinjaError::ShutDown`] once fenced.
    pub fn run_cycle(&self) -> Result<TailReport, GinjaError> {
        if self.is_fenced() {
            return Err(GinjaError::ShutDown);
        }
        let mut state = self.state.lock();
        let report = self.cycle_locked(&mut state, false)?;
        self.govern_pace();
        Ok(report)
    }

    /// Fences the tail and finishes the job: one final best-effort
    /// catch-up cycle, then the shadow *is* the recovered data
    /// directory. The wall-clock of this call is the achieved RTO.
    ///
    /// Under a cloud outage the catch-up may fail; promotion still
    /// completes from the last applied state (`caught_up = false`),
    /// losing at most the suffix the Safety bound `S` already allowed
    /// for — exactly the paper's disaster semantics.
    ///
    /// # Errors
    ///
    /// [`GinjaError::Recovery`] when called twice, or when no base was
    /// ever applied (an empty standby has nothing to promote; the
    /// fence is released so a later attempt can succeed).
    pub fn promote(&self) -> Result<PromotionReport, GinjaError> {
        if self.fenced.swap(true, Ordering::SeqCst) {
            return Err(GinjaError::Recovery("standby already promoted".into()));
        }
        let start = Instant::now();
        let mut state = self.state.lock();
        let caught_up = self.cycle_locked(&mut state, true).is_ok();
        if !state.based {
            self.fenced.store(false, Ordering::SeqCst);
            return Err(GinjaError::Recovery(
                "standby has no applied base to promote".into(),
            ));
        }
        let (residual_objects, residual_bytes) = pending(&state);
        let rto = start.elapsed();
        self.stats.record_promotion(rto);
        Ok(PromotionReport {
            rto,
            caught_up: caught_up && residual_objects == 0,
            residual_objects,
            residual_bytes,
            recovery: state.progress.report(),
        })
    }

    /// Starts the background tail thread (idempotent). The loop
    /// re-reads [`Standby::poll_interval`] every cycle, so a governor
    /// pace change takes effect at the next scheduling decision; a
    /// failed cycle (outage, open breaker) is counted and retried at
    /// the next interval.
    pub fn spawn(self: &Arc<Self>) {
        let mut slot = self.thread.lock();
        if slot.is_some() {
            return;
        }
        let standby = self.clone();
        *slot = Some(
            std::thread::Builder::new()
                .name("ginja-standby".into())
                .spawn(move || {
                    let mut next = Instant::now();
                    while !standby.shutdown.load(Ordering::SeqCst) && !standby.is_fenced() {
                        if Instant::now() >= next {
                            let _ = standby.run_cycle();
                            next = Instant::now() + standby.poll_interval();
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                })
                .expect("spawn standby"),
        );
    }

    /// Stops the background thread (if running) and joins it.
    /// Idempotent; direct calls to `run_cycle`/`promote` still work
    /// afterwards.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// The cycle body, under the state lock. `best_effort` (promotion)
    /// pushes past poll/apply failures instead of propagating them.
    fn cycle_locked(
        &self,
        state: &mut TailState,
        best_effort: bool,
    ) -> Result<TailReport, GinjaError> {
        let mut report = TailReport::default();
        let mut straggler = false;

        match state.lister.poll(self.cloud.as_ref()) {
            Ok(delta) => {
                report.delta_added = delta.added.len();
                report.delta_removed = delta.removed.len();
                for name in &delta.removed {
                    state.view.remove_object(name);
                }
                for name in &delta.added {
                    if name.starts_with(WAL_PREFIX) {
                        if let Ok(wal) = WalObjectName::parse(name) {
                            if state.based && wal.ts <= state.progress.max_wal_ts() {
                                straggler = true;
                            }
                            state.view.add_wal(wal);
                        }
                    } else if name.starts_with(DB_PREFIX) {
                        if let Ok(db) = DbObjectName::parse(name) {
                            state.view.add_db_part(db);
                        }
                    }
                    // Anything else in the bucket is not Ginja's
                    // (the sentinel calls it an orphan); ignore it.
                }
            }
            Err(err) => {
                self.stats.record_error();
                if !best_effort {
                    self.refresh_lag(state, &mut report);
                    self.stats.record_cycle(0, 0);
                    return Err(err.into());
                }
            }
        }

        match self.apply_locked(state, straggler, &mut report) {
            Ok(()) => {}
            Err(err) => {
                self.stats.record_error();
                if !best_effort {
                    self.refresh_lag(state, &mut report);
                    self.stats.record_cycle(report.gets, report.bytes_fetched);
                    return Err(err);
                }
            }
        }

        self.refresh_lag(state, &mut report);
        self.stats.record_cycle(report.gets, report.bytes_fetched);
        Ok(report)
    }

    /// Applies whatever the updated view makes applicable, preserving
    /// cold-recovery order.
    fn apply_locked(
        &self,
        state: &mut TailState,
        straggler: bool,
        report: &mut TailReport,
    ) -> Result<(), GinjaError> {
        // A dump generation newer than our base supersedes the shadow;
        // a straggler below the applied frontier would apply out of
        // cold order. Both rebase: correctness first, resets counted.
        let newest_dump = state
            .view
            .db_entries()
            .rfind(|(_, e)| e.kind == DbObjectKind::Dump && e.is_complete())
            .map(|(ts, _)| ts);
        let needs_base = !state.based;
        let new_generation =
            state.based && newest_dump.is_some_and(|ts| ts != state.progress.dump_ts());
        let ckpt_straggler = state.based
            && state
                .view
                .checkpoints_after(state.progress.dump_ts())
                .iter()
                .any(|(ts, _)| {
                    !state.applied_ckpts.contains(ts)
                        && state.applied_ckpts.last().is_some_and(|max| ts < max)
                });

        if needs_base || new_generation || straggler || ckpt_straggler {
            if newest_dump.is_none() {
                // Nothing restorable yet (a bucket with no complete
                // dump); keep waiting — the lag gauges say everything.
                return Ok(());
            }
            return self.rebase(state, report);
        }

        // Incremental: new WAL in timestamp order...
        let frontier = state.progress.max_wal_ts();
        let wal_jobs: Vec<WalObjectName> = state
            .view
            .wal_entries()
            .filter(|w| w.ts > frontier)
            .cloned()
            .collect();
        if !wal_jobs.is_empty() {
            let engine = self.engine();
            let n = wal_jobs.len() as u64;
            let before = state.progress.report().bytes_downloaded;
            engine.apply_wal_objects(wal_jobs, &mut state.progress)?;
            report.wal_applied += n;
            report.gets += n;
            report.bytes_fetched += state.progress.report().bytes_downloaded - before;
        }

        // ...then newly complete checkpoints, ascending — the same
        // order a cold recovery of this bucket would use.
        let new_ckpts: Vec<u64> = state
            .view
            .checkpoints_after(state.progress.dump_ts())
            .iter()
            .map(|(ts, _)| *ts)
            .filter(|ts| !state.applied_ckpts.contains(ts))
            .collect();
        for ts in new_ckpts {
            let before = state.progress.report().bytes_downloaded;
            let entry = state
                .view
                .db_entry(ts)
                .ok_or_else(|| GinjaError::Recovery("checkpoint vanished mid-cycle".into()))?
                .clone();
            self.engine()
                .apply_checkpoints(&[(ts, &entry)], &mut state.progress)?;
            state.applied_ckpts.insert(ts);
            report.checkpoints_applied += 1;
            report.gets += entry.parts.len() as u64;
            report.bytes_fetched += state.progress.report().bytes_downloaded - before;
        }
        Ok(())
    }

    /// Wipes the shadow and cold-applies the current view.
    fn rebase(&self, state: &mut TailState, report: &mut TailReport) -> Result<(), GinjaError> {
        if state.based {
            self.stats.record_reset();
        }
        for file in self.shadow.list("")? {
            self.shadow.delete(&file)?;
        }
        state.progress = ApplyProgress::new();
        state.applied_ckpts.clear();
        state.based = false;

        self.engine()
            .cold_apply(&state.view, u64::MAX, &mut state.progress)?;

        state.based = true;
        state.applied_ckpts = state
            .view
            .checkpoints_after(state.progress.dump_ts())
            .iter()
            .map(|(ts, _)| *ts)
            .collect();
        let done = state.progress.report();
        report.rebased = true;
        report.wal_applied += done.wal_objects_applied;
        report.checkpoints_applied += done.checkpoints_applied;
        report.bytes_fetched += done.bytes_downloaded;
        // GETs of the base: every WAL object plus every DB part that
        // went into the dump and the applied checkpoints.
        let dump_parts = state
            .view
            .db_entry(done.dump_ts)
            .map_or(0, |e| e.parts.len() as u64);
        let ckpt_parts: u64 = state
            .applied_ckpts
            .iter()
            .filter_map(|ts| state.view.db_entry(*ts))
            .map(|e| e.parts.len() as u64)
            .sum();
        report.gets += done.wal_objects_applied + dump_parts + ckpt_parts;
        Ok(())
    }

    fn engine(&self) -> ApplyEngine<'_> {
        ApplyEngine::new(
            self.shadow.as_ref(),
            self.cloud.as_ref(),
            &self.codec,
            &self.fanout,
        )
    }

    /// Recomputes the lag gauges from the view against the applied
    /// frontiers.
    fn refresh_lag(&self, state: &mut TailState, report: &mut TailReport) {
        let (objects, bytes) = pending(state);
        let now = Instant::now();
        if objects == 0 {
            state.drained_at = now;
        }
        let age = now.duration_since(state.drained_at);
        report.lag_objects = objects;
        self.stats.set_lag(objects, bytes, age);
    }

    /// Budget-pressure pace control, mirroring the primary's sentinel
    /// pace: projected spend over target stretches the poll interval
    /// multiplicatively; comfortable headroom relaxes it back toward
    /// nominal. The Safety bound `S` is never touched — a standby can
    /// only get *staler* under pressure, never let the primary lose
    /// more.
    fn govern_pace(&self) {
        let Some(budget) = &self.budget else { return };
        let ledger = self.cloud.ledger();
        let usage = ledger.usage();
        let rates = ledger.observe_rates(self.tail.spend_window);
        let projection = project_spend(&usage, Some(&rates), self.started.elapsed(), budget);
        let target = budget.target_usd();
        let mut pace = self.pace();
        if projection.projected_usd > target {
            pace = (pace * 1.5).min(self.tail.max_pace);
        } else if projection.projected_usd < target * 0.7 {
            pace = (pace / 1.5).max(1.0);
        }
        self.pace_bits.store(pace.to_bits(), Ordering::Relaxed);
        self.stats.set_pace((pace * 1000.0).round() as u64);
    }
}

/// Tracked-but-unapplied (objects, estimated sealed bytes) in `state`.
fn pending(state: &TailState) -> (u64, u64) {
    let mut objects = 0u64;
    let mut bytes = 0u64;
    if !state.based {
        for wal in state.view.wal_entries() {
            objects += 1;
            bytes += wal.len;
        }
        for (_, entry) in state.view.db_entries() {
            objects += entry.parts.len() as u64;
            bytes += entry.size;
        }
        return (objects, bytes);
    }
    let frontier = state.progress.max_wal_ts();
    for wal in state.view.wal_entries() {
        if wal.ts > frontier {
            objects += 1;
            bytes += wal.len;
        }
    }
    for (ts, entry) in state.view.db_entries() {
        if ts <= state.progress.dump_ts() || state.applied_ckpts.contains(&ts) {
            continue;
        }
        // A complete unapplied entry (a dump generation or checkpoint
        // awaiting the next cycle) or a bundle still mid-upload: its
        // present parts are work the shadow has not absorbed.
        objects += entry.parts.len() as u64;
        let per_part = entry
            .parts
            .first()
            .map_or(0, |p| p.size / u64::from(p.parts.max(1)));
        bytes += per_part * entry.parts.len() as u64;
    }
    (objects, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginja_cloud::MemStore;
    use ginja_core::bundle;
    use ginja_vfs::MemFs;

    fn config() -> GinjaConfig {
        GinjaConfig::builder().build().unwrap()
    }

    fn seal_wal(cloud: &dyn ObjectStore, codec: &Codec, ts: u64, offset: u64, data: &[u8]) {
        let name = WalObjectName {
            ts,
            file: "pg_xlog/0001".into(),
            offset,
            len: data.len() as u64,
        };
        let sealed = codec.seal(&name.to_name(), data).unwrap();
        cloud.put(&name.to_name(), &sealed).unwrap();
    }

    fn seal_db(
        cloud: &dyn ObjectStore,
        codec: &Codec,
        ts: u64,
        kind: DbObjectKind,
        path: &str,
        data: &[u8],
    ) {
        let bytes = bundle::encode(&[bundle::FileRange {
            path: path.into(),
            offset: 0,
            data: data.to_vec(),
        }]);
        let name = DbObjectName {
            ts,
            kind,
            size: bytes.len() as u64,
            part: 0,
            parts: 1,
        };
        let sealed = codec.seal(&name.to_name(), &bytes).unwrap();
        cloud.put(&name.to_name(), &sealed).unwrap();
    }

    fn assert_matches_cold(bucket: &Arc<MemStore>, shadow: &Arc<MemFs>, config: &GinjaConfig) {
        let cold = MemFs::new();
        ginja_core::recover_into(&cold, bucket.as_ref(), config).unwrap();
        let mut cold_files = cold.list("").unwrap();
        let mut shadow_files = shadow.list("").unwrap();
        cold_files.sort();
        shadow_files.sort();
        assert_eq!(cold_files, shadow_files);
        for file in &cold_files {
            assert_eq!(
                cold.read_all(file).unwrap(),
                shadow.read_all(file).unwrap(),
                "divergence in {file}"
            );
        }
    }

    #[test]
    fn tail_applies_incrementally_and_promotes() {
        let config = config();
        let codec = Codec::new(config.codec.clone());
        let bucket = Arc::new(MemStore::new());
        seal_db(
            bucket.as_ref(),
            &codec,
            0,
            DbObjectKind::Dump,
            "base/1",
            b"AAAA",
        );
        seal_wal(bucket.as_ref(), &codec, 1, 0, b"w1");

        let shadow = Arc::new(MemFs::new());
        let standby = Standby::attach(
            bucket.clone(),
            shadow.clone(),
            config.clone(),
            StandbyConfig::default(),
        )
        .unwrap();

        let first = standby.run_cycle().unwrap();
        assert!(first.rebased);
        assert_eq!(first.wal_applied, 1);
        assert_matches_cold(&bucket, &shadow, &config);

        // New tail objects arrive; the next cycle fetches only them.
        seal_wal(bucket.as_ref(), &codec, 2, 2, b"w2");
        seal_db(
            bucket.as_ref(),
            &codec,
            2,
            DbObjectKind::Checkpoint,
            "base/1",
            b"BB",
        );
        let second = standby.run_cycle().unwrap();
        assert!(!second.rebased);
        assert_eq!(second.wal_applied, 1);
        assert_eq!(second.checkpoints_applied, 1);
        assert_eq!(second.gets, 2);
        assert_matches_cold(&bucket, &shadow, &config);

        // Steady state: an unchanged bucket costs one LIST, zero GETs.
        let idle = standby.run_cycle().unwrap();
        assert_eq!(idle.gets, 0);
        assert_eq!(idle.lag_objects, 0);

        let promotion = standby.promote().unwrap();
        assert!(promotion.caught_up);
        assert_eq!(promotion.residual_objects, 0);
        assert_eq!(promotion.recovery.wal_objects_applied, 2);
        assert_matches_cold(&bucket, &shadow, &config);

        let snap = standby.snapshot();
        assert_eq!(snap.promotions, 1);
        assert!(snap.tail_cycles >= 3);
        assert!(matches!(standby.run_cycle(), Err(GinjaError::ShutDown)));
        assert!(standby.promote().is_err());
    }

    #[test]
    fn new_dump_generation_rebases() {
        let config = config();
        let codec = Codec::new(config.codec.clone());
        let bucket = Arc::new(MemStore::new());
        seal_db(
            bucket.as_ref(),
            &codec,
            0,
            DbObjectKind::Dump,
            "base/1",
            b"old",
        );
        let shadow = Arc::new(MemFs::new());
        let standby = Standby::attach(
            bucket.clone(),
            shadow.clone(),
            config.clone(),
            StandbyConfig::default(),
        )
        .unwrap();
        standby.run_cycle().unwrap();

        seal_db(
            bucket.as_ref(),
            &codec,
            5,
            DbObjectKind::Dump,
            "base/1",
            b"newer",
        );
        let report = standby.run_cycle().unwrap();
        assert!(report.rebased);
        assert_eq!(standby.snapshot().resets, 1);
        assert_matches_cold(&bucket, &shadow, &config);
        assert_eq!(shadow.read_all("base/1").unwrap(), b"newer");
    }

    #[test]
    fn empty_bucket_waits_without_a_base() {
        let config = config();
        let bucket = Arc::new(MemStore::new());
        let standby = Standby::attach(
            bucket,
            Arc::new(MemFs::new()),
            config,
            StandbyConfig::default(),
        )
        .unwrap();
        let report = standby.run_cycle().unwrap();
        assert!(!report.rebased);
        assert_eq!(report.gets, 0);
        let err = standby.promote().unwrap_err();
        assert!(matches!(err, GinjaError::Recovery(_)));
        assert!(
            !standby.is_fenced(),
            "failed promotion must release the fence"
        );
    }

    #[test]
    fn budget_pressure_stretches_the_poll_interval() {
        let mut config = config();
        config.budget = Some(BudgetConfig::new(1e-6));
        let codec = Codec::new(config.codec.clone());
        let bucket = Arc::new(MemStore::new());
        seal_db(
            bucket.as_ref(),
            &codec,
            0,
            DbObjectKind::Dump,
            "base/1",
            b"AAAA",
        );
        let standby = Standby::attach(
            bucket.clone(),
            Arc::new(MemFs::new()),
            config,
            StandbyConfig::default(),
        )
        .unwrap();
        for ts in 1..6 {
            seal_wal(bucket.as_ref(), &codec, ts, (ts - 1) * 2, b"ww");
            standby.run_cycle().unwrap();
        }
        assert!(standby.pace() > 1.0, "pace = {}", standby.pace());
        assert!(standby.poll_interval() > StandbyConfig::default().poll_interval);
        assert!(standby.snapshot().pace_permille > 1000);
    }

    #[test]
    fn config_validation_is_enforced() {
        let bad = StandbyConfig {
            poll_interval: Duration::ZERO,
            ..StandbyConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(StandbyConfig {
            max_pace: 0.5,
            ..StandbyConfig::default()
        }
        .validate()
        .is_err());
        assert!(StandbyConfig::default().validate().is_ok());
    }
}
