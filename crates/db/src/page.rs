//! Slotted table pages.
//!
//! A page holds a fixed number of fixed-size record slots. The header
//! carries the **page LSN** (highest WAL record applied), which makes
//! redo idempotent: "apply the record only if its LSN is newer than the
//! page's" — the standard ARIES redo test. A CRC lets both the DBMS's
//! own restart checks and Ginja's backup verification (§5.4, step 2)
//! detect torn or corrupted pages.

use crate::crc::crc32;
use crate::DbError;

/// Page header size: lsn (8) + crc (4) + used-slot count (2) + reserved (2).
pub const PAGE_HEADER: usize = 16;

/// An in-memory table page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Highest WAL LSN applied to this page.
    pub lsn: u64,
    slots: Vec<Option<(u64, Vec<u8>)>>,
}

impl Page {
    /// An empty page with `slots_per_page` slots.
    pub fn empty(slots_per_page: usize) -> Self {
        Page {
            lsn: 0,
            slots: vec![None; slots_per_page],
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn used_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The `(key, value)` stored in `slot`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot(&self, slot: usize) -> Option<&(u64, Vec<u8>)> {
        self.slots[slot].as_ref()
    }

    /// Stores `(key, value)` in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set_slot(&mut self, slot: usize, key: u64, value: Vec<u8>) {
        self.slots[slot] = Some((key, value));
    }

    /// Clears `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn clear_slot(&mut self, slot: usize) {
        self.slots[slot] = None;
    }

    /// Iterates over occupied slots as `(key, value)`.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, Vec<u8>)> {
        self.slots.iter().flatten()
    }

    /// Serializes into exactly `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any stored value exceeds the slot capacity, or if the
    /// slots do not fit the page — both are internal invariants upheld
    /// by [`crate::Database`].
    pub fn to_bytes(&self, page_size: usize, slot_size: usize) -> Vec<u8> {
        let cap = slot_size - crate::table::SLOT_OVERHEAD;
        let mut out = vec![0u8; page_size];
        out[0..8].copy_from_slice(&self.lsn.to_le_bytes());
        // crc at 8..12 filled below.
        out[12..14].copy_from_slice(&(self.used_count() as u16).to_le_bytes());
        for (i, slot) in self.slots.iter().enumerate() {
            let base = PAGE_HEADER + i * slot_size;
            assert!(base + slot_size <= page_size, "slots exceed page size");
            if let Some((key, value)) = slot {
                assert!(value.len() <= cap, "value exceeds slot capacity");
                out[base] = 1;
                out[base + 1..base + 9].copy_from_slice(&key.to_le_bytes());
                out[base + 9..base + 11].copy_from_slice(&(value.len() as u16).to_le_bytes());
                out[base + 11..base + 11 + value.len()].copy_from_slice(value);
            }
        }
        let crc = {
            let mut tmp = out.clone();
            tmp[8..12].fill(0);
            crc32(&tmp)
        };
        out[8..12].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a page from `data`. An all-zero buffer is a valid empty
    /// page (a never-written region of a data file).
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] on CRC mismatch or malformed slots.
    pub fn from_bytes(data: &[u8], slot_size: usize) -> Result<Self, DbError> {
        let slots_per_page = (data.len() - PAGE_HEADER) / slot_size;
        if data.iter().all(|&b| b == 0) {
            return Ok(Page::empty(slots_per_page));
        }
        let stored_crc = u32::from_le_bytes(data[8..12].try_into().unwrap());
        let computed = {
            let mut tmp = data.to_vec();
            tmp[8..12].fill(0);
            crc32(&tmp)
        };
        if stored_crc != computed {
            return Err(DbError::Corrupt("table page crc mismatch".into()));
        }
        let lsn = u64::from_le_bytes(data[0..8].try_into().unwrap());
        let cap = slot_size - crate::table::SLOT_OVERHEAD;
        let mut slots = Vec::with_capacity(slots_per_page);
        for i in 0..slots_per_page {
            let base = PAGE_HEADER + i * slot_size;
            if data[base] == 0 {
                slots.push(None);
                continue;
            }
            let key = u64::from_le_bytes(data[base + 1..base + 9].try_into().unwrap());
            let len = u16::from_le_bytes(data[base + 9..base + 11].try_into().unwrap()) as usize;
            if len > cap {
                return Err(DbError::Corrupt("slot length exceeds capacity".into()));
            }
            slots.push(Some((key, data[base + 11..base + 11 + len].to_vec())));
        }
        Ok(Page { lsn, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 512;
    const SLOT: usize = 62;

    #[test]
    fn empty_page_roundtrip() {
        let p = Page::empty(8);
        let bytes = p.to_bytes(PAGE, SLOT);
        assert_eq!(bytes.len(), PAGE);
        let back = Page::from_bytes(&bytes, SLOT).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn all_zero_buffer_is_empty_page() {
        let p = Page::from_bytes(&vec![0u8; PAGE], SLOT).unwrap();
        assert_eq!(p.used_count(), 0);
        assert_eq!(p.lsn, 0);
        assert_eq!(p.slot_count(), (PAGE - PAGE_HEADER) / SLOT);
    }

    #[test]
    fn populated_roundtrip() {
        let mut p = Page::empty(8);
        p.lsn = 77;
        p.set_slot(0, 100, b"first".to_vec());
        p.set_slot(3, 103, vec![9u8; SLOT - crate::table::SLOT_OVERHEAD]);
        p.set_slot(7, 107, vec![]);
        let back = Page::from_bytes(&p.to_bytes(PAGE, SLOT), SLOT).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.used_count(), 3);
        assert_eq!(back.slot(0).unwrap().1, b"first");
        assert!(back.slot(1).is_none());
    }

    #[test]
    fn clear_slot_removes() {
        let mut p = Page::empty(4);
        p.set_slot(2, 5, b"x".to_vec());
        p.clear_slot(2);
        assert_eq!(p.used_count(), 0);
    }

    #[test]
    fn crc_detects_corruption() {
        let mut p = Page::empty(8);
        p.set_slot(0, 1, b"data".to_vec());
        let mut bytes = p.to_bytes(PAGE, SLOT);
        bytes[PAGE_HEADER + 2] ^= 1;
        assert!(matches!(
            Page::from_bytes(&bytes, SLOT),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn lsn_preserved() {
        let mut p = Page::empty(2);
        p.lsn = u64::MAX - 1;
        p.set_slot(0, 1, b"v".to_vec());
        let back = Page::from_bytes(&p.to_bytes(PAGE, SLOT), SLOT).unwrap();
        assert_eq!(back.lsn, u64::MAX - 1);
    }

    #[test]
    fn iter_yields_occupied_only() {
        let mut p = Page::empty(5);
        p.set_slot(1, 11, b"a".to_vec());
        p.set_slot(4, 44, b"b".to_vec());
        let got: Vec<u64> = p.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, vec![11, 44]);
    }

    #[test]
    #[should_panic(expected = "value exceeds slot capacity")]
    fn oversized_value_panics_at_serialize() {
        let mut p = Page::empty(2);
        p.set_slot(0, 1, vec![0u8; SLOT]); // no room for overhead
        let _ = p.to_bytes(PAGE, SLOT);
    }
}
