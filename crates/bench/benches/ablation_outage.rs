//! Ablation: bounded ring + disk spill vs RAM-only backlog under a
//! prolonged cloud outage.
//!
//! Two identical TPC-C rigs run the same three-phase script — healthy
//! traffic, a total cloud outage (every op fails while commits keep
//! arriving), then restore + catch-up — differing only in where the
//! outage backlog lives:
//!
//! * **spill** — the outage subsystem as shipped: a small in-memory
//!   upload ring whose overflow journals to the disk spill queue;
//! * **ram-only** — the ablated rig: a ring sized so large it never
//!   overflows, so the whole backlog sits in RAM.
//!
//! Both rigs must keep committing through the outage (the CommitQueue
//! holds the unacked window against S; neither rig is allowed to stall
//! below it) and both must catch up to a lossless recovery. The claim
//! under test is the memory bound: the spill rig's peak ring occupancy
//! stays at its configured capacity while the ram-only rig's peak
//! grows with the backlog — endurance costs disk, not RAM.
//!
//! With `BENCH_PR8_OUT=<path>` the headline numbers are written as a
//! small JSON document (CI smoke archives a trend point from it).

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ginja_bench::table::{fmt, Table};
use ginja_bench::timescale::{run_wall_duration, time_scale, to_sim_per_minute};
use ginja_cloud::{FaultPlan, FaultStore, MemStore, RetryConfig};
use ginja_core::{recover_into, Ginja, GinjaConfig, OutageConfig, OutageState};
use ginja_db::{Database, DbProfile};
use ginja_vfs::{FileSystem, InterceptFs, MemFs, PostgresProcessor};
use ginja_workload::{probe_tpcc, tables, Tpcc, TpccScale};

/// The shipped configuration's ring: small enough that an outage
/// backlog must overflow it within the first few batches.
const SPILL_RING: usize = 8;
/// The ablated rig's ring: large enough that nothing ever spills and
/// the whole backlog rides in RAM.
const RAM_RING: usize = 1 << 20;

struct RigReport {
    healthy_txns: usize,
    outage_txns: usize,
    peak_ring_len: u64,
    peak_ring_bytes: u64,
    peak_spill_records: u64,
    peak_spill_bytes: u64,
    reached_enduring: bool,
    catchup: Duration,
}

/// A breaker that opens within a few failed attempts: a real multi-hour
/// outage compressed to bench time (the policy only perceives duration
/// through `enduring_after`, scaled down to match).
fn fast_breaker() -> RetryConfig {
    RetryConfig {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(2),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        breaker_probes: 1,
        ..RetryConfig::default()
    }
}

fn run_rig(ring_capacity: usize, wall: Duration, scale: f64) -> RigReport {
    let profile = DbProfile::postgres_small().with_checkpoint_every(1_000_000);
    let local = Arc::new(MemFs::new());
    let db = Database::create(local.clone(), profile.clone()).expect("create");
    let mut tpcc = Tpcc::new(1, 0x0A6E, TpccScale::tiny());
    tpcc.create_schema(&db).expect("schema");
    tpcc.load(&db).expect("load");
    drop(db);

    let mem = Arc::new(MemStore::new());
    let plan = Arc::new(FaultPlan::new());
    let cloud = Arc::new(FaultStore::new(mem.clone(), plan.clone()));
    let config = GinjaConfig::builder()
        .batch(4)
        // S must comfortably hold the whole outage backlog: the claim
        // under test is where the backlog *lives*, not when the DBMS
        // saturates.
        .safety(100_000)
        .batch_timeout(Duration::from_secs_f64(0.05 * scale))
        .safety_timeout(Duration::from_secs(120))
        .retry(fast_breaker())
        .outage(OutageConfig {
            ring_capacity,
            ckpt_capacity: 2,
            enduring_after: Duration::from_millis(30),
            poll_interval: Duration::from_millis(5),
            ..OutageConfig::default()
        })
        .build()
        .expect("valid config");
    let ginja = Ginja::boot(
        local.clone(),
        cloud,
        Arc::new(PostgresProcessor::new()),
        config.clone(),
    )
    .expect("boot");
    let fs: Arc<dyn FileSystem> = Arc::new(InterceptFs::new(local, Arc::new(ginja.clone())));
    let db = Database::open(fs, profile.clone()).expect("open");

    // Phase 1: healthy traffic.
    let deadline = Instant::now() + wall / 3;
    let mut healthy_txns = 0;
    while Instant::now() < deadline {
        tpcc.run_transaction(&db).expect("healthy txn");
        healthy_txns += 1;
    }
    assert!(ginja.sync(Duration::from_secs(60)), "healthy phase drains");

    // Phase 2: the outage. Commits keep coming; sample the backlog
    // gauges after every commit to catch the peaks.
    plan.outage();
    let deadline = Instant::now() + wall / 3;
    let mut outage_txns = 0;
    let (mut peak_ring_len, mut peak_ring_bytes) = (0u64, 0u64);
    let (mut peak_spill_records, mut peak_spill_bytes) = (0u64, 0u64);
    let mut reached_enduring = false;
    while Instant::now() < deadline {
        tpcc.run_transaction(&db).expect("outage txn");
        outage_txns += 1;
        let snap = ginja.stats().outage;
        peak_ring_len = peak_ring_len.max(snap.ring_len);
        peak_ring_bytes = peak_ring_bytes.max(snap.ring_bytes);
        peak_spill_records = peak_spill_records.max(snap.spill_records);
        peak_spill_bytes = peak_spill_bytes.max(snap.spill_bytes);
        reached_enduring |= matches!(snap.state, OutageState::Enduring | OutageState::Shedding);
    }

    // Phase 3: restore + catch-up, timed until the pipeline is empty
    // and the policy is back to Healthy.
    plan.restore();
    let t0 = Instant::now();
    assert!(ginja.sync(Duration::from_secs(120)), "catch-up drains");
    let settle = Instant::now() + Duration::from_secs(15);
    while Instant::now() < settle {
        let snap = ginja.stats().outage;
        if snap.state == OutageState::Healthy && snap.spill_records == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let catchup = t0.elapsed();
    let fin = ginja.stats().outage;
    assert_eq!(fin.spill_records, 0, "spill not drained: {fin:?}");
    assert!(!ginja.exposure().fatal, "endurance must not be fatal");

    assert!(ginja.sync(Duration::from_secs(60)));
    ginja.shutdown();
    let reference = db.dump_table(tables::STOCK).expect("dump");
    drop(db);

    // Zero acknowledged loss, both rigs.
    let rebuilt = Arc::new(MemFs::new());
    recover_into(rebuilt.as_ref(), mem.as_ref(), &config).expect("recover");
    let recovered = Database::open(rebuilt, profile).expect("open recovered");
    assert_eq!(
        recovered.dump_table(tables::STOCK).expect("dump"),
        reference,
        "acknowledged rows lost through the outage"
    );
    let probe = probe_tpcc(&recovered).expect("probe");
    assert!(probe.is_consistent(), "{probe:?}");

    RigReport {
        healthy_txns,
        outage_txns,
        peak_ring_len,
        peak_ring_bytes,
        peak_spill_records,
        peak_spill_bytes,
        reached_enduring,
        catchup,
    }
}

fn main() {
    let scale = time_scale();
    let wall = run_wall_duration();
    println!("time scale: {scale}");
    println!("== Ablation: bounded ring + disk spill vs RAM-only outage backlog ==\n");
    println!(
        "TPC-C, {:.2}s wall per rig (healthy / outage / catch-up thirds)",
        wall.as_secs_f64()
    );

    let spill = run_rig(SPILL_RING, wall, scale);
    let ram = run_rig(RAM_RING, wall, scale);

    let per_min = |txns: usize, thirds: Duration| {
        to_sim_per_minute(txns as f64 / (thirds.as_secs_f64() / 60.0).max(1e-9))
    };
    let mut t = Table::new(&[
        "rig",
        "outage txn/min",
        "peak ring",
        "peak ring KiB",
        "peak spill KiB",
        "catchup s",
    ]);
    for (name, r) in [("spill", &spill), ("ram-only", &ram)] {
        t.row(&[
            name.to_string(),
            fmt(per_min(r.outage_txns, wall / 3), 0),
            r.peak_ring_len.to_string(),
            fmt(r.peak_ring_bytes as f64 / 1024.0, 1),
            fmt(r.peak_spill_bytes as f64 / 1024.0, 1),
            fmt(r.catchup.as_secs_f64(), 2),
        ]);
    }
    t.print();
    println!(
        "\nspill rig: {} healthy + {} outage txns, enduring seen: {}; \
         ram-only rig: {} healthy + {} outage txns",
        spill.healthy_txns,
        spill.outage_txns,
        spill.reached_enduring,
        ram.healthy_txns,
        ram.outage_txns,
    );

    // -- Acceptance. -------------------------------------------------
    // Both rigs keep committing through the outage and catch up clean.
    assert!(spill.outage_txns > 0, "spill rig stalled during the outage");
    assert!(
        ram.outage_txns > 0,
        "ram-only rig stalled during the outage"
    );
    assert!(
        spill.reached_enduring,
        "spill rig's policy never reached Enduring"
    );
    // The memory-bound claim: the spill rig's ring never exceeds its
    // capacity and the overflow really went to disk; the ablated rig
    // held a larger backlog in RAM than the spill rig's whole bound.
    assert!(
        spill.peak_ring_len <= SPILL_RING as u64,
        "spill rig's ring exceeded its bound: {} > {SPILL_RING}",
        spill.peak_ring_len
    );
    assert!(
        spill.peak_spill_records > 0,
        "spill rig's backlog never reached disk"
    );
    assert_eq!(
        ram.peak_spill_records, 0,
        "ram-only rig unexpectedly spilled"
    );
    assert!(
        ram.peak_ring_len > SPILL_RING as u64,
        "ram-only rig's backlog ({} records) never outgrew the spill \
         rig's ring bound — outage phase too short to discriminate",
        ram.peak_ring_len
    );

    println!(
        "\nshape check: same outage, same commit stream — the shipped rig caps RAM at \
         {SPILL_RING} ring slot(s) (peak {} KiB) and journals {} KiB to disk; the ablated \
         rig holds {} KiB of backlog in RAM",
        fmt(spill.peak_ring_bytes as f64 / 1024.0, 1),
        fmt(spill.peak_spill_bytes as f64 / 1024.0, 1),
        fmt(ram.peak_ring_bytes as f64 / 1024.0, 1),
    );

    if let Ok(path) = std::env::var("BENCH_PR8_OUT") {
        let json = format!(
            "{{\n  \"spill_ring\": {SPILL_RING},\n  \
             \"spill_outage_txns\": {},\n  \"ram_outage_txns\": {},\n  \
             \"spill_peak_ring_len\": {},\n  \"spill_peak_ring_bytes\": {},\n  \
             \"spill_peak_spill_bytes\": {},\n  \"ram_peak_ring_len\": {},\n  \
             \"ram_peak_ring_bytes\": {},\n  \
             \"spill_catchup_secs\": {:.3},\n  \"ram_catchup_secs\": {:.3}\n}}\n",
            spill.outage_txns,
            ram.outage_txns,
            spill.peak_ring_len,
            spill.peak_ring_bytes,
            spill.peak_spill_bytes,
            ram.peak_ring_len,
            ram.peak_ring_bytes,
            spill.catchup.as_secs_f64(),
            ram.catchup.as_secs_f64(),
        );
        let mut file = std::fs::File::create(&path).expect("create BENCH_PR8_OUT");
        file.write_all(json.as_bytes())
            .expect("write BENCH_PR8_OUT");
        println!("\nwrote {path}");
    }
}
